"""Cross-domain gateway federation: gateway→gateway decision forwarding.

The paper's subject is *multi-domain* access control, yet a
:class:`~repro.components.fabric.DomainDecisionGateway` only serves its
own domain: every decision a PEP obtains terminates at the local PDP
tier.  This module adds the missing cross-domain path.  A
:class:`FederatedGateway` classifies each drawn super-batch slot by the
domain that *governs* its resource (via a resolver backed by the
VO-wide resource directory, see :mod:`repro.domain.directory`):

* **local** slots travel to the domain's own replica set exactly as
  before;
* **remote** slots for a registered peer domain are merged into one
  :class:`ForwardedBatchQuery` per target domain and forwarded
  gateway→gateway over the existing signed envelope profile — one
  WS-Security signature per forwarded envelope, a TTL header cutting
  forwarding loops, and per-origin demultiplexing of the returned
  statements back through each contributing PEP's queue;
* slots for an *unknown* domain, and remote batches whose peer gateway
  is unreachable or answers with a fault, fall **fail-safe**: every
  waiter is denied and a ``federation.*`` metric counter records why.

The serving side accepts forwarded batches only from registered origin
domains (trust-edge-checked at registration time, see
:func:`repro.domain.federation.federate_gateways`) and, on the secure
channel, only when the envelope is signed by that origin's registered
gateway.  Served requests that turn out to be governed by yet another
domain are forwarded onward with a decremented TTL, so a misconfigured
directory produces a bounded forwarding chain ending in an
Indeterminate fail-safe statement instead of a loop.

All wire behaviour — the in-flight map, timeout failover, reply
validation, fail-safe fan-out — comes from the shared
:class:`~repro.components.fabric.BatchWireCore`; federation only adds
classification, the forwarded-envelope profile and the origin checks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence
from xml.sax.saxutils import quoteattr

from ..observability.tracing import TRACE_HEADER, TraceContext
from ..saml.xacml_profile import (
    XacmlAuthzDecisionBatchQuery,
    XacmlAuthzDecisionBatchStatement,
    XacmlAuthzDecisionQuery,
    XacmlAuthzDecisionStatement,
)
from ..simnet.message import Message
from ..wsvc.soap import SoapEnvelope
from ..wsvc.ws_security import (
    SecurityConfig,
    WsSecurityError,
    signer_of,
    verify_envelope,
)
from ..xacml.context import (
    Decision,
    RequestContext,
    ResponseContext,
    Status,
    StatusCode,
    cache_key_touches,
)
from ..xmlutil import parse_attrs
from .base import RpcFault
from .cache import TtlCache
from .fabric import (
    DecisionDispatcher,
    DomainDecisionGateway,
    WireJob,
    _WireSlot,
)

#: Gateway→gateway forwarded decision traffic.
FORWARD_ACTION = "xacml.request.forward"
SECURE_FORWARD_ACTION = "xacml.request.forward.secure"

#: Default maximum number of gateway hops a forwarded batch may take.
DEFAULT_FORWARD_TTL = 3

#: Resolves the domain governing one request's resource (None = local).
DomainResolver = Callable[[RequestContext], Optional[str]]


@dataclass(frozen=True)
class ForwardedBatchQuery:
    """A batch decision query in transit between two domain gateways.

    Wraps the ordinary batch query with the federation headers: which
    domain (and which gateway, for signature pinning) originated it,
    and how many further gateway hops it may take.  The reply is a
    plain :class:`XacmlAuthzDecisionBatchStatement` answering the inner
    batch id, statements in query order.
    """

    batch: XacmlAuthzDecisionBatchQuery
    origin_domain: str
    origin_gateway: str
    ttl: int = DEFAULT_FORWARD_TTL
    #: Trace context of the carrying envelope, re-attached from the
    #: message *headers* on receipt (never serialised into the XML —
    #: tracing must not change a forward's wire size by one byte).
    trace: Optional[str] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.ttl < 1:
            raise ValueError(f"forward TTL must be >= 1, got {self.ttl}")

    def to_xml(self) -> str:
        return (
            f"<fed:ForwardedBatchQuery "
            f"OriginDomain={quoteattr(self.origin_domain)} "
            f"OriginGateway={quoteattr(self.origin_gateway)} "
            f'TTL="{self.ttl}">'
            f"{self.batch.to_xml()}"
            f"</fed:ForwardedBatchQuery>"
        )

    @property
    def wire_size(self) -> int:
        return len(self.to_xml().encode("utf-8"))

    @classmethod
    def from_xml(cls, xml_text: str) -> "ForwardedBatchQuery":
        match = re.match(
            r"<fed:ForwardedBatchQuery ([^>]*)>(.*)"
            r"</fed:ForwardedBatchQuery>$",
            xml_text,
            re.DOTALL,
        )
        if match is None:
            raise ValueError("not a ForwardedBatchQuery")
        attrs = parse_attrs(match.group(1))
        for required in ("OriginDomain", "OriginGateway", "TTL"):
            if required not in attrs:
                raise ValueError(f"ForwardedBatchQuery missing {required}")
        return cls(
            batch=XacmlAuthzDecisionBatchQuery.from_xml(match.group(2)),
            origin_domain=attrs["OriginDomain"],
            origin_gateway=attrs["OriginGateway"],
            ttl=int(attrs["TTL"]),
        )


@dataclass
class _ServicePart:
    """One request of a forwarded batch being served at this gateway."""

    context: "_ServiceContext"
    index: int
    request: RequestContext


class _ServiceContext:
    """Gathers the answers to one inbound forwarded batch.

    The batch's requests may split across the local PDP tier, onward
    forwards (directory says another domain governs them) and immediate
    fail-safe statements (TTL exhausted, unknown domain).  The context
    holds the statement array in query order and replies to the origin
    gateway once every group has landed.
    """

    def __init__(
        self, gateway: "FederatedGateway", message: Message, fwd: ForwardedBatchQuery
    ) -> None:
        self.gateway = gateway
        self.message = message
        self.fwd = fwd
        self.statements: list = [None] * len(fwd.batch.queries)
        self.outstanding = 0
        self.replied = False
        self.arrived_at = gateway.now
        # Serving-hop trace context: parented under the origin
        # envelope's span (carried in the forward's message headers),
        # one hop deeper.  Onward envelopes sent for this context join
        # the same trace through ``serve_ctx`` — that is how remote-hop
        # spans parent correctly across domains.
        self.serve_ctx: Optional[TraceContext] = None
        self._serve_parent: Optional[str] = None
        self._counts: Optional[dict[str, int]] = None
        tracer = gateway.network.tracer
        if tracer.enabled:
            context = TraceContext.parse(fwd.trace)
            if context is not None:
                self.serve_ctx = tracer.child_context(context)
                self._serve_parent = context.span_id

    def start(self) -> None:
        gateway = self.gateway
        counters_before = (
            gateway.recheck_failures,
            gateway.misroutes_detected,
            gateway.misroutes_reforwarded,
            gateway.ttl_denials,
            gateway.unknown_domain_denials,
        )
        local_parts: list[_ServicePart] = []
        onward: dict[str, list[_ServicePart]] = {}
        for index, query in enumerate(self.fwd.batch.queries):
            try:
                governing = gateway._serving_domain(query.request)
            except Exception as exc:
                # The authoritative re-check could not be completed:
                # deciding under this gateway's own (possibly stale)
                # policy could mis-grant, so the request fails closed.
                gateway.recheck_failures += 1
                gateway.network.metrics.bump("federation.recheck_failed")
                self.statements[index] = gateway._indeterminate_statement(
                    query,
                    f"authoritative directory re-check failed: {exc}",
                )
                continue
            if governing == gateway.domain:
                local_parts.append(_ServicePart(self, index, query.request))
                continue
            # The origin believed this gateway governs the resource and
            # the (authoritative, when configured) serving-side check
            # disagrees: a misroute — stale origin directory cache or
            # conflicting configuration.  Never mis-decide it locally;
            # re-forward (below) or fail safe.
            gateway.misroutes_detected += 1
            gateway.network.metrics.bump("federation.misroute")
            if governing in gateway._peers and self.fwd.ttl > 1:
                gateway.misroutes_reforwarded += 1
                onward.setdefault(governing, []).append(
                    _ServicePart(self, index, query.request)
                )
            elif governing in gateway._peers:
                gateway.ttl_denials += 1
                gateway.network.metrics.bump("federation.ttl_expired")
                self.statements[index] = gateway._indeterminate_statement(
                    query, f"forward TTL exhausted at {gateway.domain!r}"
                )
            else:
                gateway.unknown_domain_denials += 1
                gateway.network.metrics.bump("federation.unknown_domain")
                self.statements[index] = gateway._indeterminate_statement(
                    query, f"no route to domain {governing!r}"
                )
        if self.serve_ctx is not None:
            # ``start`` runs atomically in simulated time, so the
            # counter deltas are exactly this batch's routing outcomes —
            # recorded on the serve span for the trace-query audits.
            self._counts = {
                "recheck_failed": gateway.recheck_failures
                - counters_before[0],
                "misroutes": gateway.misroutes_detected - counters_before[1],
                "reforwarded": gateway.misroutes_reforwarded
                - counters_before[2],
                "ttl_expired": gateway.ttl_denials - counters_before[3],
                "unknown_domain": gateway.unknown_domain_denials
                - counters_before[4],
                "local": len(local_parts),
            }
        groups: list[tuple[Optional[str], list[_ServicePart]]] = []
        if local_parts:
            groups.append((None, local_parts))
        groups.extend(sorted(onward.items()))
        self.outstanding = len(groups)
        for target, parts in groups:
            if target is None:
                gateway._wire.send(
                    parts, job=gateway._service_job(self._deliver, self._fail)
                )
            else:
                gateway._wire.send(
                    parts,
                    job=gateway._forward_job(
                        target,
                        ttl=self.fwd.ttl - 1,
                        deliver=self._deliver,
                        fail=self._fail,
                    ),
                )
        if not groups:
            self._maybe_reply()

    # -- group completion ---------------------------------------------------------

    def _deliver(self, parts: list[_ServicePart], statements: Sequence) -> None:
        for part, statement in zip(parts, statements, strict=False):
            self.statements[part.index] = statement
        self._complete_group()

    def _fail(self, parts: list[_ServicePart], exc: Exception) -> None:
        gateway = self.gateway
        for part in parts:
            query = self.fwd.batch.queries[part.index]
            self.statements[part.index] = gateway._indeterminate_statement(
                query, f"fail-safe deny: {exc}"
            )
        self._complete_group()

    def _complete_group(self) -> None:
        self.outstanding -= 1
        self._maybe_reply()

    def _maybe_reply(self) -> None:
        if self.replied or self.outstanding > 0:
            return
        self.replied = True
        gateway = self.gateway
        answer = XacmlAuthzDecisionBatchStatement(
            statements=tuple(self.statements),
            in_response_to=self.fwd.batch.batch_id,
            issuer=gateway.name,
            issue_instant=gateway.now,
        )
        if self.message.kind == SECURE_FORWARD_ACTION:
            payload: object = gateway._secure_payload(
                f"{self.message.kind}:result", answer.to_xml()
            )
        else:
            payload = answer.to_xml()
        gateway.forwarded_decisions_returned += len(self.statements)
        if self.serve_ctx is not None:
            gateway.network.tracer.emit(
                "federation.serve",
                gateway.name,
                gateway.domain,
                start=self.arrived_at,
                end=gateway.now,
                trace_id=self.serve_ctx.trace_id,
                parent_id=self._serve_parent,
                span_id=self.serve_ctx.span_id,
                hops=self.serve_ctx.hops,
                origin_domain=self.fwd.origin_domain,
                batch_id=self.fwd.batch.batch_id,
                decisions=len(self.statements),
                **(self._counts or {}),
            )
        gateway.node.send(
            self.message.reply(
                kind=f"{self.message.kind}:response", payload=payload
            )
        )


class FederatedGateway(DomainDecisionGateway):
    """A domain gateway that also routes decisions *between* domains.

    On top of the aggregation tier it inherits, the federated gateway:

    * classifies every drawn slot by governing domain (``resolve_domain``,
      usually :meth:`repro.domain.directory.ResourceDirectory.resolver`);
    * forwards remote-domain slot groups to the registered peer
      gateway of that domain (:meth:`add_peer`) as one signed
      :class:`ForwardedBatchQuery` envelope, demultiplexing the
      returned statements back through the owning PEP queues;
    * optionally routes remote groups straight at a remote replica set
      (:meth:`add_direct_route`) — the naive per-PEP-direct baseline
      experiment E18 measures federation against;
    * serves forwarded batches from registered origins
      (:meth:`allow_origin`), re-forwarding onward-governed requests
      with a decremented TTL and failing safe on exhaustion;
    * denies (fail-safe, with a metric) anything whose governing domain
      has neither a peer nor a direct route, and everything riding an
      envelope whose peer is unreachable or rejected.

    Remote slots are not forwarded the instant a drain step classifies
    them: they accumulate in a per-target-domain buffer that flushes on
    ``forward_batch`` slots or after ``forward_delay`` seconds.  The
    inter-domain hop is the expensive one (WAN latency, a WS-Security
    signature per envelope), so trading a bounded extra origin-side
    delay — tune ``forward_delay`` to a fraction of the inter-domain
    round trip — re-amortises it even when the local closed loop has
    decayed to trickle-sized drains.

    Remote decisions may additionally be cached *at this tier*
    (``remote_cache_ttl``): the cache key is the slot's bare request
    identity (PEP scope already stripped by the wire-slot dedup), so one
    cross-domain round trip serves every PEP behind the gateway for the
    TTL — the paper's §3.2 caching lever applied to the most expensive
    hop.  Hits are demultiplexed per PEP exactly like remote replies;
    misses ride the ordinary forwarded envelope (all waiting PEP slots
    attached).  Only definitive decisions (Permit/Deny) are cached —
    fail-safe Indeterminate statements are transient by construction.
    The staleness this cache adds is bounded by the TTL *and* by
    revocation coherence: a
    :class:`~repro.revocation.coherence.CoherenceAgent` protecting the
    gateway (``protect_gateway``) selectively invalidates entries as
    revocation records arrive (push/pull/hybrid strategies).

    Args:
        resolve_domain: maps a request to its governing domain name;
            None (the callable, or its return value) means local.
        resolve_authoritative: optional *authoritative* resolver used
            when serving inbound forwarded batches.  When
            ``resolve_domain`` reads a TTL'd directory cache (see
            :class:`~repro.domain.directory_service.DirectoryClient`),
            a stale origin may misroute requests here; the serving-side
            re-check detects that and re-forwards to the true governing
            domain instead of mis-deciding.  Defaults to
            ``resolve_domain``.
        forward_ttl: gateway hops a forwarded batch may take.
        forward_batch: flush a target domain's buffered slots as soon
            as this many wait (default: the gateway's ``max_batch``).
        forward_delay: flush a target domain's buffered slots this many
            simulated seconds after the first entered an empty buffer
            (default: the gateway's ``max_delay``).
        peer_timeout: reply deadline for gateway→gateway envelopes
            (defaults to ``pdp_timeout``).
        remote_cache_ttl: lifetime of gateway-tier cached remote
            decisions in simulated seconds; 0 (default) disables the
            cache — the PR 4 behaviour.
        remote_cache_capacity: LRU capacity of the remote-decision
            cache.
    """

    def __init__(
        self,
        name: str,
        network,
        dispatcher: DecisionDispatcher,
        domain: str,
        resolve_domain: Optional[DomainResolver] = None,
        resolve_authoritative: Optional[DomainResolver] = None,
        forward_ttl: int = DEFAULT_FORWARD_TTL,
        forward_batch: Optional[int] = None,
        forward_delay: Optional[float] = None,
        peer_timeout: Optional[float] = None,
        remote_cache_ttl: float = 0.0,
        remote_cache_capacity: int = 10_000,
        **kwargs,
    ) -> None:
        if not domain:
            raise ValueError("a federated gateway needs a domain name")
        if forward_ttl < 1:
            raise ValueError(f"forward_ttl must be >= 1, got {forward_ttl}")
        if forward_batch is not None and forward_batch < 1:
            raise ValueError(
                f"forward_batch must be >= 1, got {forward_batch}"
            )
        if forward_delay is not None and forward_delay < 0:
            raise ValueError(
                f"forward_delay must be >= 0, got {forward_delay}"
            )
        super().__init__(name, network, dispatcher, domain=domain, **kwargs)
        self.resolve_domain = resolve_domain
        self.resolve_authoritative = resolve_authoritative
        self.forward_ttl = forward_ttl
        self.forward_batch = (
            forward_batch if forward_batch is not None else self.max_batch
        )
        self.forward_delay = (
            forward_delay if forward_delay is not None else self.max_delay
        )
        self.peer_timeout = (
            peer_timeout if peer_timeout is not None else self.pdp_timeout
        )
        #: Remote domain -> that domain's gateway address (forwarding).
        self._peers: dict[str, str] = {}
        #: Origin domain -> its registered gateway address (serving side;
        #: doubles as the expected envelope signer on the secure channel).
        self._origins: dict[str, str] = {}
        #: Remote domain -> dispatcher over its replicas (naive baseline).
        self._direct: dict[str, DecisionDispatcher] = {}
        #: Remote domain -> slots awaiting the next forwarded envelope.
        self._forward_backlog: dict[str, list[_WireSlot]] = {}
        self._forward_handles: dict[str, object] = {}
        #: Gateway-tier cache of remote decisions, keyed by the bare
        #: request identity (cache_key) — shared across every PEP
        #: behind this gateway.
        self.remote_cache: TtlCache = TtlCache(
            ttl=remote_cache_ttl,
            clock=lambda: self.now,
            capacity=remote_cache_capacity,
        )
        #: Invalidation fences: decisions *issued* at or before the
        #: fence must not (re-)enter the remote cache — an in-flight
        #: reply granted under the pre-revocation world would otherwise
        #: re-poison the cache moments after coherence cleaned it.
        self._remote_fence = 0.0
        self._subject_fences: dict[str, float] = {}
        self._resource_fences: dict[str, float] = {}
        self.requests_forwarded = 0
        self.forwarded_batches_sent = 0
        self.forwarded_batches_served = 0
        self.forwarded_decisions_returned = 0
        self.remote_decisions_delivered = 0
        self.remote_cache_hits = 0
        self.remote_cache_decisions_served = 0
        self.remote_cache_fenced = 0
        self.misroutes_detected = 0
        self.misroutes_reforwarded = 0
        self.recheck_failures = 0
        self.direct_batches_sent = 0
        self.unknown_domain_denials = 0
        self.peer_failures = 0
        self.ttl_denials = 0
        self.origin_rejections = 0
        for action in (FORWARD_ACTION, SECURE_FORWARD_ACTION):
            self.on(action, self._handle_forward)
            self.on(f"{action}:response", self._wire.handle_reply)
            self.on(f"{action}:fault", self._wire.handle_fault)

    # -- federation topology -------------------------------------------------------

    def add_peer(self, domain_name: str, gateway_address: str) -> None:
        """Register the gateway this domain forwards ``domain_name``'s
        traffic to."""
        if domain_name == self.domain:
            raise ValueError(f"{domain_name!r} is this gateway's own domain")
        self._peers[domain_name] = gateway_address

    def allow_origin(self, domain_name: str, gateway_address: str) -> None:
        """Accept forwarded batches originated by ``domain_name``.

        ``gateway_address`` pins the expected WS-Security signer on the
        secure channel.
        """
        if domain_name == self.domain:
            raise ValueError(f"{domain_name!r} is this gateway's own domain")
        self._origins[domain_name] = gateway_address

    def add_direct_route(
        self, domain_name: str, dispatcher: DecisionDispatcher
    ) -> None:
        """Route ``domain_name``'s traffic straight at its replicas.

        The naive baseline: no aggregation across this domain's PEPs at
        the remote end, one envelope per drain per remote domain per
        *source* gateway.  A registered peer gateway takes precedence.
        """
        if domain_name == self.domain:
            raise ValueError(f"{domain_name!r} is this gateway's own domain")
        self._direct[domain_name] = dispatcher

    @property
    def peer_domains(self) -> list[str]:
        return sorted(self._peers)

    @property
    def accepted_origins(self) -> list[str]:
        return sorted(self._origins)

    # -- classification ------------------------------------------------------------

    def _governing_domain(self, request: RequestContext) -> str:
        governing = (
            self.resolve_domain(request) if self.resolve_domain else None
        )
        return governing or self.domain

    def _serving_domain(self, request: RequestContext) -> str:
        """The governing domain as the *serving* side must see it.

        Inbound forwarded batches are classified with the authoritative
        resolver when one is configured: accepting an origin's (possibly
        stale-cache-derived) routing at face value would let a directory
        transfer turn into wrong decisions instead of re-forwards.
        """
        if self.resolve_authoritative is not None:
            governing = self.resolve_authoritative(request)
            return governing or self.domain
        return self._governing_domain(request)

    def _dispatch_slots(self, slots: list[_WireSlot]) -> float:
        """Partition one drawn super-batch by governing domain and send.

        Local slots ride the inherited PDP-tier path; each remote group
        becomes one forwarded (or direct) envelope.  Unknown domains
        fail safe immediately.  Envelopes serialise onto the same
        egress wire, so the paced drain waits for their summed
        transmission time.
        """
        groups: dict[str, list[_WireSlot]] = {}
        for slot in slots:
            groups.setdefault(self._governing_domain(slot.request), []).append(
                slot
            )
        tx_time = 0.0
        for target in sorted(groups, key=lambda t: (t != self.domain, t)):
            group = groups[target]
            if target == self.domain:
                tx_time += self._send_local(group)
            elif target in self._peers:
                misses = self._serve_cached_remote(group)
                if misses:
                    self._buffer_forward(target, misses)
            elif target in self._direct:
                tx_time += self._wire.send(group, job=self._direct_job(target))
            else:
                denied = sum(len(slot.entries) for slot in group)
                self.unknown_domain_denials += denied
                self.network.metrics.bump("federation.unknown_domain", denied)
                self._fail_slots(
                    group,
                    RpcFault(
                        "federation:unknown-domain",
                        f"no gateway or route for domain {target!r}",
                    ),
                )
        return tx_time

    # -- the gateway-tier remote-decision cache ---------------------------------------

    def _serve_cached_remote(
        self, slots: list[_WireSlot]
    ) -> list[_WireSlot]:
        """Serve cache hits locally; return the slots that must travel.

        A hit completes every waiting PEP entry of the slot through its
        owning queue (per-PEP enforcement, obligations and counters all
        apply, exactly as for a remote reply) without any cross-domain
        message.  Misses are returned for the forwarding buffer — their
        slots keep accumulating waiters while buffered, so the one
        forwarded query carries every PEP waiting on the identity.

        Delivery is deferred to a zero-delay event rather than run
        inline: a completion callback may submit the next request
        (closed loop) and flush straight back into this gateway, and a
        nested ``_drain_step`` while the outer drain is still
        classifying would break the paced-drain invariant (two
        scheduled drains, only one tracked).  The slot stays in
        ``_inflight_slots`` until the deferred delivery fires, so
        late-joining waiters still attach and are served with it.
        """
        if not self.remote_cache.enabled:
            return slots
        misses: list[_WireSlot] = []
        for slot in slots:
            statement = self.remote_cache.get(slot.cache_key)
            if statement is None:
                misses.append(slot)
                continue
            self.remote_cache_hits += 1
            self.network.metrics.bump("federation.remote_cache_hit")
            self.network.loop.schedule(
                0.0,
                lambda slot=slot, statement=statement: (
                    self._deliver_cached_slot(slot, statement)
                ),
                label="federation-cache-hit",
            )
        return misses

    def _deliver_cached_slot(self, slot: _WireSlot, statement) -> None:
        # Counted at delivery time so waiters that joined the inflight
        # slot after the hit are included.
        self.remote_cache_decisions_served += len(slot.entries)
        tracer = self.network.tracer
        if tracer.enabled:
            # No envelope left this gateway: the riding decisions' wire
            # phase collapses to zero, labelled as a gateway-cache hit.
            tracer.cache_hit(self, [slot], cache="gateway-remote")
        self._deliver_slots([slot], [statement])

    def _cache_remote_statements(
        self, slots: list[_WireSlot], statements: Sequence
    ) -> None:
        """Retain definitive remote decisions for the cache TTL.

        Indeterminate / NotApplicable statements are fail-safe or
        routing artefacts, not policy outcomes — caching them would pin
        a transient peer failure onto the whole PEP fleet for a TTL.
        """
        if not self.remote_cache.enabled:
            return
        for slot, statement in zip(slots, statements, strict=False):
            if not statement.response.decision.is_definitive:
                continue
            if self._fenced(slot.request, statement.issue_instant):
                self.remote_cache_fenced += 1
                continue
            self.remote_cache.put(slot.cache_key, statement)

    def _fenced(self, request: RequestContext, issued_at: float) -> bool:
        """Was this decision issued no later than a matching fence?

        The fence closes the re-poisoning race: a revocation's
        invalidation can land while a pre-revocation decision is still
        in flight; caching that reply would resurrect exactly the entry
        coherence just killed, for a whole TTL.
        """
        fence = self._remote_fence
        subject = request.subject_id
        if subject is not None:
            fence = max(fence, self._subject_fences.get(subject, 0.0))
        resource = request.resource_id
        if resource is not None:
            fence = max(fence, self._resource_fences.get(resource, 0.0))
        return fence > 0.0 and issued_at <= fence

    def invalidate_remote_decisions(self) -> None:
        """Drop every gateway-tier cached remote decision."""
        self._remote_fence = self.now
        self.remote_cache.clear()

    def invalidate_remote_decisions_for(
        self,
        subject_id: Optional[str] = None,
        resource_id: Optional[str] = None,
    ) -> int:
        """Selectively drop cached remote decisions (revocation coherence).

        The gateway-tier twin of :meth:`~repro.components.pep.
        PolicyEnforcementPoint.invalidate_decisions_for`: entries whose
        request identity touches the revoked subject and/or resource are
        dropped; everything else keeps amortising.  Returns the number
        of entries invalidated.
        """
        if subject_id is None and resource_id is None:
            return 0
        if subject_id is not None:
            self._subject_fences[subject_id] = self.now
        if resource_id is not None:
            self._resource_fences[resource_id] = self.now
        return self.remote_cache.invalidate_where(
            lambda key: cache_key_touches(
                key, subject_id=subject_id, resource_id=resource_id
            )
        )

    def remote_cache_stats(self) -> dict[str, float]:
        """Hit/miss snapshot with expired entries purged first."""
        self.remote_cache.purge_expired()
        snapshot = self.remote_cache.stats.snapshot()
        snapshot["entries"] = len(self.remote_cache)
        return snapshot

    # -- the forwarding buffer -------------------------------------------------------

    def _buffer_forward(self, target: str, slots: list[_WireSlot]) -> None:
        """Accumulate remote slots until the target's buffer fills/ages.

        The slots are already marked in flight at the gateway tier, so
        identical requests arriving meanwhile still join them (the
        buffer deepens the dedup window rather than bypassing it).
        """
        backlog = self._forward_backlog.setdefault(target, [])
        backlog.extend(slots)
        if len(backlog) >= self.forward_batch:
            self._flush_forward(target)
        elif target not in self._forward_handles:
            self._forward_handles[target] = self.network.loop.schedule(
                self.forward_delay,
                lambda: self._flush_forward(target),
                label="federation-forward",
            )

    def _flush_forward(self, target: str) -> None:
        handle = self._forward_handles.pop(target, None)
        if handle is not None:
            self.network.loop.cancel(handle)
        backlog = self._forward_backlog.get(target, [])
        while backlog:
            chunk, backlog = (
                backlog[: self.forward_batch],
                backlog[self.forward_batch :],
            )
            self._forward_backlog[target] = backlog
            self._wire.send(chunk, job=self._forward_job(target))

    # -- the forwarding wire (jobs for the shared core) -----------------------------

    def _forward_job(
        self,
        target: str,
        ttl: Optional[int] = None,
        deliver=None,
        fail=None,
    ) -> WireJob:
        peer = self._peers[target]
        hops = self.forward_ttl if ttl is None else ttl

        def select(exclude: Sequence[str]) -> Optional[str]:
            return None if peer in exclude else peer

        return WireJob(
            select=select,
            build=lambda items: self._build_forward(items, hops),
            # The inherited reply parse applies unchanged: the core pins
            # the expected signer to the envelope's destination, which
            # for a forward job is the peer gateway.
            parse=self._parse_super_reply,
            deliver=deliver if deliver is not None else self._deliver_remote_slots,
            fail=fail if fail is not None else self._fail_forwarded_slots,
            timeout=self.peer_timeout,
            on_sent=self._note_forward,
        )

    def _direct_job(self, target: str) -> WireJob:
        dispatcher = self._direct[target]
        return WireJob(
            select=lambda exclude: dispatcher.select(exclude=exclude),
            build=self._build_super_batch,
            parse=self._parse_super_reply,
            deliver=self._deliver_remote_slots,
            fail=self._fail_slots,
            timeout=self.pdp_timeout,
            dispatcher=dispatcher,
            on_sent=self._note_direct,
        )

    def _service_job(self, deliver, fail) -> WireJob:
        """Local PDP-tier service of (part of) an inbound forwarded batch."""
        return WireJob(
            select=self._select_replica,
            build=lambda items: self._build_batch_query(
                [part.request for part in items]
            ),
            parse=self._parse_super_reply,
            deliver=deliver,
            fail=fail,
            timeout=self.pdp_timeout,
            dispatcher=self.dispatcher,
        )

    def _build_forward(self, items: list, ttl: int) -> tuple:
        batch = XacmlAuthzDecisionBatchQuery.for_requests(
            [item.request for item in items],
            issuer=self.name,
            issue_instant=self.now,
        )
        forwarded = ForwardedBatchQuery(
            batch=batch,
            origin_domain=self.domain,
            origin_gateway=self.name,
            ttl=ttl,
        )
        if self.secure_channel:
            action = SECURE_FORWARD_ACTION
            payload: object = self._secure_payload(action, forwarded.to_xml())
        else:
            action = FORWARD_ACTION
            payload = forwarded.to_xml()
        return action, payload, batch

    def _note_forward(self, items: list) -> None:
        self.forwarded_batches_sent += 1
        self.requests_forwarded += len(items)

    def _note_direct(self, items: list) -> None:
        self.direct_batches_sent += 1

    def _deliver_remote_slots(
        self, slots: list[_WireSlot], statements: Sequence
    ) -> None:
        self.remote_decisions_delivered += sum(
            len(slot.entries) for slot in slots
        )
        self._cache_remote_statements(slots, statements)
        self._deliver_slots(slots, statements)

    def _fail_forwarded_slots(
        self, slots: list[_WireSlot], exc: Exception
    ) -> None:
        denied = sum(len(slot.entries) for slot in slots)
        self.peer_failures += denied
        self.network.metrics.bump("federation.peer_unreachable", denied)
        self._fail_slots(slots, exc)

    # -- the serving side ------------------------------------------------------------

    def _unwrap_forward(
        self, message: Message
    ) -> tuple[ForwardedBatchQuery, Optional[str]]:
        """Decode an inbound forward; returns (query, envelope signer)."""
        if message.kind == SECURE_FORWARD_ACTION:
            envelope = message.payload
            if not isinstance(envelope, SoapEnvelope):
                raise RpcFault(
                    "federation:bad-forward", "forward carries no SOAP envelope"
                )
            clear = verify_envelope(
                envelope,
                self.identity.keystore,
                self.identity.validator,
                decrypt_with=self.identity.keypair,
                config=SecurityConfig(require_signature=True),
                at=self.now,
            )
            forwarded = ForwardedBatchQuery.from_xml(clear.body_xml)
            return self._attach_trace(forwarded, message), signer_of(clear)
        forwarded = ForwardedBatchQuery.from_xml(str(message.payload))
        return self._attach_trace(forwarded, message), None

    def _attach_trace(
        self, forwarded: ForwardedBatchQuery, message: Message
    ) -> ForwardedBatchQuery:
        """Re-attach the header-borne trace context to the decoded
        forward (the context is carried *beside* the XML, never in it,
        so tracing cannot perturb forward sizes)."""
        header = message.headers.get(TRACE_HEADER)
        if header is None or not self.network.tracer.enabled:
            return forwarded
        return replace(forwarded, trace=str(header))

    def _reject_origin(self, code: str, reason: str) -> RpcFault:
        self.origin_rejections += 1
        self.network.metrics.bump("federation.origin_rejected")
        return RpcFault(code, reason)

    def _handle_forward(self, message: Message) -> None:
        if self.secure_channel and message.kind != SECURE_FORWARD_ACTION:
            raise self._reject_origin(
                "federation:insecure-forward",
                "this gateway only accepts signed forwards",
            )
        try:
            forwarded, signer = self._unwrap_forward(message)
        except (WsSecurityError, RpcFault) as exc:
            raise self._reject_origin("federation:bad-signature", str(exc)) from exc
        except Exception as exc:
            raise RpcFault("federation:bad-forward", str(exc)) from exc
        expected = self._origins.get(forwarded.origin_domain)
        if expected is None:
            raise self._reject_origin(
                "federation:untrusted-origin",
                f"domain {forwarded.origin_domain!r} is not an accepted origin",
            )
        if signer is not None and signer != expected:
            raise self._reject_origin(
                "federation:bad-signature",
                f"forward signed by {signer!r}, expected {expected!r}",
            )
        self.forwarded_batches_served += 1
        _ServiceContext(self, message, forwarded).start()
        return None

    def _indeterminate_statement(
        self, query: XacmlAuthzDecisionQuery, reason: str
    ) -> XacmlAuthzDecisionStatement:
        """A fail-safe answer for one forwarded query (enforced as deny)."""
        return XacmlAuthzDecisionStatement(
            response=ResponseContext.single(
                Decision.INDETERMINATE,
                status=Status(
                    code=StatusCode.PROCESSING_ERROR, message=reason
                ),
            ),
            in_response_to=query.query_id,
            issuer=self.name,
            issue_instant=self.now,
        )

    def __repr__(self) -> str:
        return (
            f"FederatedGateway({self.name}, domain={self.domain!r}, "
            f"peps={len(self._queues)}, peers={self.peer_domains}, "
            f"pending={len(self._pending_slots)}, inflight={self.inflight_count})"
        )
