"""Cross-domain gateway federation: gateway→gateway decision forwarding.

The paper's subject is *multi-domain* access control, yet a
:class:`~repro.components.fabric.DomainDecisionGateway` only serves its
own domain: every decision a PEP obtains terminates at the local PDP
tier.  This module adds the missing cross-domain path.  A
:class:`FederatedGateway` classifies each drawn super-batch slot by the
domain that *governs* its resource (via a resolver backed by the
VO-wide resource directory, see :mod:`repro.domain.directory`):

* **local** slots travel to the domain's own replica set exactly as
  before;
* **remote** slots for a registered peer domain are merged into one
  :class:`ForwardedBatchQuery` per target domain and forwarded
  gateway→gateway over the existing signed envelope profile — one
  WS-Security signature per forwarded envelope, a TTL header cutting
  forwarding loops, and per-origin demultiplexing of the returned
  statements back through each contributing PEP's queue;
* slots for an *unknown* domain, and remote batches whose peer gateway
  is unreachable or answers with a fault, fall **fail-safe**: every
  waiter is denied and a ``federation.*`` metric counter records why.

The serving side accepts forwarded batches only from registered origin
domains (trust-edge-checked at registration time, see
:func:`repro.domain.federation.federate_gateways`) and, on the secure
channel, only when the envelope is signed by that origin's registered
gateway.  Served requests that turn out to be governed by yet another
domain are forwarded onward with a decremented TTL, so a misconfigured
directory produces a bounded forwarding chain ending in an
Indeterminate fail-safe statement instead of a loop.

All wire behaviour — the in-flight map, timeout failover, reply
validation, fail-safe fan-out — comes from the shared
:class:`~repro.components.fabric.BatchWireCore`; federation only adds
classification, the forwarded-envelope profile and the origin checks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Optional, Sequence
from xml.sax.saxutils import quoteattr

from ..saml.xacml_profile import (
    XacmlAuthzDecisionBatchQuery,
    XacmlAuthzDecisionBatchStatement,
    XacmlAuthzDecisionQuery,
    XacmlAuthzDecisionStatement,
)
from ..simnet.message import Message
from ..wsvc.soap import SoapEnvelope
from ..wsvc.ws_security import (
    SecurityConfig,
    WsSecurityError,
    signer_of,
    verify_envelope,
)
from ..xacml.context import (
    Decision,
    RequestContext,
    ResponseContext,
    Status,
    StatusCode,
)
from ..xmlutil import parse_attrs
from .base import RpcFault
from .fabric import (
    DecisionDispatcher,
    DomainDecisionGateway,
    WireJob,
    _WireSlot,
)

#: Gateway→gateway forwarded decision traffic.
FORWARD_ACTION = "xacml.request.forward"
SECURE_FORWARD_ACTION = "xacml.request.forward.secure"

#: Default maximum number of gateway hops a forwarded batch may take.
DEFAULT_FORWARD_TTL = 3

#: Resolves the domain governing one request's resource (None = local).
DomainResolver = Callable[[RequestContext], Optional[str]]


@dataclass(frozen=True)
class ForwardedBatchQuery:
    """A batch decision query in transit between two domain gateways.

    Wraps the ordinary batch query with the federation headers: which
    domain (and which gateway, for signature pinning) originated it,
    and how many further gateway hops it may take.  The reply is a
    plain :class:`XacmlAuthzDecisionBatchStatement` answering the inner
    batch id, statements in query order.
    """

    batch: XacmlAuthzDecisionBatchQuery
    origin_domain: str
    origin_gateway: str
    ttl: int = DEFAULT_FORWARD_TTL

    def __post_init__(self) -> None:
        if self.ttl < 1:
            raise ValueError(f"forward TTL must be >= 1, got {self.ttl}")

    def to_xml(self) -> str:
        return (
            f"<fed:ForwardedBatchQuery "
            f"OriginDomain={quoteattr(self.origin_domain)} "
            f"OriginGateway={quoteattr(self.origin_gateway)} "
            f'TTL="{self.ttl}">'
            f"{self.batch.to_xml()}"
            f"</fed:ForwardedBatchQuery>"
        )

    @property
    def wire_size(self) -> int:
        return len(self.to_xml().encode("utf-8"))

    @classmethod
    def from_xml(cls, xml_text: str) -> "ForwardedBatchQuery":
        match = re.match(
            r"<fed:ForwardedBatchQuery ([^>]*)>(.*)"
            r"</fed:ForwardedBatchQuery>$",
            xml_text,
            re.DOTALL,
        )
        if match is None:
            raise ValueError("not a ForwardedBatchQuery")
        attrs = parse_attrs(match.group(1))
        for required in ("OriginDomain", "OriginGateway", "TTL"):
            if required not in attrs:
                raise ValueError(f"ForwardedBatchQuery missing {required}")
        return cls(
            batch=XacmlAuthzDecisionBatchQuery.from_xml(match.group(2)),
            origin_domain=attrs["OriginDomain"],
            origin_gateway=attrs["OriginGateway"],
            ttl=int(attrs["TTL"]),
        )


@dataclass
class _ServicePart:
    """One request of a forwarded batch being served at this gateway."""

    context: "_ServiceContext"
    index: int
    request: RequestContext


class _ServiceContext:
    """Gathers the answers to one inbound forwarded batch.

    The batch's requests may split across the local PDP tier, onward
    forwards (directory says another domain governs them) and immediate
    fail-safe statements (TTL exhausted, unknown domain).  The context
    holds the statement array in query order and replies to the origin
    gateway once every group has landed.
    """

    def __init__(
        self, gateway: "FederatedGateway", message: Message, fwd: ForwardedBatchQuery
    ) -> None:
        self.gateway = gateway
        self.message = message
        self.fwd = fwd
        self.statements: list = [None] * len(fwd.batch.queries)
        self.outstanding = 0
        self.replied = False

    def start(self) -> None:
        gateway = self.gateway
        local_parts: list[_ServicePart] = []
        onward: dict[str, list[_ServicePart]] = {}
        for index, query in enumerate(self.fwd.batch.queries):
            governing = gateway._governing_domain(query.request)
            if governing == gateway.domain:
                local_parts.append(_ServicePart(self, index, query.request))
            elif governing in gateway._peers and self.fwd.ttl > 1:
                onward.setdefault(governing, []).append(
                    _ServicePart(self, index, query.request)
                )
            elif governing in gateway._peers:
                gateway.ttl_denials += 1
                gateway.network.metrics.bump("federation.ttl_expired")
                self.statements[index] = gateway._indeterminate_statement(
                    query, f"forward TTL exhausted at {gateway.domain!r}"
                )
            else:
                gateway.unknown_domain_denials += 1
                gateway.network.metrics.bump("federation.unknown_domain")
                self.statements[index] = gateway._indeterminate_statement(
                    query, f"no route to domain {governing!r}"
                )
        groups: list[tuple[Optional[str], list[_ServicePart]]] = []
        if local_parts:
            groups.append((None, local_parts))
        groups.extend(sorted(onward.items()))
        self.outstanding = len(groups)
        for target, parts in groups:
            if target is None:
                gateway._wire.send(
                    parts, job=gateway._service_job(self._deliver, self._fail)
                )
            else:
                gateway._wire.send(
                    parts,
                    job=gateway._forward_job(
                        target,
                        ttl=self.fwd.ttl - 1,
                        deliver=self._deliver,
                        fail=self._fail,
                    ),
                )
        if not groups:
            self._maybe_reply()

    # -- group completion ---------------------------------------------------------

    def _deliver(self, parts: list[_ServicePart], statements: Sequence) -> None:
        for part, statement in zip(parts, statements):
            self.statements[part.index] = statement
        self._complete_group()

    def _fail(self, parts: list[_ServicePart], exc: Exception) -> None:
        gateway = self.gateway
        for part in parts:
            query = self.fwd.batch.queries[part.index]
            self.statements[part.index] = gateway._indeterminate_statement(
                query, f"fail-safe deny: {exc}"
            )
        self._complete_group()

    def _complete_group(self) -> None:
        self.outstanding -= 1
        self._maybe_reply()

    def _maybe_reply(self) -> None:
        if self.replied or self.outstanding > 0:
            return
        self.replied = True
        gateway = self.gateway
        answer = XacmlAuthzDecisionBatchStatement(
            statements=tuple(self.statements),
            in_response_to=self.fwd.batch.batch_id,
            issuer=gateway.name,
            issue_instant=gateway.now,
        )
        if self.message.kind == SECURE_FORWARD_ACTION:
            payload: object = gateway._secure_payload(
                f"{self.message.kind}:result", answer.to_xml()
            )
        else:
            payload = answer.to_xml()
        gateway.forwarded_decisions_returned += len(self.statements)
        gateway.node.send(
            self.message.reply(
                kind=f"{self.message.kind}:response", payload=payload
            )
        )


class FederatedGateway(DomainDecisionGateway):
    """A domain gateway that also routes decisions *between* domains.

    On top of the aggregation tier it inherits, the federated gateway:

    * classifies every drawn slot by governing domain (``resolve_domain``,
      usually :meth:`repro.domain.directory.ResourceDirectory.resolver`);
    * forwards remote-domain slot groups to the registered peer
      gateway of that domain (:meth:`add_peer`) as one signed
      :class:`ForwardedBatchQuery` envelope, demultiplexing the
      returned statements back through the owning PEP queues;
    * optionally routes remote groups straight at a remote replica set
      (:meth:`add_direct_route`) — the naive per-PEP-direct baseline
      experiment E18 measures federation against;
    * serves forwarded batches from registered origins
      (:meth:`allow_origin`), re-forwarding onward-governed requests
      with a decremented TTL and failing safe on exhaustion;
    * denies (fail-safe, with a metric) anything whose governing domain
      has neither a peer nor a direct route, and everything riding an
      envelope whose peer is unreachable or rejected.

    Remote slots are not forwarded the instant a drain step classifies
    them: they accumulate in a per-target-domain buffer that flushes on
    ``forward_batch`` slots or after ``forward_delay`` seconds.  The
    inter-domain hop is the expensive one (WAN latency, a WS-Security
    signature per envelope), so trading a bounded extra origin-side
    delay — tune ``forward_delay`` to a fraction of the inter-domain
    round trip — re-amortises it even when the local closed loop has
    decayed to trickle-sized drains.

    Args:
        resolve_domain: maps a request to its governing domain name;
            None (the callable, or its return value) means local.
        forward_ttl: gateway hops a forwarded batch may take.
        forward_batch: flush a target domain's buffered slots as soon
            as this many wait (default: the gateway's ``max_batch``).
        forward_delay: flush a target domain's buffered slots this many
            simulated seconds after the first entered an empty buffer
            (default: the gateway's ``max_delay``).
        peer_timeout: reply deadline for gateway→gateway envelopes
            (defaults to ``pdp_timeout``).
    """

    def __init__(
        self,
        name: str,
        network,
        dispatcher: DecisionDispatcher,
        domain: str,
        resolve_domain: Optional[DomainResolver] = None,
        forward_ttl: int = DEFAULT_FORWARD_TTL,
        forward_batch: Optional[int] = None,
        forward_delay: Optional[float] = None,
        peer_timeout: Optional[float] = None,
        **kwargs,
    ) -> None:
        if not domain:
            raise ValueError("a federated gateway needs a domain name")
        if forward_ttl < 1:
            raise ValueError(f"forward_ttl must be >= 1, got {forward_ttl}")
        if forward_batch is not None and forward_batch < 1:
            raise ValueError(
                f"forward_batch must be >= 1, got {forward_batch}"
            )
        if forward_delay is not None and forward_delay < 0:
            raise ValueError(
                f"forward_delay must be >= 0, got {forward_delay}"
            )
        super().__init__(name, network, dispatcher, domain=domain, **kwargs)
        self.resolve_domain = resolve_domain
        self.forward_ttl = forward_ttl
        self.forward_batch = (
            forward_batch if forward_batch is not None else self.max_batch
        )
        self.forward_delay = (
            forward_delay if forward_delay is not None else self.max_delay
        )
        self.peer_timeout = (
            peer_timeout if peer_timeout is not None else self.pdp_timeout
        )
        #: Remote domain -> that domain's gateway address (forwarding).
        self._peers: dict[str, str] = {}
        #: Origin domain -> its registered gateway address (serving side;
        #: doubles as the expected envelope signer on the secure channel).
        self._origins: dict[str, str] = {}
        #: Remote domain -> dispatcher over its replicas (naive baseline).
        self._direct: dict[str, DecisionDispatcher] = {}
        #: Remote domain -> slots awaiting the next forwarded envelope.
        self._forward_backlog: dict[str, list[_WireSlot]] = {}
        self._forward_handles: dict[str, object] = {}
        self.requests_forwarded = 0
        self.forwarded_batches_sent = 0
        self.forwarded_batches_served = 0
        self.forwarded_decisions_returned = 0
        self.remote_decisions_delivered = 0
        self.direct_batches_sent = 0
        self.unknown_domain_denials = 0
        self.peer_failures = 0
        self.ttl_denials = 0
        self.origin_rejections = 0
        for action in (FORWARD_ACTION, SECURE_FORWARD_ACTION):
            self.on(action, self._handle_forward)
            self.on(f"{action}:response", self._wire.handle_reply)
            self.on(f"{action}:fault", self._wire.handle_fault)

    # -- federation topology -------------------------------------------------------

    def add_peer(self, domain_name: str, gateway_address: str) -> None:
        """Register the gateway this domain forwards ``domain_name``'s
        traffic to."""
        if domain_name == self.domain:
            raise ValueError(f"{domain_name!r} is this gateway's own domain")
        self._peers[domain_name] = gateway_address

    def allow_origin(self, domain_name: str, gateway_address: str) -> None:
        """Accept forwarded batches originated by ``domain_name``.

        ``gateway_address`` pins the expected WS-Security signer on the
        secure channel.
        """
        if domain_name == self.domain:
            raise ValueError(f"{domain_name!r} is this gateway's own domain")
        self._origins[domain_name] = gateway_address

    def add_direct_route(
        self, domain_name: str, dispatcher: DecisionDispatcher
    ) -> None:
        """Route ``domain_name``'s traffic straight at its replicas.

        The naive baseline: no aggregation across this domain's PEPs at
        the remote end, one envelope per drain per remote domain per
        *source* gateway.  A registered peer gateway takes precedence.
        """
        if domain_name == self.domain:
            raise ValueError(f"{domain_name!r} is this gateway's own domain")
        self._direct[domain_name] = dispatcher

    @property
    def peer_domains(self) -> list[str]:
        return sorted(self._peers)

    @property
    def accepted_origins(self) -> list[str]:
        return sorted(self._origins)

    # -- classification ------------------------------------------------------------

    def _governing_domain(self, request: RequestContext) -> str:
        governing = (
            self.resolve_domain(request) if self.resolve_domain else None
        )
        return governing or self.domain

    def _dispatch_slots(self, slots: list[_WireSlot]) -> float:
        """Partition one drawn super-batch by governing domain and send.

        Local slots ride the inherited PDP-tier path; each remote group
        becomes one forwarded (or direct) envelope.  Unknown domains
        fail safe immediately.  Envelopes serialise onto the same
        egress wire, so the paced drain waits for their summed
        transmission time.
        """
        groups: dict[str, list[_WireSlot]] = {}
        for slot in slots:
            groups.setdefault(self._governing_domain(slot.request), []).append(
                slot
            )
        tx_time = 0.0
        for target in sorted(groups, key=lambda t: (t != self.domain, t)):
            group = groups[target]
            if target == self.domain:
                tx_time += self._wire.send(group)
            elif target in self._peers:
                self._buffer_forward(target, group)
            elif target in self._direct:
                tx_time += self._wire.send(group, job=self._direct_job(target))
            else:
                denied = sum(len(slot.entries) for slot in group)
                self.unknown_domain_denials += denied
                self.network.metrics.bump("federation.unknown_domain", denied)
                self._fail_slots(
                    group,
                    RpcFault(
                        "federation:unknown-domain",
                        f"no gateway or route for domain {target!r}",
                    ),
                )
        return tx_time

    # -- the forwarding buffer -------------------------------------------------------

    def _buffer_forward(self, target: str, slots: list[_WireSlot]) -> None:
        """Accumulate remote slots until the target's buffer fills/ages.

        The slots are already marked in flight at the gateway tier, so
        identical requests arriving meanwhile still join them (the
        buffer deepens the dedup window rather than bypassing it).
        """
        backlog = self._forward_backlog.setdefault(target, [])
        backlog.extend(slots)
        if len(backlog) >= self.forward_batch:
            self._flush_forward(target)
        elif target not in self._forward_handles:
            self._forward_handles[target] = self.network.loop.schedule(
                self.forward_delay,
                lambda: self._flush_forward(target),
                label="federation-forward",
            )

    def _flush_forward(self, target: str) -> None:
        handle = self._forward_handles.pop(target, None)
        if handle is not None:
            self.network.loop.cancel(handle)
        backlog = self._forward_backlog.get(target, [])
        while backlog:
            chunk, backlog = (
                backlog[: self.forward_batch],
                backlog[self.forward_batch :],
            )
            self._forward_backlog[target] = backlog
            self._wire.send(chunk, job=self._forward_job(target))

    # -- the forwarding wire (jobs for the shared core) -----------------------------

    def _forward_job(
        self,
        target: str,
        ttl: Optional[int] = None,
        deliver=None,
        fail=None,
    ) -> WireJob:
        peer = self._peers[target]
        hops = self.forward_ttl if ttl is None else ttl

        def select(exclude: Sequence[str]) -> Optional[str]:
            return None if peer in exclude else peer

        return WireJob(
            select=select,
            build=lambda items: self._build_forward(items, hops),
            # The inherited reply parse applies unchanged: the core pins
            # the expected signer to the envelope's destination, which
            # for a forward job is the peer gateway.
            parse=self._parse_super_reply,
            deliver=deliver if deliver is not None else self._deliver_remote_slots,
            fail=fail if fail is not None else self._fail_forwarded_slots,
            timeout=self.peer_timeout,
            on_sent=self._note_forward,
        )

    def _direct_job(self, target: str) -> WireJob:
        dispatcher = self._direct[target]
        return WireJob(
            select=lambda exclude: dispatcher.select(exclude=exclude),
            build=self._build_super_batch,
            parse=self._parse_super_reply,
            deliver=self._deliver_remote_slots,
            fail=self._fail_slots,
            timeout=self.pdp_timeout,
            dispatcher=dispatcher,
            on_sent=self._note_direct,
        )

    def _service_job(self, deliver, fail) -> WireJob:
        """Local PDP-tier service of (part of) an inbound forwarded batch."""
        return WireJob(
            select=self._select_replica,
            build=lambda items: self._build_batch_query(
                [part.request for part in items]
            ),
            parse=self._parse_super_reply,
            deliver=deliver,
            fail=fail,
            timeout=self.pdp_timeout,
            dispatcher=self.dispatcher,
        )

    def _build_forward(self, items: list, ttl: int) -> tuple:
        batch = XacmlAuthzDecisionBatchQuery.for_requests(
            [item.request for item in items],
            issuer=self.name,
            issue_instant=self.now,
        )
        forwarded = ForwardedBatchQuery(
            batch=batch,
            origin_domain=self.domain,
            origin_gateway=self.name,
            ttl=ttl,
        )
        if self.secure_channel:
            action = SECURE_FORWARD_ACTION
            payload: object = self._secure_payload(action, forwarded.to_xml())
        else:
            action = FORWARD_ACTION
            payload = forwarded.to_xml()
        return action, payload, batch

    def _note_forward(self, items: list) -> None:
        self.forwarded_batches_sent += 1
        self.requests_forwarded += len(items)

    def _note_direct(self, items: list) -> None:
        self.direct_batches_sent += 1

    def _deliver_remote_slots(
        self, slots: list[_WireSlot], statements: Sequence
    ) -> None:
        self.remote_decisions_delivered += sum(
            len(slot.entries) for slot in slots
        )
        self._deliver_slots(slots, statements)

    def _fail_forwarded_slots(
        self, slots: list[_WireSlot], exc: Exception
    ) -> None:
        denied = sum(len(slot.entries) for slot in slots)
        self.peer_failures += denied
        self.network.metrics.bump("federation.peer_unreachable", denied)
        self._fail_slots(slots, exc)

    # -- the serving side ------------------------------------------------------------

    def _unwrap_forward(
        self, message: Message
    ) -> tuple[ForwardedBatchQuery, Optional[str]]:
        """Decode an inbound forward; returns (query, envelope signer)."""
        if message.kind == SECURE_FORWARD_ACTION:
            envelope = message.payload
            if not isinstance(envelope, SoapEnvelope):
                raise RpcFault(
                    "federation:bad-forward", "forward carries no SOAP envelope"
                )
            clear = verify_envelope(
                envelope,
                self.identity.keystore,
                self.identity.validator,
                decrypt_with=self.identity.keypair,
                config=SecurityConfig(require_signature=True),
                at=self.now,
            )
            return ForwardedBatchQuery.from_xml(clear.body_xml), signer_of(clear)
        return ForwardedBatchQuery.from_xml(str(message.payload)), None

    def _reject_origin(self, code: str, reason: str) -> RpcFault:
        self.origin_rejections += 1
        self.network.metrics.bump("federation.origin_rejected")
        return RpcFault(code, reason)

    def _handle_forward(self, message: Message) -> None:
        if self.secure_channel and message.kind != SECURE_FORWARD_ACTION:
            raise self._reject_origin(
                "federation:insecure-forward",
                "this gateway only accepts signed forwards",
            )
        try:
            forwarded, signer = self._unwrap_forward(message)
        except (WsSecurityError, RpcFault) as exc:
            raise self._reject_origin("federation:bad-signature", str(exc))
        except Exception as exc:
            raise RpcFault("federation:bad-forward", str(exc))
        expected = self._origins.get(forwarded.origin_domain)
        if expected is None:
            raise self._reject_origin(
                "federation:untrusted-origin",
                f"domain {forwarded.origin_domain!r} is not an accepted origin",
            )
        if signer is not None and signer != expected:
            raise self._reject_origin(
                "federation:bad-signature",
                f"forward signed by {signer!r}, expected {expected!r}",
            )
        self.forwarded_batches_served += 1
        _ServiceContext(self, message, forwarded).start()
        return None

    def _indeterminate_statement(
        self, query: XacmlAuthzDecisionQuery, reason: str
    ) -> XacmlAuthzDecisionStatement:
        """A fail-safe answer for one forwarded query (enforced as deny)."""
        return XacmlAuthzDecisionStatement(
            response=ResponseContext.single(
                Decision.INDETERMINATE,
                status=Status(
                    code=StatusCode.PROCESSING_ERROR, message=reason
                ),
            ),
            in_response_to=query.query_id,
            issuer=self.name,
            issue_instant=self.now,
        )

    def __repr__(self) -> str:
        return (
            f"FederatedGateway({self.name}, domain={self.domain!r}, "
            f"peps={len(self._queues)}, peers={self.peer_domains}, "
            f"pending={len(self._pending_slots)}, inflight={self.inflight_count})"
        )
