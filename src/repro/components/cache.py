"""TTL caches for decisions and policies.

The paper's communication-performance analysis (Section 3.2) proposes
caching at two places: "Enforcement points may cache decisions made by
decision points.  Additionally, decision points may cache policies that
they would normally retrieve from administration points."  It also names
the cost: stale entries "may result in false positive or false negative
access control decisions", mitigated by time constraints on validity.

:class:`TtlCache` implements exactly that: time-bounded entries on the
*simulated* clock, LRU capacity eviction, explicit invalidation, and
counters that experiments E5/E6 read (hits, misses, expirations,
stale-serve opportunities).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    expirations: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_ratio": round(self.hit_ratio, 4),
        }


@dataclass
class _Entry(Generic[V]):
    value: V
    stored_at: float
    expires_at: float


class TtlCache(Generic[K, V]):
    """A TTL + LRU cache driven by an external clock function.

    Args:
        ttl: entry lifetime in simulated seconds; 0 disables caching
            entirely (every ``get`` is a miss), which experiments use as
            the no-cache baseline.
        capacity: maximum entries before LRU eviction.
        clock: callable returning the current simulated time.
    """

    def __init__(
        self,
        ttl: float,
        clock: Callable[[], float],
        capacity: int = 10_000,
    ) -> None:
        if ttl < 0:
            raise ValueError(f"ttl must be >= 0, got {ttl}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.ttl = ttl
        self.capacity = capacity
        self._clock = clock
        self._entries: OrderedDict[K, _Entry[V]] = OrderedDict()
        self.stats = CacheStats()

    @property
    def enabled(self) -> bool:
        return self.ttl > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: K) -> Optional[V]:
        """Return the cached value, or None on miss/expiry."""
        if not self.enabled:
            self.stats.misses += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if self._clock() >= entry.expires_at:
            del self._entries[key]
            self.stats.expirations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def put(self, key: K, value: V) -> None:
        if not self.enabled:
            return
        now = self._clock()
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = _Entry(
            value=value, stored_at=now, expires_at=now + self.ttl
        )

    def invalidate(self, key: K) -> bool:
        """Remove one entry; returns True if it was present."""
        if key in self._entries:
            del self._entries[key]
            self.stats.invalidations += 1
            return True
        return False

    def invalidate_where(self, predicate: Callable[[K], bool]) -> int:
        """Remove all entries whose key satisfies ``predicate``.

        Returns (and counts as invalidations) only *live* victims —
        matching entries the clock already killed are expirations, the
        same bookkeeping discipline as :meth:`clear`.
        """
        now = self._clock()
        removed = 0
        for key in [key for key in self._entries if predicate(key)]:
            entry = self._entries.pop(key)
            if now >= entry.expires_at:
                self.stats.expirations += 1
            else:
                self.stats.invalidations += 1
                removed += 1
        return removed

    def purge_expired(self) -> int:
        """Drop entries past their TTL; returns how many were dropped.

        Expired-but-unevicted entries otherwise linger until their next
        ``get`` and would be miscounted by bulk operations (a cleared
        cache is not "invalidating" entries the clock already killed).
        Callers snapshotting hit ratios purge first so ``len(cache)``
        reflects only servable entries.
        """
        now = self._clock()
        victims = [
            key
            for key, entry in self._entries.items()
            if now >= entry.expires_at
        ]
        for key in victims:
            del self._entries[key]
        self.stats.expirations += len(victims)
        return len(victims)

    def clear(self) -> None:
        """Drop everything; only *live* entries count as invalidations."""
        self.purge_expired()
        self.stats.invalidations += len(self._entries)
        self._entries.clear()

    def age_of(self, key: K) -> Optional[float]:
        """Age in seconds of a (non-expired) entry, for staleness studies."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        return self._clock() - entry.stored_at
