"""A library of ready-made obligation handlers for PEPs.

The paper (§2.3) makes obligations the mechanism for "parameterised
actions in the policy enforcement stage" — e.g. "resources should be
encrypted before being provisioned to the client and the strength of such
encryption must depend on attributes of the client".  Because "XACML does
not specify how policy obligations should be defined", deployments need a
bilateral vocabulary; this module is that vocabulary for the repo: the
obligation ids, their parameters and handler factories PEPs can register
out of the box.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..xacml.context import Obligation, RequestContext

#: Standard obligation identifiers (the bilateral agreement).
AUDIT_OBLIGATION = "urn:repro:obligation:audit"
NOTIFY_OBLIGATION = "urn:repro:obligation:notify"
ENCRYPT_RESPONSE_OBLIGATION = "urn:repro:obligation:encrypt-response"
QUOTA_OBLIGATION = "urn:repro:obligation:quota"
WATERMARK_OBLIGATION = "urn:repro:obligation:watermark"


@dataclass
class ObligationAuditTrail:
    """Sink for audit/watermark/notify obligations (test- and demo-friendly)."""

    entries: list[tuple[str, str, str, str]] = field(default_factory=list)

    def add(self, kind: str, subject: str, resource: str, detail: str) -> None:
        self.entries.append((kind, subject, resource, detail))

    def __len__(self) -> int:
        return len(self.entries)


def audit_handler(trail: ObligationAuditTrail):
    """Record every enforcement the policy marked for audit.

    Obligation parameters: ``level`` (optional, e.g. "info"/"sensitive").
    """

    def handle(obligation: Obligation, request: RequestContext) -> bool:
        level = obligation.assignment("level")
        trail.add(
            "audit",
            request.subject_id or "",
            request.resource_id or "",
            str(level.value) if level is not None else "default",
        )
        return True

    return handle


def notify_handler(
    send: Callable[[str, str], None],
):
    """Notify a configured recipient of the access.

    Obligation parameters: ``recipient`` (required) — where the
    notification goes, e.g. a data-owner mailbox or a SIEM topic.
    """

    def handle(obligation: Obligation, request: RequestContext) -> bool:
        recipient = obligation.assignment("recipient")
        if recipient is None:
            return False  # malformed obligation: fail closed
        send(
            str(recipient.value),
            f"{request.subject_id} {request.action_id} {request.resource_id}",
        )
        return True

    return handle


def encrypt_response_handler(
    encrypt: Callable[[str, str], bool],
    minimum_strength: Optional[str] = None,
):
    """The paper's canonical example: encrypt before provisioning.

    Obligation parameters: ``strength`` (required, e.g. "standard",
    "high").  ``encrypt(resource_id, strength)`` performs the actual
    protection and reports success; when ``minimum_strength`` is set, any
    obligation demanding less fails closed (misconfigured policy).
    """
    ranking = {"standard": 0, "high": 1, "maximum": 2}

    def handle(obligation: Obligation, request: RequestContext) -> bool:
        strength = obligation.assignment("strength")
        if strength is None:
            return False
        strength_name = str(strength.value)
        if (
            minimum_strength is not None
            and ranking.get(strength_name, -1) < ranking.get(minimum_strength, 99)
        ):
            return False
        return encrypt(request.resource_id or "", strength_name)

    return handle


@dataclass
class QuotaLedger:
    """Per-subject access budgets backing the quota obligation."""

    limits: dict[str, int] = field(default_factory=dict)
    used: dict[str, int] = field(default_factory=dict)

    def set_limit(self, subject_id: str, limit: int) -> None:
        self.limits[subject_id] = limit

    def consume(self, subject_id: str) -> bool:
        limit = self.limits.get(subject_id)
        if limit is None:
            return False  # no budget configured: fail closed
        spent = self.used.get(subject_id, 0)
        if spent >= limit:
            return False
        self.used[subject_id] = spent + 1
        return True

    def remaining(self, subject_id: str) -> int:
        return max(0, self.limits.get(subject_id, 0) - self.used.get(subject_id, 0))


def quota_handler(ledger: QuotaLedger):
    """Debit one unit from the subject's budget; deny once exhausted."""

    def handle(obligation: Obligation, request: RequestContext) -> bool:
        return ledger.consume(request.subject_id or "")

    return handle


def register_standard_handlers(
    pep,
    trail: Optional[ObligationAuditTrail] = None,
    ledger: Optional[QuotaLedger] = None,
) -> tuple[ObligationAuditTrail, QuotaLedger]:
    """Wire the whole standard vocabulary into a PEP in one call.

    Returns the (trail, ledger) in use so callers can inspect them.
    The encrypt/notify handlers get no-op-but-recorded implementations,
    which is the right default for simulations; production embedders pass
    their own via the individual factories.
    """
    trail = trail if trail is not None else ObligationAuditTrail()
    ledger = ledger if ledger is not None else QuotaLedger()
    pep.register_obligation_handler(AUDIT_OBLIGATION, audit_handler(trail))
    pep.register_obligation_handler(WATERMARK_OBLIGATION, audit_handler(trail))
    pep.register_obligation_handler(
        NOTIFY_OBLIGATION,
        notify_handler(lambda recipient, event: trail.add(
            "notify", recipient, "", event
        )),
    )
    pep.register_obligation_handler(
        ENCRYPT_RESPONSE_OBLIGATION,
        encrypt_response_handler(
            lambda resource, strength: trail.add(
                "encrypt", "", resource, strength
            )
            is None
            or True
        ),
    )
    pep.register_obligation_handler(QUOTA_OBLIGATION, quota_handler(ledger))
    return trail, ledger
