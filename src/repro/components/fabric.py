"""The batched decision fabric: coalescing, aggregation and dispatch.

Client-side plumbing that turns the one-query-per-message PEP→PDP hot
path into a batched, load-balanced pipeline:

* :class:`DecisionDispatcher` — routes decision traffic across a set of
  PDP replicas (round-robin or least-outstanding) and fails over to the
  next replica on :class:`~repro.components.base.RpcTimeout`, which
  makes E11-style replication an actual *throughput* mechanism rather
  than only an availability one;
* :class:`BatchWireCore` — the shared wire machinery every batching
  tier rides on: the in-flight map, timeout failover across replicas,
  reply validation (batch id + statement count, plus the caller's
  signature check) and fail-safe fan-out.  The per-PEP queue, the
  domain gateway and the cross-domain federated gateway all delegate to
  one core instead of carrying private copies;
* :class:`CoalescingDecisionQueue` — accumulates a PEP's outbound
  decision requests and flushes them as one
  :class:`~repro.saml.xacml_profile.XacmlAuthzDecisionBatchQuery` when
  the batch fills (``max_batch``) or ages out (``max_delay``), with
  in-flight deduplication: identical concurrent requests ride one wire
  slot and every waiter gets its own enforcement result;
* :class:`DomainDecisionGateway` — a per-domain aggregation point many
  PEPs register with.  Queue flushes from every registered PEP merge
  into *super-batches*: identical requests from different PEPs share
  one wire slot (cross-PEP dedup), results are demultiplexed back to
  each owning PEP's queue for per-PEP enforcement, and an optional
  fairness cap bounds one chatty PEP's share of any super-batch so its
  backlog cannot starve quieter peers.

The cross-domain tier (:class:`~repro.components.federation.
FederatedGateway`) extends the gateway with gateway→gateway forwarding
for requests governed by other domains.

The queue and gateway are fully event-driven: flushes *send* a message
and return, and replies/timeouts are handled as ordinary inbound events,
so a completion callback may safely submit the next request (the
closed-loop pattern of :mod:`repro.workloads.highload`) without growing
the stack.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Protocol, Sequence, Union

from ..observability.tracing import TRACE_HEADER
from ..simnet.events import EventHandle
from ..simnet.message import Message
from ..simnet.network import Network
from ..wsvc.soap import SoapEnvelope
from ..wsvc.ws_security import (
    SecurityConfig,
    WsSecurityError,
    secure_envelope,
    signer_of,
    verify_envelope,
)
from ..saml.xacml_profile import (
    XacmlAuthzDecisionBatchQuery,
    XacmlAuthzDecisionBatchStatement,
)
from ..xacml.context import RequestContext
from .base import Component, ComponentIdentity, RpcFault, RpcTimeout, _parse_fault
from .pdp import BATCH_QUERY_ACTION, SECURE_BATCH_QUERY_ACTION
from .placement import PlacementMap, PlacementSpec

#: Metrics sample series fed with per-request submit→completion delays.
QUEUE_LATENCY_SERIES = "fabric.queue_latency"

#: Metrics sample series fed with gateway super-batch sizes (unique
#: requests per envelope).
SUPER_BATCH_SERIES = "fabric.super_batch_size"


def pep_latency_series(pep_name: str) -> str:
    """Per-PEP submit→completion sample series (fairness reporting)."""
    return f"{QUEUE_LATENCY_SERIES}.{pep_name}"


#: Load-balancing policies the dispatcher understands by name.  The
#: names are a back-compat factory over the :class:`RoutingPolicy`
#: implementations below; callers may also pass a policy object.
DISPATCH_POLICIES = (
    "round-robin",
    "least-outstanding",
    "hash-subject",
    "hash-resource",
)


class RoutingPolicy(Protocol):
    """How a :class:`DecisionDispatcher` picks among live replicas.

    A policy is pure selection logic over the dispatcher's bookkeeping
    (replica list, outstanding counters, rotation cursor); the
    dispatcher keeps owning the counters and the failover loop.

    Attributes:
        name: stable identifier, also accepted by the string factory.
    """

    name: str

    def choose(
        self,
        dispatcher: "DecisionDispatcher",
        candidates: Sequence[str],
        request: Optional[RequestContext] = None,
    ) -> str:
        """Pick one of ``candidates`` (non-empty, in ring order)."""
        ...


class RoundRobinRouting:
    """Rotate through the replica ring regardless of load or key."""

    name = "round-robin"

    def choose(self, dispatcher, candidates, request=None) -> str:
        return dispatcher._rotate(candidates)

    def __repr__(self) -> str:
        return "RoundRobinRouting()"


class LeastOutstandingRouting:
    """Prefer the replica with the fewest in-flight envelopes.

    Only differs from round-robin once replies actually take time —
    i.e. under the PDP service-time model.  Ties rotate, because on the
    synchronous path outstanding counts are back to zero by the next
    select and least-outstanding would otherwise pin every request to
    the first replica.
    """

    name = "least-outstanding"

    def choose(self, dispatcher, candidates, request=None) -> str:
        lowest = min(dispatcher.outstanding[r] for r in candidates)
        ties = [r for r in candidates if dispatcher.outstanding[r] == lowest]
        return dispatcher._rotate(ties)

    def __repr__(self) -> str:
        return "LeastOutstandingRouting()"


class ConsistentHashRouting:
    """Route each request to the replica owning its placement key.

    The sharded tier's client half: with a :class:`~repro.components.
    placement.PlacementSpec` shared with the PDP replicas, decisions for
    one subject (or resource) always land on the replica that owns that
    key's attribute partition.  Failover and keyless traffic walk the
    ring: excluded owners fall through to the key's ring successors, and
    a selection with no request at all (pure load-balancing calls)
    degrades to rotation.
    """

    name = "hash"

    def __init__(self, placement: PlacementSpec) -> None:
        if not isinstance(placement, PlacementSpec):
            raise ValueError(
                f"ConsistentHashRouting needs a PlacementSpec, got "
                f"{type(placement).__name__}"
            )
        self.placement = placement
        self.name = f"hash-{placement.shard_by}"

    def choose(self, dispatcher, candidates, request=None) -> str:
        if request is not None:
            for address in self.placement.preference_for(request):
                if address in candidates:
                    return address
        return dispatcher._rotate(candidates)

    def __repr__(self) -> str:
        return f"ConsistentHashRouting({self.placement.shard_by})"


def make_routing_policy(
    policy: Union[str, RoutingPolicy],
    replicas: Sequence[str] = (),
    placement: Optional[PlacementSpec] = None,
) -> RoutingPolicy:
    """Resolve a policy name (or pass a policy object through).

    The hash policies need a placement; when none is supplied one is
    derived from the replica list, which is correct exactly when the
    server side shares the same default ring (the
    :func:`~repro.components.placement.PlacementSpec` constructor
    defaults).
    """
    if not isinstance(policy, str):
        return policy
    if policy == "round-robin":
        return RoundRobinRouting()
    if policy == "least-outstanding":
        return LeastOutstandingRouting()
    if policy in ("hash-subject", "hash-resource"):
        if placement is None:
            if not replicas:
                raise ValueError(
                    f"routing policy {policy!r} needs replicas or a placement"
                )
            placement = PlacementSpec(
                shard_by=policy.removeprefix("hash-"),
                ring=PlacementMap(replicas),
            )
        return ConsistentHashRouting(placement)
    raise ValueError(
        f"unknown dispatch policy {policy!r}; "
        f"expected one of {DISPATCH_POLICIES}"
    )


class DecisionDispatcher:
    """Load-balances decision queries over PDP replicas, with failover.

    The dispatcher is transport-neutral bookkeeping plus two entry
    points: :meth:`dispatch` performs a synchronous RPC with failover
    for the blocking PEP paths, while the coalescing queue drives
    :meth:`select` / :meth:`note_sent` / :meth:`note_done` itself for
    the event-driven path.  *Which* replica a selection picks is
    delegated to a :class:`RoutingPolicy` — pass one directly, or a
    policy name from :data:`DISPATCH_POLICIES` for the back-compat
    string factory.

    Args:
        replica_addresses: the PDP replica ring, in order.
        policy: routing policy object or name.
        placement: placement spec for the hash policies; ignored by the
            load-based policies.  When a hash policy name is given
            without a placement, a default ring over
            ``replica_addresses`` is derived.
    """

    def __init__(
        self,
        replica_addresses: Sequence[str],
        policy: Union[str, RoutingPolicy] = "round-robin",
        placement: Optional[PlacementSpec] = None,
    ) -> None:
        if not replica_addresses:
            raise ValueError("dispatcher needs at least one PDP replica")
        self.replicas = list(replica_addresses)
        self.routing = make_routing_policy(
            policy, replicas=self.replicas, placement=placement
        )
        self.outstanding: dict[str, int] = {
            address: 0 for address in self.replicas
        }
        self.dispatches = 0
        self.failovers = 0
        self._rr = 0

    @property
    def policy(self) -> str:
        """The routing policy's name (back-compat string view)."""
        return self.routing.name

    @property
    def placement(self) -> Optional[PlacementSpec]:
        """The placement spec when routing is placement-aware."""
        return getattr(self.routing, "placement", None)

    def _rotate(self, candidates: Sequence[str]) -> str:
        """Next candidate under the shared rotation cursor.

        One cursor serves every policy so ties (and round-robin's
        everything-is-a-tie) rotate through the ring deterministically.
        """
        while True:  # candidates is a non-empty subset of the ring
            choice = self.replicas[self._rr % len(self.replicas)]
            self._rr += 1
            if choice in candidates:
                return choice

    def select(
        self,
        exclude: Sequence[str] = (),
        request: Optional[RequestContext] = None,
    ) -> Optional[str]:
        """Pick the next replica, or None when every candidate is excluded.

        ``request`` lets key-aware policies route by placement key; the
        load-based policies ignore it.
        """
        candidates = [r for r in self.replicas if r not in exclude]
        if not candidates:
            return None
        return self.routing.choose(self, candidates, request)

    def note_sent(self, address: str) -> None:
        self.outstanding[address] += 1

    def note_done(self, address: str) -> None:
        self.outstanding[address] = max(0, self.outstanding[address] - 1)

    def partition(
        self, items: Sequence, request_of: Callable[[object], RequestContext]
    ) -> list[tuple[Optional[str], list]]:
        """Group ``items`` by owning replica under the placement.

        The shard-aware tiers call this before putting envelopes on the
        wire so one flush becomes one envelope *per owner* instead of
        one envelope aimed wherever the load balancer points.  Without a
        placement everything stays in a single group with no target
        (``None``), which the senders treat exactly like today's path.
        Groups preserve first-seen owner order and intra-group item
        order, so decisions still come back in a deterministic order.
        """
        placement = self.placement
        if placement is None:
            return [(None, list(items))]
        groups: dict[str, list] = {}
        for item in items:
            owner = placement.owner_of(request_of(item))
            groups.setdefault(owner, []).append(item)
        return list(groups.items())

    def selector_for(
        self, target: Optional[str]
    ) -> Callable[[Sequence[str]], Optional[str]]:
        """A select callable pinned to ``target`` with rotation failover.

        Used as the per-envelope ``WireJob.select`` override for a
        partitioned send: the first attempt goes to the owning replica,
        a timeout fails over through the ordinary selection (the owner
        lands in ``exclude``), and ``target=None`` degrades to plain
        :meth:`select`.
        """

        def select(exclude: Sequence[str] = ()) -> Optional[str]:
            if (
                target is not None
                and target in self.replicas
                and target not in exclude
            ):
                return target
            return self.select(exclude=exclude)

        return select

    def dispatch(
        self,
        caller,
        action: str,
        payload,
        timeout: float,
        request: Optional[RequestContext] = None,
    ) -> tuple[Message, str]:
        """Synchronous RPC through the next replica; failover on timeout.

        Faults are *answers* (an authentication rejection must not be
        retried against a sibling), so only :class:`RpcTimeout` rotates
        to the next replica.  Raises the last timeout when every replica
        has been tried.

        Returns:
            ``(reply, address)`` — the reply message and which replica
            produced it (secure callers pin signature checks to it).
        """
        self.dispatches += 1
        tried: list[str] = []
        last_timeout: Optional[RpcTimeout] = None
        while True:
            address = self.select(exclude=tried, request=request)
            if address is None:
                if last_timeout is not None:
                    raise last_timeout
                raise RpcTimeout(caller.name, "<none>", action, caller.now)
            tried.append(address)
            self.note_sent(address)
            try:
                reply = caller.call(address, action, payload, timeout=timeout)
            except RpcTimeout as exc:
                last_timeout = exc
                self.failovers += 1
                continue
            finally:
                self.note_done(address)
            return reply, address

    def selector(self) -> Callable[[], Optional[str]]:
        """Adapter usable as a PEP's ``pdp_selector`` hook."""
        return lambda: self.select()

    def __repr__(self) -> str:
        return (
            f"DecisionDispatcher({self.policy}, replicas={len(self.replicas)}, "
            f"outstanding={sum(self.outstanding.values())})"
        )


#: Completion callback: receives the waiter's EnforcementResult.
CompletionCallback = Callable[[object], None]


@dataclass
class _PendingDecision:
    """One unique request awaiting batching, with all its waiters.

    ``key`` is the *scoped* dedup key — the owning PEP's (domain, name)
    identity plus the request's cache key — so entries from different
    PEPs can never collide in any shared map (two PEPs behind one
    gateway may carry identical-looking requests that must still be
    enforced, cached and counted per PEP).  ``cache_key`` is the bare
    request identity used for the owner's decision cache and for the
    gateway's cross-PEP wire dedup.
    """

    request: RequestContext
    key: tuple
    cache_key: tuple
    enqueued_at: float
    owner: "CoalescingDecisionQueue"
    callbacks: list[CompletionCallback] = field(default_factory=list)
    #: Sampled decision-path trace (``observability.DecisionTrace``),
    #: ``None`` when tracing is off or this decision was not sampled.
    trace: Optional[object] = None


# -- the shared wire core ----------------------------------------------------------


@dataclass
class WireJob:
    """How one class of envelopes travels: the core's variation points.

    A tier configures a default job at construction; sends may override
    it per envelope (the federated gateway uses that to aim the same
    core at local replicas, peer gateways and remote replica sets).

    Attributes:
        select: pick the next destination given the already-tried list;
            None means every candidate is exhausted (fail-safe).
        build: turn the in-flight items into ``(action, payload,
            batch)``; called once per transmit attempt so a failover
            re-send gets a fresh envelope.
        parse: turn a reply message from ``replica`` into an
            :class:`XacmlAuthzDecisionBatchStatement`; the place to
            enforce the tier's signature policy.
        deliver: fan a validated statement list out to the items.
        fail: fan one exception out to the items (fail-safe deny).
        timeout: per-attempt reply deadline in simulated seconds.
        dispatcher: optional dispatcher whose outstanding counters and
            failover tally this job maintains.
        on_sent: called with the items after each transmit attempt
            (per-tier counters and sample series).
    """

    select: Callable[[Sequence[str]], Optional[str]]
    build: Callable[[list], tuple]
    parse: Callable[[Message, str], XacmlAuthzDecisionBatchStatement]
    deliver: Callable[[list, Sequence], None]
    fail: Callable[[list, Exception], None]
    timeout: float
    dispatcher: Optional[DecisionDispatcher] = None
    on_sent: Optional[Callable[[list], None]] = None


@dataclass
class _InflightEnvelope:
    """One batch envelope on the wire, awaiting its reply or deadline."""

    batch: object  # anything with .batch_id
    items: list
    replica: str
    tried: list[str]
    sent_at: float
    job: WireJob
    #: Open envelope span for this transmit attempt (tracing only).
    trace: Optional[object] = None

    # The per-PEP tier calls its items entries; the gateway tiers call
    # them slots.  Both views read the same list.
    @property
    def entries(self) -> list:
        return self.items

    @property
    def slots(self) -> list:
        return self.items


class BatchWireCore:
    """The shared in-flight/failover machinery of every batching tier.

    Owns exactly the four duplicated pieces the tiers used to carry
    privately: the in-flight map (msg_id → envelope), timeout failover
    across replicas, reply validation (batch id and statement count on
    top of the job's parse/signature step) and fail-safe fan-out on
    faults, forged replies and replica exhaustion.

    The core is deliberately policy-free: *what* travels, *where* it
    may go and *how* results land stay with the owning tier through its
    :class:`WireJob`.
    """

    def __init__(
        self,
        component: Component,
        job: WireJob,
        actions: Sequence[str] = (),
        label: str = "wire",
    ) -> None:
        self.component = component
        self.job = job
        self.label = label
        self._inflight: dict[int, _InflightEnvelope] = {}
        self.envelopes_sent = 0
        self.failovers = 0
        for action in actions:
            component.on(f"{action}:response", self.handle_reply)
            component.on(f"{action}:fault", self.handle_fault)

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    # -- sending ------------------------------------------------------------------

    def send(
        self, items: list, tried: Sequence[str] = (), job: Optional[WireJob] = None
    ) -> float:
        """Put one envelope on the wire; returns its serialisation time.

        The return value (message bytes over the egress link's
        bandwidth) is what a paced drain waits before emitting the next
        envelope.  When every destination is exhausted the items fail
        safe immediately and 0.0 is returned.
        """
        job = job if job is not None else self.job
        replica = job.select(tried)
        if replica is None:
            job.fail(
                list(items),
                RpcTimeout(
                    self.component.name, "<none>", "no PDP reachable",
                    self.component.now,
                ),
            )
            return 0.0
        return self._transmit(replica, list(items), list(tried), job)

    def _transmit(
        self, replica: str, items: list, tried: list[str], job: WireJob
    ) -> float:
        action, payload, batch = job.build(items)
        message = Message(
            sender=self.component.name,
            recipient=replica,
            kind=action,
            payload=payload,
        )
        tracer = self.component.network.tracer
        envelope_trace = None
        if tracer.enabled:
            # The context rides the message *headers* — outside the
            # size model, like a traceparent header — so tracing never
            # changes envelope bytes, counts or pacing.
            envelope_trace = tracer.envelope_sent(
                self.component,
                items,
                batch_id=getattr(batch, "batch_id", ""),
                kind=action,
                replica=replica,
                attempt=len(tried) + 1,
            )
            message.headers[TRACE_HEADER] = envelope_trace.context.header()
        self._inflight[message.msg_id] = _InflightEnvelope(
            batch=batch,
            items=items,
            replica=replica,
            tried=tried + [replica],
            sent_at=self.component.now,
            job=job,
            trace=envelope_trace,
        )
        if job.dispatcher is not None:
            job.dispatcher.note_sent(replica)
        self.envelopes_sent += 1
        if job.on_sent is not None:
            job.on_sent(items)
        self.component.node.send(message)
        self.component.network.loop.schedule(
            job.timeout,
            lambda: self._check_timeout(message.msg_id),
            label=f"{self.label}-timeout",
        )
        link = self.component.network.link_between(self.component.name, replica)
        return message.size_bytes / link.bandwidth

    # -- replies, faults, deadlines ----------------------------------------------

    def _take_inflight(
        self, reply_to: Optional[int]
    ) -> Optional[_InflightEnvelope]:
        if reply_to is None:
            return None
        inflight = self._inflight.pop(reply_to, None)
        if inflight is not None and inflight.job.dispatcher is not None:
            inflight.job.dispatcher.note_done(inflight.replica)
        return inflight

    def _check_timeout(self, msg_id: int) -> None:
        inflight = self._take_inflight(msg_id)
        if inflight is None:
            return  # answered in time (or already failed over)
        job = inflight.job
        replica = job.select(inflight.tried)
        if replica is None:
            if inflight.trace is not None:
                self.component.network.tracer.envelope_done(
                    inflight.trace, inflight.items, "exhausted"
                )
            job.fail(
                inflight.items,
                RpcTimeout(
                    self.component.name,
                    inflight.replica,
                    "batch decision query",
                    self.component.now,
                ),
            )
            return
        self.failovers += 1
        if job.dispatcher is not None:
            job.dispatcher.failovers += 1
        if inflight.trace is not None:
            self.component.network.tracer.envelope_done(
                inflight.trace, inflight.items, "timeout"
            )
        self._transmit(replica, inflight.items, inflight.tried, job)

    def handle_reply(self, message: Message) -> None:
        inflight = self._take_inflight(message.reply_to)
        if inflight is None:
            return None  # late reply after a timeout-triggered failover
        job = inflight.job
        try:
            statement_batch = job.parse(message, inflight.replica)
            if statement_batch.in_response_to != inflight.batch.batch_id:
                raise ValueError(
                    f"reply answers {statement_batch.in_response_to!r}, "
                    f"expected {inflight.batch.batch_id!r}"
                )
            if len(statement_batch.statements) != len(inflight.items):
                raise ValueError(
                    f"reply has {len(statement_batch.statements)} statements "
                    f"for {len(inflight.items)} requests"
                )
        except Exception as exc:  # malformed/forged reply: fail safe
            if inflight.trace is not None:
                self.component.network.tracer.envelope_done(
                    inflight.trace, inflight.items, "reply-rejected"
                )
            job.fail(inflight.items, exc)
            return None
        if inflight.trace is not None:
            self.component.network.tracer.envelope_done(
                inflight.trace, inflight.items, "ok"
            )
        job.deliver(inflight.items, statement_batch.statements)
        return None

    def handle_fault(self, message: Message) -> None:
        inflight = self._take_inflight(message.reply_to)
        if inflight is None:
            return None
        code, reason = _parse_fault(str(message.payload))
        if inflight.trace is not None:
            self.component.network.tracer.envelope_done(
                inflight.trace, inflight.items, "fault"
            )
        # A fault is an answer, not a crash: no failover, fail-safe deny.
        inflight.job.fail(inflight.items, RpcFault(code, reason))
        return None

    def __repr__(self) -> str:
        return (
            f"BatchWireCore({self.component.name}, label={self.label}, "
            f"inflight={len(self._inflight)})"
        )


class CoalescingDecisionQueue:
    """Client-side request coalescing in front of a PEP's PDP traffic.

    Args:
        pep: the owning :class:`~repro.components.pep.
            PolicyEnforcementPoint`; its revocation guard, decision
            cache, obligation handlers and counters all apply exactly as
            on the synchronous path.
        max_batch: flush as soon as this many *unique* requests wait.
        max_delay: flush this many simulated seconds after the first
            request entered an empty queue (latency bound).
        dispatcher: optional replica dispatcher; without one every batch
            goes to the PEP's configured/selected PDP and a timeout is a
            fail-safe denial rather than a failover.
        gateway: optional :class:`DomainDecisionGateway`; when given,
            flushes hand their entries to the gateway (the domain's
            shared aggregation point) instead of putting a per-PEP
            envelope on the wire, and the gateway completes them via
            :meth:`_complete_entry` / :meth:`_fail_entry`.
    """

    def __init__(
        self,
        pep,
        max_batch: int = 16,
        max_delay: float = 0.002,
        dispatcher: Optional[DecisionDispatcher] = None,
        gateway: Optional["DomainDecisionGateway"] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.pep = pep
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.dispatcher = dispatcher
        self.gateway = gateway
        #: Scope prefix of every dedup key this queue mints: the owning
        #: PEP's identity.  Keeps entries from different PEPs distinct
        #: even inside shared (gateway-tier) bookkeeping.
        self._scope = (pep.domain, pep.name)
        self._pending: dict[tuple, _PendingDecision] = {}
        #: scoped key -> entry for every request currently on the wire,
        #: so in-flight dedup is O(1) rather than a scan per submission.
        self._inflight_keys: dict[tuple, _PendingDecision] = {}
        self._flush_handle: Optional[EventHandle] = None
        self.submissions = 0
        self.deduplicated = 0
        self.batches_sent = 0
        self.flushes_on_size = 0
        self.flushes_on_delay = 0
        self.completions = 0
        self._wire = BatchWireCore(
            pep,
            WireJob(
                select=self._select_replica,
                build=self._build_envelope,
                parse=self._parse_envelope_reply,
                deliver=self._deliver_entries,
                fail=self._fail_batch,
                timeout=pep.config.pdp_timeout,
                dispatcher=dispatcher,
                on_sent=self._note_batch_sent,
            ),
            actions=(BATCH_QUERY_ACTION, SECURE_BATCH_QUERY_ACTION),
            label="fabric",
        )
        if gateway is not None:
            gateway.register(self)

    def scoped_key(self, cache_key: tuple) -> tuple:
        """The PEP/domain-scoped dedup key for one request identity."""
        return (self._scope, cache_key)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def _inflight(self) -> dict[int, _InflightEnvelope]:
        return self._wire._inflight

    @property
    def inflight_count(self) -> int:
        return self._wire.inflight_count

    @property
    def failovers(self) -> int:
        return self._wire.failovers

    # -- submission --------------------------------------------------------------

    def submit(
        self, request: RequestContext, callback: CompletionCallback
    ) -> bool:
        """Enqueue one enforcement; ``callback`` receives the result.

        Returns True when the request completed synchronously (revocation
        guard denial or decision-cache hit) and False when it was queued
        for a batched PDP round-trip.  Identical requests already queued
        or in flight are deduplicated: the new waiter joins the existing
        wire slot.
        """
        self.submissions += 1
        self.pep.enforcements += 1
        cache_key = request.cache_key()
        tracer = self.pep.network.tracer
        immediate = self.pep._pre_decision(request, cache_key)
        if immediate is not None:
            if tracer.enabled:
                tracer.sync_decision(self.pep, request, immediate)
            self.completions += 1
            callback(immediate)
            return True
        key = self.scoped_key(cache_key)
        entry = self._pending.get(key) or self._inflight_keys.get(key)
        if entry is not None:
            self.deduplicated += 1
            if tracer.enabled:
                tracer.join_decision(entry.trace)
            entry.callbacks.append(callback)
            return False
        entry = _PendingDecision(
            request=request,
            key=key,
            cache_key=cache_key,
            enqueued_at=self.pep.now,
            owner=self,
            callbacks=[callback],
            trace=(
                tracer.begin_decision(self.pep, request)
                if tracer.enabled
                else None
            ),
        )
        self._pending[key] = entry
        if len(self._pending) >= self.max_batch:
            self.flushes_on_size += 1
            self.flush()
        elif self._flush_handle is None:
            self._flush_handle = self.pep.network.loop.schedule(
                self.max_delay, self._flush_on_delay, label="fabric-flush"
            )
        return False

    def _flush_on_delay(self) -> None:
        self._flush_handle = None
        if self._pending:
            self.flushes_on_delay += 1
            self.flush()

    def flush(self) -> None:
        """Send everything pending as one batch query immediately.

        With a gateway attached the entries are handed to the domain's
        aggregation point instead; they count as in flight here (so
        later identical submissions still join them) and the gateway
        completes or fails each one through this queue.
        """
        if self._flush_handle is not None:
            self.pep.network.loop.cancel(self._flush_handle)
            self._flush_handle = None
        if not self._pending:
            return
        entries = list(self._pending.values())
        self._pending.clear()
        now = self.pep.now
        for entry in entries:  # stays put until completion/failure
            self._inflight_keys[entry.key] = entry
            if entry.trace is not None:
                entry.trace.mark("flush", now)
        if self.gateway is not None:
            # No envelope leaves this queue: the gateway owns the wire
            # (its super_batches_sent counts envelopes; this queue's
            # batches_sent stays a wire-traffic counter and is not
            # incremented for hand-offs).
            self.gateway.ingest(self, entries)
            return
        self._send_partitioned(entries)

    def _send_partitioned(self, entries: list) -> None:
        """Send one flush, split into one envelope per owning shard.

        With a placement-aware dispatcher each group is pinned to the
        replica owning its key range (timeouts still fail over through
        ordinary selection); otherwise the whole flush rides one
        envelope exactly as before.
        """
        if self.dispatcher is None or self.dispatcher.placement is None:
            self._wire.send(entries)
            return
        for target, group in self.dispatcher.partition(
            entries, lambda entry: entry.request
        ):
            job = replace(
                self._wire.job, select=self.dispatcher.selector_for(target)
            )
            self._wire.send(group, job=job)

    # -- the wire (BatchWireCore variation points) --------------------------------

    def _select_replica(self, exclude: Sequence[str]) -> Optional[str]:
        if self.dispatcher is not None:
            return self.dispatcher.select(exclude=exclude)
        if exclude:
            return None  # no dispatcher: a timeout has nowhere to go
        return self.pep._choose_pdp()

    def _build_envelope(self, entries: list) -> tuple:
        return self.pep._build_batch_query(
            [entry.request for entry in entries]
        )

    def _parse_envelope_reply(
        self, message: Message, replica: str
    ) -> XacmlAuthzDecisionBatchStatement:
        return self.pep._parse_batch_reply(message, replica)

    def _note_batch_sent(self, entries: list) -> None:
        self.batches_sent += 1

    def _deliver_entries(self, entries: list, statements: Sequence) -> None:
        for entry, statement in zip(entries, statements, strict=False):
            self._complete_entry(entry, statement)

    # -- per-entry completion (driven locally or by the gateway) -----------------

    def _record_latency(self, entry: _PendingDecision) -> None:
        delay = self.pep.now - entry.enqueued_at
        metrics = self.pep.network.metrics
        metrics.record_sample(QUEUE_LATENCY_SERIES, delay)
        metrics.record_sample(pep_latency_series(self.pep.name), delay)

    def _complete_entry(self, entry: _PendingDecision, statement) -> None:
        """Deliver one decision statement to every waiter of ``entry``.

        Caching, obligation enforcement and counters all happen against
        the *owning* PEP — the gateway demultiplexes a shared wire slot
        into one of these calls per contributing PEP.
        """
        self._inflight_keys.pop(entry.key, None)
        self.pep.decision_cache.put(entry.cache_key, statement)
        self._record_latency(entry)
        last_result = None
        for callback in entry.callbacks:
            result = self.pep._enforce(
                statement.response.decision,
                tuple(statement.response.result.obligations),
                entry.request,
                source="pdp",
            )
            self.completions += 1
            last_result = result
            callback(result)
        if entry.trace is not None:
            self.pep.network.tracer.finish_decision(
                entry.trace,
                self.pep,
                granted=getattr(last_result, "granted", False),
                decision=str(statement.response.decision),
                source="pdp",
            )

    def _fail_entry(self, entry: _PendingDecision, exc: Exception) -> None:
        """Fail-safe denial for every waiter of one entry."""
        self._inflight_keys.pop(entry.key, None)
        self._record_latency(entry)
        last_result = None
        for callback in entry.callbacks:
            result = self.pep._fail_safe_result(exc)
            self.completions += 1
            last_result = result
            callback(result)
        if entry.trace is not None:
            self.pep.network.tracer.finish_decision(
                entry.trace,
                self.pep,
                granted=getattr(last_result, "granted", False),
                decision=str(getattr(last_result, "decision", "")),
                source=getattr(last_result, "source", "fail-safe"),
                error=type(exc).__name__,
            )

    def _fail_batch(
        self, entries: list[_PendingDecision], exc: Exception
    ) -> None:
        """Fail-safe denial for every waiter of every entry.

        The event-driven queue has no caller to re-raise into, so it
        always enforces the deny-on-failure stance regardless of
        ``PepConfig.deny_on_failure`` — the fail-open variant only
        exists on the synchronous path.
        """
        for entry in entries:
            self._fail_entry(entry, exc)

    def __repr__(self) -> str:
        return (
            f"CoalescingDecisionQueue(pep={self.pep.name}, "
            f"max_batch={self.max_batch}, pending={len(self._pending)}, "
            f"inflight={self.inflight_count})"
        )


@dataclass
class _WireSlot:
    """One unique request at the gateway tier, shared across PEPs.

    Entries from different PEPs whose requests have the same cache key
    attach to one slot (cross-PEP dedup): the slot travels once, the
    reply statement is enforced per entry through each owning queue.
    """

    request: RequestContext
    cache_key: tuple
    owner: str  # name of the PEP whose flush first contributed the slot
    entries: list[_PendingDecision] = field(default_factory=list)


class DomainDecisionGateway(Component):
    """Per-domain aggregation point between many PEPs and the PDP tier.

    PR 2's coalescing queue amortises per-envelope cost *per PEP*; a
    domain full of PEPs still pays one envelope per PEP per flush.  The
    gateway is the missing tier the paper's multi-domain architecture
    implies: every registered PEP's queue flushes into it, and it merges
    those flushes into super-batches for the shared
    :class:`DecisionDispatcher`:

    * **cross-PEP dedup** — identical requests from different PEPs ride
      one wire slot; each PEP still gets its own enforcement (its own
      obligations, counters, decision cache) when the slot's statement
      is demultiplexed back through the owning queues;
    * **fairness** — super-batches are drawn round-robin across the
      registered PEPs' backlogs, and ``fairness_cap`` (when set) hard-
      bounds one PEP's share of any super-batch, so a chatty PEP's
      backlog turns into extra envelopes for *it* rather than queueing
      delay for everyone else;
    * **failover** — like the per-PEP queue, a timed-out super-batch is
      re-sent to the next replica; faults are answers and fail safe.
      Both behaviours come from the shared :class:`BatchWireCore`, not
      a private copy.

    The PEP→gateway hand-off is an intra-domain call (the gateway is
    the domain's local aggregation sidecar); only gateway→PDP traffic
    crosses the simulated network, which is exactly the boundary whose
    per-message cost the paper's §3.2 analysis worries about.

    Args:
        name: network address of the gateway component.
        network: the shared simulated network.
        dispatcher: replica dispatcher the gateway feeds (required —
            aggregation without dispatch would re-create the single
            choke point replication exists to remove).
        domain: owning administrative domain.
        identity: key material for the secure channel.
        max_batch: flush as soon as this many unique slots are pending;
            also the hard size cap of one super-batch envelope (a flush
            with a larger backlog drains as several envelopes, which
            the dispatcher spreads over replicas).
        max_delay: flush this many simulated seconds after the first
            slot entered an empty backlog (latency bound for merging
            several PEPs' flushes into one envelope).
        fairness_cap: maximum slots one PEP contributes to a single
            super-batch; None disables the cap (round-robin draw only).
        secure_channel: sign super-batch queries / verify reply
            signatures with the gateway's identity.
        pdp_timeout: RPC deadline towards the PDP tier.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        dispatcher: DecisionDispatcher,
        domain: str = "",
        identity: Optional[ComponentIdentity] = None,
        max_batch: int = 64,
        max_delay: float = 0.001,
        fairness_cap: Optional[int] = None,
        secure_channel: bool = False,
        pdp_timeout: float = 2.0,
    ) -> None:
        super().__init__(name, network, domain, identity)
        if dispatcher is None:
            raise ValueError("gateway requires a DecisionDispatcher")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        if fairness_cap is not None and fairness_cap < 1:
            raise ValueError(f"fairness_cap must be >= 1, got {fairness_cap}")
        if secure_channel and identity is None:
            raise ValueError(
                f"gateway {name} needs an identity for the secure channel"
            )
        self.dispatcher = dispatcher
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.fairness_cap = fairness_cap
        self.secure_channel = secure_channel
        self.pdp_timeout = pdp_timeout
        self._queues: dict[str, CoalescingDecisionQueue] = {}
        self._owner_order: list[str] = []
        #: Per-owner FIFO of pending slots, drawn round-robin at flush.
        self._backlog: dict[str, deque[_WireSlot]] = {}
        self._pending_slots: dict[tuple, _WireSlot] = {}
        self._inflight_slots: dict[tuple, _WireSlot] = {}
        self._flush_handle: Optional[EventHandle] = None
        self._drain_handle: Optional[EventHandle] = None
        #: True while a drain step is classifying/dispatching.  A drain
        #: step may run nested event-loop turns (synchronous directory
        #: lookups, fail-safe completion callbacks that submit the next
        #: closed-loop request), during which ``_drain_handle`` is
        #: None; without this guard a flush arriving in that window
        #: would start a second, untracked drain chain and break the
        #: one-envelope-at-a-time pacing.
        self._draining = False
        self._rr_start = 0
        self.flushes_received = 0
        self.requests_ingested = 0
        self.cross_pep_deduplicated = 0
        self.super_batches_sent = 0
        self.flushes_on_size = 0
        self.flushes_on_delay = 0
        self.fairness_deferrals = 0
        self.decisions_delivered = 0
        self._wire = BatchWireCore(
            self,
            WireJob(
                select=self._select_replica,
                build=self._build_super_batch,
                parse=self._parse_super_reply,
                deliver=self._deliver_slots,
                fail=self._fail_slots,
                timeout=pdp_timeout,
                dispatcher=dispatcher,
                on_sent=self._note_super_batch,
            ),
            actions=(BATCH_QUERY_ACTION, SECURE_BATCH_QUERY_ACTION),
            label="gateway",
        )

    # -- registration -------------------------------------------------------------

    def register(self, queue: CoalescingDecisionQueue) -> None:
        """Register one PEP's coalescing queue with this gateway."""
        pep_name = queue.pep.name
        if pep_name not in self._queues:
            self._owner_order.append(pep_name)
            self._backlog[pep_name] = deque()
        self._queues[pep_name] = queue

    @property
    def registered_peps(self) -> list[str]:
        return list(self._owner_order)

    @property
    def pending_count(self) -> int:
        return len(self._pending_slots)

    @property
    def _inflight(self) -> dict[int, _InflightEnvelope]:
        return self._wire._inflight

    @property
    def inflight_count(self) -> int:
        return self._wire.inflight_count

    @property
    def failovers(self) -> int:
        return self._wire.failovers

    # -- ingestion ----------------------------------------------------------------

    def ingest(
        self, queue: CoalescingDecisionQueue, entries: list[_PendingDecision]
    ) -> None:
        """Merge one PEP queue flush into the gateway backlog.

        Each entry either joins an existing slot for the same request
        identity — pending *or* already on the wire — or opens a new
        pending slot attributed to the contributing PEP.
        """
        if queue.pep.name not in self._queues:
            self.register(queue)
        self.flushes_received += 1
        self.requests_ingested += len(entries)
        for entry in entries:
            slot = self._pending_slots.get(entry.cache_key)
            if slot is None:
                slot = self._inflight_slots.get(entry.cache_key)
                if slot is not None and entry.trace is not None:
                    # Joining a slot already on the wire: this entry's
                    # wire phase starts now (it only waits the envelope
                    # remainder), not at the envelope's original send.
                    entry.trace.mark_first("sent", self.now)
                    entry.trace.set("joined_in_flight", True)
            if slot is not None:
                self.cross_pep_deduplicated += 1
                slot.entries.append(entry)
                continue
            slot = _WireSlot(
                request=entry.request,
                cache_key=entry.cache_key,
                owner=queue.pep.name,
                entries=[entry],
            )
            self._pending_slots[entry.cache_key] = slot
            self._backlog[slot.owner].append(slot)
        if self._drain_handle is not None or self._draining:
            return  # a drain in progress will pick the new slots up
        if len(self._pending_slots) >= self.max_batch:
            self.flushes_on_size += 1
            self.flush()
        elif self._pending_slots and self._flush_handle is None:
            self._flush_handle = self.network.loop.schedule(
                self.max_delay, self._flush_on_delay, label="gateway-flush"
            )

    def _flush_on_delay(self) -> None:
        self._flush_handle = None
        if self._pending_slots:
            self.flushes_on_delay += 1
            self.flush()

    # -- super-batching -----------------------------------------------------------

    def flush(self) -> None:
        """Start draining the backlog as capped super-batches.

        The drain is *paced*: one envelope goes out now, the next when
        the first has finished serialising onto the wire (its size over
        the egress link's bandwidth).  A real gateway writes envelopes
        to its socket sequentially; emitting them all at the same
        instant would let the simulator's per-message delivery model
        reorder small envelopes ahead of large ones.
        """
        if self._flush_handle is not None:
            self.network.loop.cancel(self._flush_handle)
            self._flush_handle = None
        if self._drain_handle is None and not self._draining:
            self._drain_step()

    def _drain_step(self) -> None:
        self._drain_handle = None
        if not self._pending_slots:
            return
        slots = self._take_super_batch()
        for slot in slots:  # stays put until completion/failure
            self._inflight_slots[slot.cache_key] = slot
        self._draining = True
        try:
            tx_time = self._dispatch_slots(slots)
        finally:
            self._draining = False
        # Slots that arrived while dispatching (nested loop turns) were
        # deferred to us: this reschedule is what picks them up.
        if self._pending_slots:
            self._drain_handle = self.network.loop.schedule(
                tx_time, self._drain_step, label="gateway-drain"
            )

    def _dispatch_slots(self, slots: list[_WireSlot]) -> float:
        """Put one drawn super-batch on the wire; returns its tx time.

        The federated gateway overrides this to classify slots by
        governing domain first (local PDP tier vs gateway→gateway
        forwarding); the base gateway sends everything to the local
        replica set.
        """
        return self._send_local(slots)

    def _send_local(self, slots: list[_WireSlot]) -> float:
        """Send slots to the local replica set, shard-partitioned.

        With a placement-aware dispatcher the super-batch is split into
        one envelope per owning replica; otherwise it travels whole.
        Returns the summed serialisation time (the pacing figure the
        drain loop waits on), matching a gateway writing the envelopes
        to its socket back to back.
        """
        if self.dispatcher.placement is None:
            return self._wire.send(slots)
        tx_time = 0.0
        for target, group in self.dispatcher.partition(
            slots, lambda slot: slot.request
        ):
            job = replace(
                self._wire.job, select=self.dispatcher.selector_for(target)
            )
            tx_time += self._wire.send(group, job=job)
        return tx_time

    def _take_super_batch(self) -> list[_WireSlot]:
        """Draw the next super-batch fairly from the per-PEP backlogs.

        Slots are taken one at a time round-robin across registered
        PEPs (oldest first within each PEP), so every backlogged PEP is
        represented before any PEP is represented twice.  A PEP stops
        contributing at ``fairness_cap``; whatever it still has queued
        waits for a later super-batch (counted as a deferral when the
        cap — not an empty backlog — is what stopped it).
        """
        taken: list[_WireSlot] = []
        taken_per_owner: dict[str, int] = {}
        owners = [
            self._owner_order[(self._rr_start + i) % len(self._owner_order)]
            for i in range(len(self._owner_order))
        ]
        self._rr_start += 1
        capped_owners: set[str] = set()
        progressed = True
        while len(taken) < self.max_batch and progressed:
            progressed = False
            for owner in owners:
                if len(taken) >= self.max_batch:
                    break
                backlog = self._backlog[owner]
                if not backlog:
                    continue
                if (
                    self.fairness_cap is not None
                    and taken_per_owner.get(owner, 0) >= self.fairness_cap
                ):
                    capped_owners.add(owner)
                    continue
                slot = backlog.popleft()
                del self._pending_slots[slot.cache_key]
                taken.append(slot)
                taken_per_owner[owner] = taken_per_owner.get(owner, 0) + 1
                progressed = True
        self.fairness_deferrals += sum(
            len(self._backlog[owner]) for owner in capped_owners
        )
        return taken

    # -- the wire (BatchWireCore variation points) ---------------------------------

    def _select_replica(self, exclude: Sequence[str]) -> Optional[str]:
        return self.dispatcher.select(exclude=exclude)

    def _secure_payload(self, action: str, body_xml: str) -> SoapEnvelope:
        if self.identity is None:
            raise ValueError(
                f"gateway {self.name} has no identity for secure mode"
            )
        envelope = SoapEnvelope(action=action, body_xml=body_xml)
        return secure_envelope(
            envelope,
            self.identity.keypair,
            self.identity.certificate,
            self.identity.keystore,
        )

    def _build_batch_query(
        self, requests: list[RequestContext]
    ) -> tuple[str, object, XacmlAuthzDecisionBatchQuery]:
        """The (action, payload, batch) triple for one PDP-bound envelope."""
        batch = XacmlAuthzDecisionBatchQuery.for_requests(
            requests, issuer=self.name, issue_instant=self.now
        )
        if self.secure_channel:
            action = SECURE_BATCH_QUERY_ACTION
            payload: object = self._secure_payload(action, batch.to_xml())
        else:
            action = BATCH_QUERY_ACTION
            payload = batch.to_xml()
        return action, payload, batch

    def _build_super_batch(self, slots: list[_WireSlot]) -> tuple:
        return self._build_batch_query([slot.request for slot in slots])

    def _note_super_batch(self, slots: list[_WireSlot]) -> None:
        self.super_batches_sent += 1
        self.network.metrics.record_sample(SUPER_BATCH_SERIES, len(slots))

    def _verify_reply_body(self, reply: Message, signer: str) -> str:
        envelope = reply.payload
        if not isinstance(envelope, SoapEnvelope):
            raise RpcFault("gateway:bad-reply", "peer returned non-SOAP payload")
        clear = verify_envelope(
            envelope,
            self.identity.keystore,
            self.identity.validator,
            decrypt_with=self.identity.keypair,
            config=SecurityConfig(require_signature=True),
            at=self.now,
        )
        if signer_of(clear) != signer:
            raise WsSecurityError(
                f"decision signed by {signer_of(clear)!r}, "
                f"expected {signer!r}"
            )
        return clear.body_xml

    def _parse_super_reply(
        self, message: Message, replica: str
    ) -> XacmlAuthzDecisionBatchStatement:
        body = (
            self._verify_reply_body(message, replica)
            if self.secure_channel
            else str(message.payload)
        )
        return XacmlAuthzDecisionBatchStatement.from_xml(body)

    def _deliver_slots(self, slots: list[_WireSlot], statements: Sequence) -> None:
        for slot, statement in zip(slots, statements, strict=False):
            self._inflight_slots.pop(slot.cache_key, None)
            for entry in slot.entries:
                self.decisions_delivered += 1
                entry.owner._complete_entry(entry, statement)

    def _fail_slots(self, slots: list[_WireSlot], exc: Exception) -> None:
        for slot in slots:
            self._inflight_slots.pop(slot.cache_key, None)
            for entry in slot.entries:
                entry.owner._fail_entry(entry, exc)

    def __repr__(self) -> str:
        return (
            f"DomainDecisionGateway({self.name}, "
            f"peps={len(self._queues)}, pending={len(self._pending_slots)}, "
            f"inflight={self.inflight_count})"
        )
