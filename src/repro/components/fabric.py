"""The batched decision fabric: coalescing queue and replica dispatcher.

Client-side plumbing that turns the one-query-per-message PEP→PDP hot
path into a batched, load-balanced pipeline:

* :class:`DecisionDispatcher` — routes decision traffic across a set of
  PDP replicas (round-robin or least-outstanding) and fails over to the
  next replica on :class:`~repro.components.base.RpcTimeout`, which
  makes E11-style replication an actual *throughput* mechanism rather
  than only an availability one;
* :class:`CoalescingDecisionQueue` — accumulates a PEP's outbound
  decision requests and flushes them as one
  :class:`~repro.saml.xacml_profile.XacmlAuthzDecisionBatchQuery` when
  the batch fills (``max_batch``) or ages out (``max_delay``), with
  in-flight deduplication: identical concurrent requests ride one wire
  slot and every waiter gets its own enforcement result.

The queue is fully event-driven: flushes *send* a message and return,
and replies/timeouts are handled as ordinary inbound events, so a
completion callback may safely submit the next request (the closed-loop
pattern of :mod:`repro.workloads.highload`) without growing the stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..simnet.events import EventHandle
from ..simnet.message import Message
from ..xacml.context import RequestContext
from .base import RpcFault, RpcTimeout, _parse_fault
from .pdp import BATCH_QUERY_ACTION, SECURE_BATCH_QUERY_ACTION

#: Metrics sample series fed with per-request submit→completion delays.
QUEUE_LATENCY_SERIES = "fabric.queue_latency"

#: Load-balancing policies the dispatcher understands.
DISPATCH_POLICIES = ("round-robin", "least-outstanding")


class DecisionDispatcher:
    """Load-balances decision queries over PDP replicas, with failover.

    The dispatcher is transport-neutral bookkeeping plus two entry
    points: :meth:`dispatch` performs a synchronous RPC with failover
    for the blocking PEP paths, while the coalescing queue drives
    :meth:`select` / :meth:`note_sent` / :meth:`note_done` itself for
    the event-driven path.  ``least-outstanding`` counts in-flight
    envelopes per replica, which only differs from round-robin once
    replies actually take time — i.e. under the PDP service-time model.
    """

    def __init__(
        self, replica_addresses: Sequence[str], policy: str = "round-robin"
    ) -> None:
        if not replica_addresses:
            raise ValueError("dispatcher needs at least one PDP replica")
        if policy not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch policy {policy!r}; "
                f"expected one of {DISPATCH_POLICIES}"
            )
        self.replicas = list(replica_addresses)
        self.policy = policy
        self.outstanding: dict[str, int] = {
            address: 0 for address in self.replicas
        }
        self.dispatches = 0
        self.failovers = 0
        self._rr = 0

    def select(self, exclude: Sequence[str] = ()) -> Optional[str]:
        """Pick the next replica, or None when every candidate is excluded."""
        candidates = [r for r in self.replicas if r not in exclude]
        if not candidates:
            return None
        if self.policy == "least-outstanding":
            lowest = min(self.outstanding[r] for r in candidates)
            candidates = [
                r for r in candidates if self.outstanding[r] == lowest
            ]
        # Rotate through ties (and through everything under round-robin):
        # on the synchronous path outstanding counts are back to zero by
        # the next select, so without rotation least-outstanding would
        # pin every request to the first replica.
        while True:  # candidates is a non-empty subset of the ring
            choice = self.replicas[self._rr % len(self.replicas)]
            self._rr += 1
            if choice in candidates:
                return choice

    def note_sent(self, address: str) -> None:
        self.outstanding[address] += 1

    def note_done(self, address: str) -> None:
        self.outstanding[address] = max(0, self.outstanding[address] - 1)

    def dispatch(
        self, caller, action: str, payload, timeout: float
    ) -> tuple[Message, str]:
        """Synchronous RPC through the next replica; failover on timeout.

        Faults are *answers* (an authentication rejection must not be
        retried against a sibling), so only :class:`RpcTimeout` rotates
        to the next replica.  Raises the last timeout when every replica
        has been tried.

        Returns:
            ``(reply, address)`` — the reply message and which replica
            produced it (secure callers pin signature checks to it).
        """
        self.dispatches += 1
        tried: list[str] = []
        last_timeout: Optional[RpcTimeout] = None
        while True:
            address = self.select(exclude=tried)
            if address is None:
                if last_timeout is not None:
                    raise last_timeout
                raise RpcTimeout(caller.name, "<none>", action, caller.now)
            tried.append(address)
            self.note_sent(address)
            try:
                reply = caller.call(address, action, payload, timeout=timeout)
            except RpcTimeout as exc:
                last_timeout = exc
                self.failovers += 1
                continue
            finally:
                self.note_done(address)
            return reply, address

    def selector(self) -> Callable[[], Optional[str]]:
        """Adapter usable as a PEP's ``pdp_selector`` hook."""
        return lambda: self.select()

    def __repr__(self) -> str:
        return (
            f"DecisionDispatcher({self.policy}, replicas={len(self.replicas)}, "
            f"outstanding={sum(self.outstanding.values())})"
        )


#: Completion callback: receives the waiter's EnforcementResult.
CompletionCallback = Callable[[object], None]


@dataclass
class _PendingDecision:
    """One unique request awaiting batching, with all its waiters."""

    request: RequestContext
    key: tuple
    enqueued_at: float
    callbacks: list[CompletionCallback] = field(default_factory=list)


@dataclass
class _InflightBatch:
    """One batch query on the wire, awaiting its reply or deadline."""

    batch: object  # XacmlAuthzDecisionBatchQuery
    entries: list[_PendingDecision]
    replica: str
    tried: list[str]
    sent_at: float


class CoalescingDecisionQueue:
    """Client-side request coalescing in front of a PEP's PDP traffic.

    Args:
        pep: the owning :class:`~repro.components.pep.
            PolicyEnforcementPoint`; its revocation guard, decision
            cache, obligation handlers and counters all apply exactly as
            on the synchronous path.
        max_batch: flush as soon as this many *unique* requests wait.
        max_delay: flush this many simulated seconds after the first
            request entered an empty queue (latency bound).
        dispatcher: optional replica dispatcher; without one every batch
            goes to the PEP's configured/selected PDP and a timeout is a
            fail-safe denial rather than a failover.
    """

    def __init__(
        self,
        pep,
        max_batch: int = 16,
        max_delay: float = 0.002,
        dispatcher: Optional[DecisionDispatcher] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self.pep = pep
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.dispatcher = dispatcher
        self._pending: dict[tuple, _PendingDecision] = {}
        self._inflight: dict[int, _InflightBatch] = {}
        #: cache_key -> entry for every request currently on the wire,
        #: so in-flight dedup is O(1) rather than a scan per submission.
        self._inflight_keys: dict[tuple, _PendingDecision] = {}
        self._flush_handle: Optional[EventHandle] = None
        self.submissions = 0
        self.deduplicated = 0
        self.batches_sent = 0
        self.flushes_on_size = 0
        self.flushes_on_delay = 0
        self.failovers = 0
        self.completions = 0
        for action in (BATCH_QUERY_ACTION, SECURE_BATCH_QUERY_ACTION):
            pep.on(f"{action}:response", self._handle_reply)
            pep.on(f"{action}:fault", self._handle_fault)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    # -- submission --------------------------------------------------------------

    def submit(
        self, request: RequestContext, callback: CompletionCallback
    ) -> bool:
        """Enqueue one enforcement; ``callback`` receives the result.

        Returns True when the request completed synchronously (revocation
        guard denial or decision-cache hit) and False when it was queued
        for a batched PDP round-trip.  Identical requests already queued
        or in flight are deduplicated: the new waiter joins the existing
        wire slot.
        """
        self.submissions += 1
        self.pep.enforcements += 1
        key = request.cache_key()
        immediate = self.pep._pre_decision(request, key)
        if immediate is not None:
            self.completions += 1
            callback(immediate)
            return True
        entry = self._pending.get(key) or self._inflight_keys.get(key)
        if entry is not None:
            self.deduplicated += 1
            entry.callbacks.append(callback)
            return False
        entry = _PendingDecision(
            request=request,
            key=key,
            enqueued_at=self.pep.now,
            callbacks=[callback],
        )
        self._pending[key] = entry
        if len(self._pending) >= self.max_batch:
            self.flushes_on_size += 1
            self.flush()
        elif self._flush_handle is None:
            self._flush_handle = self.pep.network.loop.schedule(
                self.max_delay, self._flush_on_delay, label="fabric-flush"
            )
        return False

    def _flush_on_delay(self) -> None:
        self._flush_handle = None
        if self._pending:
            self.flushes_on_delay += 1
            self.flush()

    def flush(self) -> None:
        """Send everything pending as one batch query immediately."""
        if self._flush_handle is not None:
            self.pep.network.loop.cancel(self._flush_handle)
            self._flush_handle = None
        if not self._pending:
            return
        entries = list(self._pending.values())
        self._pending.clear()
        self._send(entries, tried=[])

    # -- the wire ----------------------------------------------------------------

    def _send(self, entries: list[_PendingDecision], tried: list[str]) -> None:
        if self.dispatcher is not None:
            replica = self.dispatcher.select(exclude=tried)
        elif tried:
            replica = None  # no dispatcher: a timeout has nowhere to go
        else:
            replica = self.pep._choose_pdp()
        if replica is None:
            self._fail_batch(
                entries,
                RpcTimeout(
                    self.pep.name, "<none>", "no PDP reachable", self.pep.now
                ),
            )
            return
        action, payload, batch = self.pep._build_batch_query(
            [entry.request for entry in entries]
        )
        message = Message(
            sender=self.pep.name, recipient=replica, kind=action, payload=payload
        )
        self._inflight[message.msg_id] = _InflightBatch(
            batch=batch,
            entries=entries,
            replica=replica,
            tried=tried + [replica],
            sent_at=self.pep.now,
        )
        for entry in entries:  # idempotent across failover resends
            self._inflight_keys[entry.key] = entry
        if self.dispatcher is not None:
            self.dispatcher.note_sent(replica)
        self.batches_sent += 1
        self.pep.node.send(message)
        self.pep.network.loop.schedule(
            self.pep.config.pdp_timeout,
            lambda: self._check_timeout(message.msg_id),
            label="fabric-timeout",
        )

    def _take_inflight(self, reply_to: Optional[int]) -> Optional[_InflightBatch]:
        if reply_to is None:
            return None
        inflight = self._inflight.pop(reply_to, None)
        if inflight is not None and self.dispatcher is not None:
            self.dispatcher.note_done(inflight.replica)
        return inflight

    def _check_timeout(self, msg_id: int) -> None:
        inflight = self._take_inflight(msg_id)
        if inflight is None:
            return  # answered in time (or already failed over)
        if self.dispatcher is not None:
            self.failovers += 1
            self.dispatcher.failovers += 1
            self._send(inflight.entries, tried=inflight.tried)
            return
        self._fail_batch(
            inflight.entries,
            RpcTimeout(
                self.pep.name,
                inflight.replica,
                "batch decision query",
                self.pep.now,
            ),
        )

    def _handle_reply(self, message: Message) -> None:
        inflight = self._take_inflight(message.reply_to)
        if inflight is None:
            return None  # late reply after a timeout-triggered failover
        try:
            statement_batch = self.pep._parse_batch_reply(
                message, inflight.replica
            )
            if statement_batch.in_response_to != inflight.batch.batch_id:
                raise ValueError(
                    f"reply answers {statement_batch.in_response_to!r}, "
                    f"expected {inflight.batch.batch_id!r}"
                )
            if len(statement_batch.statements) != len(inflight.entries):
                raise ValueError(
                    f"reply has {len(statement_batch.statements)} statements "
                    f"for {len(inflight.entries)} requests"
                )
        except Exception as exc:  # malformed/forged reply: fail safe
            self._fail_batch(inflight.entries, exc)
            return None
        metrics = self.pep.network.metrics
        for entry, statement in zip(inflight.entries, statement_batch.statements):
            self._inflight_keys.pop(entry.key, None)
            self.pep.decision_cache.put(entry.key, statement)
            metrics.record_sample(
                QUEUE_LATENCY_SERIES, self.pep.now - entry.enqueued_at
            )
            for callback in entry.callbacks:
                result = self.pep._enforce(
                    statement.response.decision,
                    tuple(statement.response.result.obligations),
                    entry.request,
                    source="pdp",
                )
                self.completions += 1
                callback(result)
        return None

    def _handle_fault(self, message: Message) -> None:
        inflight = self._take_inflight(message.reply_to)
        if inflight is None:
            return None
        code, reason = _parse_fault(str(message.payload))
        # A fault is an answer, not a crash: no failover, fail-safe deny.
        self._fail_batch(inflight.entries, RpcFault(code, reason))
        return None

    def _fail_batch(
        self, entries: list[_PendingDecision], exc: Exception
    ) -> None:
        """Fail-safe denial for every waiter of every entry.

        The event-driven queue has no caller to re-raise into, so it
        always enforces the deny-on-failure stance regardless of
        ``PepConfig.deny_on_failure`` — the fail-open variant only
        exists on the synchronous path.
        """
        metrics = self.pep.network.metrics
        for entry in entries:
            self._inflight_keys.pop(entry.key, None)
            metrics.record_sample(
                QUEUE_LATENCY_SERIES, self.pep.now - entry.enqueued_at
            )
            for callback in entry.callbacks:
                result = self.pep._fail_safe_result(exc)
                self.completions += 1
                callback(result)

    def __repr__(self) -> str:
        return (
            f"CoalescingDecisionQueue(pep={self.pep.name}, "
            f"max_batch={self.max_batch}, pending={len(self._pending)}, "
            f"inflight={len(self._inflight)})"
        )
