"""Policy Administration Point: the policy repository and its interface.

"The PAP components provide administrators the ability to insert policies
into the authorisation system" (paper §2.2).  This PAP stores versioned
policy elements, serves retrieval queries from PDPs (the remote fetches
that caching and syndication — E5/E6 — exist to reduce) and accepts
publish/withdraw operations, optionally guarded by an authorisation hook
so the access control system protects itself with its own machinery
(paper §3.2, "Security of Access Control Systems").
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..simnet.message import Message
from ..simnet.network import Network
from ..xacml.parser import parse_policy
from ..xacml.policy import Policy, PolicySet, child_identifier
from ..xacml.serializer import serialize_policy
from ..xacml.validation import is_deployable
from .base import Component, ComponentIdentity, RpcFault

PolicyElement = Union[Policy, PolicySet]

#: Guard callback: (operation, requester, policy_id) -> allowed?
AdminGuard = Callable[[str, str, str], bool]


@dataclass
class RepositoryEntry:
    element: PolicyElement
    version: int
    published_at: float
    publisher: str = ""


class PolicyRepository:
    """Versioned store of policy elements.

    Every mutation bumps a global revision counter; PDP policy caches use
    the revision to detect staleness cheaply.
    """

    def __init__(self) -> None:
        self._entries: dict[str, RepositoryEntry] = {}
        self.revision = 0

    def publish(
        self, element: PolicyElement, at: float = 0.0, publisher: str = ""
    ) -> int:
        identifier = child_identifier(element)
        self.revision += 1
        previous = self._entries.get(identifier)
        version = previous.version + 1 if previous else 1
        self._entries[identifier] = RepositoryEntry(
            element=element, version=version, published_at=at, publisher=publisher
        )
        return version

    def withdraw(self, identifier: str) -> bool:
        if identifier in self._entries:
            del self._entries[identifier]
            self.revision += 1
            return True
        return False

    def get(self, identifier: str) -> Optional[PolicyElement]:
        entry = self._entries.get(identifier)
        return entry.element if entry else None

    def all_elements(self) -> list[PolicyElement]:
        return [entry.element for entry in self._entries.values()]

    def identifiers(self) -> list[str]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, identifier: str) -> bool:
        return identifier in self._entries


def serialize_bundle(elements: list[PolicyElement], revision: int) -> str:
    inner = "".join(serialize_policy(element) for element in elements)
    return f'<PolicyBundle revision="{revision}">{inner}</PolicyBundle>'


def parse_bundle(xml_text: str) -> tuple[list[PolicyElement], int]:
    match = re.match(
        r'<PolicyBundle revision="(\d+)">(.*)</PolicyBundle>$', xml_text, re.DOTALL
    )
    if match is None:
        raise ValueError("not a PolicyBundle")
    revision = int(match.group(1))
    inner = match.group(2)
    elements: list[PolicyElement] = []
    # Split top-level <Policy>/<PolicySet> elements with a nesting-aware scan.
    position = 0
    while position < len(inner):
        open_match = re.match(r"<(Policy|PolicySet)[ >]", inner[position:])
        if open_match is None:
            break
        tag = open_match.group(1)
        depth = 0
        cursor = position
        token = re.compile(f"<{tag}[ >]|</{tag}>")
        while True:
            next_token = token.search(inner, cursor)
            if next_token is None:
                raise ValueError(f"unbalanced <{tag}> in bundle")
            if next_token.group(0).startswith(f"</{tag}"):
                depth -= 1
            else:
                depth += 1
            cursor = next_token.end()
            if next_token.group(0).startswith(f"</{tag}") and depth == 0:
                break
        # PolicySet can contain Policy; scanning for the *same* tag keeps
        # the depth bookkeeping correct because inner Policies inside a
        # PolicySet only match when tag == "Policy".
        end = inner.find(">", cursor - 1) + 1 if inner[cursor - 1] != ">" else cursor
        elements.append(parse_policy(inner[position:end]))
        position = end
    return elements, revision


class PolicyAdministrationPoint(Component):
    """Network-attached PAP.

    Operations (message kinds):

    * ``pap.retrieve`` — return all stored elements as a PolicyBundle;
    * ``pap.revision`` — return just the revision counter (cheap
      freshness probe for PDP policy caches);
    * ``pap.publish`` — store a policy (validated first);
    * ``pap.withdraw`` — remove a policy by id.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        domain: str = "",
        identity: Optional[ComponentIdentity] = None,
        guard: Optional[AdminGuard] = None,
        validate_on_publish: bool = True,
    ) -> None:
        super().__init__(name, network, domain, identity)
        self.repository = PolicyRepository()
        self.guard = guard
        self.validate_on_publish = validate_on_publish
        self.retrievals_served = 0
        #: Addresses notified on every policy change (paper §3.2: caching
        #: "reduces the flexibility of revoking old access control rules";
        #: invalidation push is the standard mitigation beyond TTLs).
        self._change_subscribers: list[str] = []
        self.invalidations_sent = 0
        self.on("pap.retrieve", self._handle_retrieve)
        self.on("pap.revision", self._handle_revision)
        self.on("pap.publish", self._handle_publish)
        self.on("pap.withdraw", self._handle_withdraw)
        self.on("pap.subscribe", self._handle_subscribe)

    # -- local API (used by in-domain administrators) ---------------------------

    def publish(self, element: PolicyElement, publisher: str = "local-admin") -> int:
        self._check_guard("publish", publisher, child_identifier(element))
        if self.validate_on_publish and not is_deployable(element):
            raise RpcFault(
                "pap:invalid-policy",
                f"policy {child_identifier(element)!r} failed validation",
            )
        version = self.repository.publish(element, at=self.now, publisher=publisher)
        self._notify_change(child_identifier(element))
        return version

    def withdraw(self, identifier: str, requester: str = "local-admin") -> bool:
        self._check_guard("withdraw", requester, identifier)
        removed = self.repository.withdraw(identifier)
        if removed:
            self._notify_change(identifier)
        return removed

    # -- change notification -----------------------------------------------------

    def subscribe_changes(self, address: str) -> None:
        """Register a component for policy-change notifications."""
        if address not in self._change_subscribers:
            self._change_subscribers.append(address)

    def _notify_change(self, policy_id: str) -> None:
        payload = (
            f'<PolicyChanged policyId="{policy_id}" '
            f'revision="{self.repository.revision}"/>'
        )
        for subscriber in self._change_subscribers:
            self.invalidations_sent += 1
            self.notify(subscriber, "pap.changed", payload)

    def _handle_subscribe(self, message: Message) -> str:
        self.subscribe_changes(message.sender)
        return "<Ack/>"

    def _check_guard(self, operation: str, requester: str, policy_id: str) -> None:
        if self.guard is not None and not self.guard(operation, requester, policy_id):
            raise RpcFault(
                "pap:unauthorised",
                f"{requester!r} may not {operation} {policy_id!r}",
            )

    # -- message handlers ---------------------------------------------------------

    def _handle_retrieve(self, message: Message) -> str:
        self.retrievals_served += 1
        return serialize_bundle(
            self.repository.all_elements(), self.repository.revision
        )

    def _handle_revision(self, message: Message) -> str:
        return f'<PapRevision value="{self.repository.revision}"/>'

    def _handle_publish(self, message: Message) -> str:
        element = parse_policy(str(message.payload))
        version = self.publish(element, publisher=message.sender)
        return f'<PapAck policyId="{child_identifier(element)}" version="{version}"/>'

    def _handle_withdraw(self, message: Message) -> str:
        match = re.match(r'<PapWithdraw policyId="([^"]*)"/>$', str(message.payload))
        if match is None:
            raise RpcFault("pap:bad-request", "malformed withdraw")
        removed = self.withdraw(match.group(1), requester=message.sender)
        return f'<PapAck policyId="{match.group(1)}" removed="{str(removed).lower()}"/>'


def parse_revision(xml_text: str) -> int:
    match = re.match(r'<PapRevision value="(\d+)"/>$', xml_text)
    if match is None:
        raise ValueError("not a PapRevision")
    return int(match.group(1))
