"""Policy Information Point: attribute retrieval for decision making.

"PIPs are used to provide information that can be used during evaluation
of access requests.  They may gather attributes related to subjects,
objects and the environment" (paper §2.2).  The PIP here is a
network-attached attribute store: PDPs query it for attributes that the
request context did not carry, paying a real (simulated) round-trip —
the cost that makes attribute push-vs-pull trade-offs measurable.
"""

from __future__ import annotations

import re
from typing import Callable, Optional
from xml.sax.saxutils import escape, quoteattr, unescape

from ..simnet.message import Message
from ..simnet.network import Network
from ..xacml.attributes import AttributeValue, Category, DataType
from ..xmlutil import parse_attrs
from .base import Component, ComponentIdentity

EnvironmentProvider = Callable[[float], list[AttributeValue]]


class AttributeStore:
    """In-memory attribute database backing a PIP.

    Subject and resource attributes are keyed by entity id; environment
    attributes come from registered providers evaluated at query time
    (e.g. current-time from the simulated clock).
    """

    def __init__(self) -> None:
        self._subject: dict[str, dict[str, list[AttributeValue]]] = {}
        self._resource: dict[str, dict[str, list[AttributeValue]]] = {}
        self._environment: dict[str, EnvironmentProvider] = {}

    def set_subject_attribute(
        self, subject_id: str, attribute_id: str, values: list[AttributeValue]
    ) -> None:
        self._subject.setdefault(subject_id, {})[attribute_id] = list(values)

    def add_subject_value(
        self, subject_id: str, attribute_id: str, value: AttributeValue
    ) -> None:
        self._subject.setdefault(subject_id, {}).setdefault(attribute_id, []).append(
            value
        )

    def remove_subject_value(
        self, subject_id: str, attribute_id: str, value: AttributeValue
    ) -> bool:
        values = self._subject.get(subject_id, {}).get(attribute_id, [])
        for index, existing in enumerate(values):
            if existing == value:
                del values[index]
                return True
        return False

    def set_resource_attribute(
        self, resource_id: str, attribute_id: str, values: list[AttributeValue]
    ) -> None:
        self._resource.setdefault(resource_id, {})[attribute_id] = list(values)

    def register_environment(
        self, attribute_id: str, provider: EnvironmentProvider
    ) -> None:
        self._environment[attribute_id] = provider

    def lookup(
        self,
        category: Category,
        attribute_id: str,
        about: str,
        data_type: DataType,
        at: float,
    ) -> list[AttributeValue]:
        if category is Category.SUBJECT:
            values = self._subject.get(about, {}).get(attribute_id, [])
        elif category is Category.RESOURCE:
            values = self._resource.get(about, {}).get(attribute_id, [])
        elif category is Category.ENVIRONMENT:
            provider = self._environment.get(attribute_id)
            values = provider(at) if provider else []
        else:
            values = []
        return [v for v in values if v.data_type is data_type]

    def subjects(self) -> list[str]:
        return list(self._subject)

    def resources(self) -> list[str]:
        return list(self._resource)


def serialize_pip_query(
    category: Category, attribute_id: str, about: str, data_type: DataType
) -> str:
    # ``quoteattr`` rather than bare interpolation: ``about`` carries
    # subject/resource ids straight from requests, and a quote in one
    # must not be able to break (or smuggle attributes into) the query.
    return (
        f"<PipQuery category={quoteattr(category.short_name)} "
        f"attributeId={quoteattr(attribute_id)} "
        f"about={quoteattr(about)} dataType={quoteattr(data_type.value)}/>"
    )


def parse_pip_query(xml_text: str) -> tuple[Category, str, str, DataType]:
    match = re.match(r"<PipQuery ([^>]*)/>$", xml_text)
    if match is None:
        raise ValueError(f"bad PIP query: {xml_text[:80]!r}")
    attrs = parse_attrs(match.group(1))
    missing = {"category", "attributeId", "about", "dataType"} - set(attrs)
    if missing:
        raise ValueError(f"bad PIP query, missing {sorted(missing)}")
    return (
        Category.from_short_name(attrs["category"]),
        attrs["attributeId"],
        attrs["about"],
        DataType.from_uri(attrs["dataType"]),
    )


def serialize_pip_response(values: list[AttributeValue]) -> str:
    inner = "".join(
        f'<AttributeValue DataType="{v.data_type.value}">{escape(v.lexical())}'
        f"</AttributeValue>"
        for v in values
    )
    return f"<PipResponse>{inner}</PipResponse>"


def parse_pip_response(xml_text: str) -> list[AttributeValue]:
    values = []
    for match in re.finditer(
        r'<AttributeValue DataType="([^"]*)">([^<]*)</AttributeValue>', xml_text
    ):
        data_type = DataType.from_uri(match.group(1))
        values.append(AttributeValue.parse(data_type, unescape(match.group(2))))
    return values


class PolicyInformationPoint(Component):
    """Network-attached PIP answering attribute queries."""

    def __init__(
        self,
        name: str,
        network: Network,
        store: Optional[AttributeStore] = None,
        domain: str = "",
        identity: Optional[ComponentIdentity] = None,
    ) -> None:
        super().__init__(name, network, domain, identity)
        self.store = store if store is not None else AttributeStore()
        self.queries_served = 0
        self.on("pip.query", self._handle_query)

    def _handle_query(self, message: Message) -> str:
        category, attribute_id, about, data_type = parse_pip_query(
            str(message.payload)
        )
        self.queries_served += 1
        values = self.store.lookup(category, attribute_id, about, data_type, self.now)
        return serialize_pip_response(values)
