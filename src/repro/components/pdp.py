"""Policy Decision Point: evaluation service over the network.

"Evaluates access request decision queries issued by enforcement points.
PDP has access to the set of policies and evaluates access requests
against applicable policies" (paper §2.2).  This component wraps the
:class:`~repro.xacml.engine.PdpEngine` with everything the paper's
architecture adds around it:

* **policy retrieval** from a PAP, with a TTL'd policy cache and an
  optional cheap revision probe (the caching the paper proposes for
  decision points, experiment E6);
* **PIP attribute resolution** over the network during evaluation;
* **mutually authenticated queries**: signed queries are verified before
  evaluation — "decision points should only reveal decisions on authentic
  access request decision queries.  Otherwise, they can leak information
  about access control policies" (paper §3.2) — and responses are signed
  so PEPs can verify their origin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..observability.tracing import TRACE_HEADER, TraceContext
from ..simnet.message import Message
from ..saml.xacml_profile import (
    XacmlAuthzDecisionBatchQuery,
    XacmlAuthzDecisionBatchStatement,
    XacmlAuthzDecisionQuery,
    XacmlAuthzDecisionStatement,
)
from ..simnet.network import Network
from ..wsvc.soap import SoapEnvelope
from ..wsvc.ws_security import (
    SecurityConfig,
    WsSecurityError,
    secure_envelope,
    verify_envelope,
)
from ..xacml.attributes import AttributeValue, Category, DataType
from ..xacml.context import RequestContext
from ..xacml.engine import EngineResponse, PdpEngine, PolicyStore
from .base import Component, ComponentIdentity, RpcFault, RpcTimeout
from .pap import parse_bundle, parse_revision
from .pip import parse_pip_response, serialize_pip_query
from .placement import AttributePartition, AttributeResolver, PlacementSpec

QUERY_ACTION = "xacml.request"
SECURE_QUERY_ACTION = "xacml.request.secure"
BATCH_QUERY_ACTION = "xacml.request.batch"
SECURE_BATCH_QUERY_ACTION = "xacml.request.batch.secure"
#: Replica→replica reforward of misrouted batch slots.  The handler
#: evaluates locally and never forwards again (one-hop TTL), so stale
#: routing views cannot create forwarding loops.
OWNED_BATCH_QUERY_ACTION = "xacml.request.batch.owned"

#: Sample series fed with per-decision candidate-set sizes (index
#: selectivity, per replica via the engine's evaluation stats).
CANDIDATE_SET_SERIES = "pdp.candidate_set_size"

#: Sample series fed with a shard's materialised key count at each
#: rebalance (per-replica state cardinality, E19).
SHARD_CARDINALITY_SERIES = "pdp.shard_cardinality"


@dataclass
class PdpConfig:
    """Tunables for a decision point."""

    #: How long fetched policies stay fresh (simulated seconds); 0 means
    #: re-fetch on every decision (the no-cache baseline of E6).
    policy_cache_ttl: float = 30.0
    #: "probe" asks the PAP for its revision first and only re-fetches the
    #: bundle on change; "full" always re-fetches when stale.
    refresh_mode: str = "probe"
    #: Require WS-Security-signed queries (mutual authentication).
    require_signed_queries: bool = False
    #: Sign responses when an identity is configured.
    sign_responses: bool = True
    indexed_store: bool = True
    #: Service-time model (simulated seconds), both 0 by default so the
    #: PDP answers instantly like the seed.  ``envelope_overhead`` is
    #: paid once per inbound query message (parse + WS-Security work);
    #: ``decision_service_time`` once per request context evaluated.
    #: With either non-zero the PDP becomes a FIFO server: replies queue
    #: behind earlier work, which is what makes batching (fewer
    #: envelopes) and replication (more servers) measurable as
    #: throughput, not just message counts (experiments E16/E17).
    envelope_overhead: float = 0.0
    decision_service_time: float = 0.0
    #: Evaluation workers inside this one replica.  Envelope work (the
    #: single-threaded protocol front end: parsing, WS-Security) stays
    #: serialised; the envelope's decisions are spread across the
    #: workers, whose makespan is ``ceil(n / workers)`` decision times —
    #: a lone decision still costs one full decision time.  This makes
    #: worker-level scaling (parallelism inside a replica) and
    #: replica-level scaling (more servers behind a dispatcher)
    #: separately measurable (E17).
    worker_count: int = 1
    #: Placement contract of a sharded tier (None = unsharded, the
    #: default).  When set, this replica owns only its hash range of the
    #: placement ring: its attribute partition materialises owned keys
    #: lazily, misrouted batch slots are reforwarded to their owner, and
    #: :meth:`PolicyDecisionPoint.rebalance_placement` implements the
    #: join/leave story.  Replicas and client-side hash routing must
    #: share the same spec object (or synchronised copies).
    placement: Optional[PlacementSpec] = None
    #: RPC deadline for replica→replica reforwards of misrouted slots.
    forward_timeout: float = 2.0

    def __post_init__(self) -> None:
        if self.worker_count < 1:
            raise ValueError(
                f"worker_count must be >= 1, got {self.worker_count}"
            )
        if self.placement is not None and not isinstance(
            self.placement, PlacementSpec
        ):
            raise ValueError(
                f"placement must be a PlacementSpec or None, got "
                f"{type(self.placement).__name__}"
            )
        if self.forward_timeout <= 0:
            raise ValueError(
                f"forward_timeout must be > 0, got {self.forward_timeout}"
            )


class PolicyDecisionPoint(Component):
    """Network-attached PDP."""

    def __init__(
        self,
        name: str,
        network: Network,
        domain: str = "",
        identity: Optional[ComponentIdentity] = None,
        pap_address: Optional[str] = None,
        pip_addresses: Optional[list[str]] = None,
        config: Optional[PdpConfig] = None,
        attribute_resolver: Optional[AttributeResolver] = None,
    ) -> None:
        super().__init__(name, network, domain, identity)
        self.config = config if config is not None else PdpConfig()
        self.engine = PdpEngine(PolicyStore(indexed=self.config.indexed_store))
        self.pap_address = pap_address
        self.pip_addresses = list(pip_addresses or [])
        #: This replica's owned slice of subject/resource attribute
        #: state; None on an unsharded replica.  With a placement but no
        #: resolver the partition is preload-only.
        self.partition: Optional[AttributePartition] = None
        #: Authoritative attribute source; also the unsharded fallback
        #: finder when no placement is configured.
        self.attribute_resolver = attribute_resolver
        if self.config.placement is not None:
            self.partition = AttributePartition(
                owner=name,
                spec=self.config.placement,
                resolver=attribute_resolver,
            )
        self._policies_fetched_at: Optional[float] = None
        self._cached_revision: Optional[int] = None
        self.decisions_made = 0
        self.pip_queries_sent = 0
        self.policy_fetches = 0
        self.revision_probes = 0
        self.rejected_queries = 0
        self.batch_queries_served = 0
        self.batched_decisions = 0
        self.reforwarded_batches = 0
        self.owned_batches_served = 0
        self._busy_until = 0.0
        self.on(QUERY_ACTION, self._handle_query)
        self.on(SECURE_QUERY_ACTION, self._handle_secure_query)
        self.on(BATCH_QUERY_ACTION, self._handle_batch_query)
        self.on(SECURE_BATCH_QUERY_ACTION, self._handle_secure_batch_query)
        self.on(OWNED_BATCH_QUERY_ACTION, self._handle_owned_batch_query)

    # -- policy management ------------------------------------------------------

    def add_local_policy(self, element) -> None:
        """Install a policy directly (bypasses the PAP; tests/local use)."""
        self.engine.store.add(element)

    def _ensure_policies(self) -> None:
        """Refresh the policy store from the PAP when the cache is stale."""
        if self.pap_address is None:
            return
        fresh = (
            self._policies_fetched_at is not None
            and self.config.policy_cache_ttl > 0
            and self.now - self._policies_fetched_at < self.config.policy_cache_ttl
        )
        if fresh:
            return
        if self.config.refresh_mode == "probe" and self._cached_revision is not None:
            reply = self.call(self.pap_address, "pap.revision", "<PapQuery/>")
            self.revision_probes += 1
            revision = parse_revision(str(reply.payload))
            if revision == self._cached_revision:
                self._policies_fetched_at = self.now
                return
        reply = self.call(self.pap_address, "pap.retrieve", "<PapQuery scope=\"all\"/>")
        self.policy_fetches += 1
        elements, revision = parse_bundle(str(reply.payload))
        store = PolicyStore(indexed=self.config.indexed_store)
        for element in elements:
            store.add(element)
        self.engine.store = store
        self._cached_revision = revision
        self._policies_fetched_at = self.now

    def invalidate_policy_cache(self) -> None:
        self._policies_fetched_at = None

    def subscribe_to_policy_changes(self) -> None:
        """Subscribe to the configured PAP's change notifications.

        On each change the policy cache is invalidated so the next
        decision re-fetches — revocations propagate within one decision
        instead of one TTL.
        """
        if self.pap_address is None:
            raise ValueError(f"PDP {self.name} has no PAP to subscribe to")
        self.on("pap.changed", self._handle_policy_changed)
        self.call(self.pap_address, "pap.subscribe", "<Subscribe/>")

    def _handle_policy_changed(self, message: Message) -> None:
        self.invalidate_policy_cache()
        return None

    # -- attribute resolution ------------------------------------------------------

    def _attribute_finder_for(self, request: RequestContext):
        partition = self.partition
        resolver = self.attribute_resolver
        if partition is None and resolver is None and not self.pip_addresses:
            return None
        shard_category = {
            "subject": Category.SUBJECT,
            "resource": Category.RESOURCE,
        }.get(partition.spec.shard_by) if partition is not None else None

        def finder(
            category: Category, attribute_id: str, data_type: DataType
        ) -> list[AttributeValue]:
            if category is Category.SUBJECT:
                about = request.subject_id or ""
            elif category is Category.RESOURCE:
                about = request.resource_id or ""
            else:
                about = ""
            if about:
                # Sharded: the owned partition answers (faulting state
                # in from the authoritative resolver on first touch).
                if partition is not None and category is shard_category:
                    values = partition.lookup(about, attribute_id, data_type)
                    if values:
                        return values
                elif resolver is not None:
                    attributes = resolver(about) or {}
                    values = [
                        value
                        for value in attributes.get(attribute_id, [])
                        if value.data_type is data_type
                    ]
                    if values:
                        return values
            query = serialize_pip_query(category, attribute_id, about, data_type)
            for pip_address in self.pip_addresses:
                try:
                    reply = self.call(pip_address, "pip.query", query)
                except (RpcTimeout, RpcFault):
                    continue
                self.pip_queries_sent += 1
                values = parse_pip_response(str(reply.payload))
                if values:
                    return values
            return []

        return finder

    # -- evaluation ------------------------------------------------------------------

    def evaluate(self, request: RequestContext) -> EngineResponse:
        """Evaluate locally (the engine call every query path funnels into)."""
        self._ensure_policies()
        self.engine.attribute_finder = self._attribute_finder_for(request)
        self.decisions_made += 1
        return self.engine.evaluate(request, current_time=self.now)

    def evaluate_batch(self, requests: list[RequestContext]) -> list[EngineResponse]:
        """Evaluate N requests with one policy refresh and one store snapshot.

        The whole point of the batched decision fabric at this layer:
        :meth:`_ensure_policies` (with its potential PAP round-trip) runs
        once per batch instead of once per request, and the engine shares
        target-index lookups across identical request triples.
        """
        self._ensure_policies()
        self.decisions_made += len(requests)
        self.batch_queries_served += 1
        self.batched_decisions += len(requests)
        responses = self.engine.evaluate_batch(
            requests,
            current_time=self.now,
            finder_for=self._attribute_finder_for,
        )
        metrics = self.network.metrics
        for engine_response in responses:
            metrics.record_sample(
                CANDIDATE_SET_SERIES,
                engine_response.stats.candidate_set_size,
            )
        return responses

    # -- service-time model -------------------------------------------------------------

    def _reply_after_service(
        self, message: Message, payload, decisions: int, batch_id: str = ""
    ):
        """Return the reply now, or queue it behind this PDP's busy time.

        With the service-time model disabled (the default) the payload is
        returned and the base class replies immediately — seed behaviour.
        Otherwise the PDP is a FIFO server: the reply is scheduled for
        when the accumulated busy period ends, so concurrent load
        exhibits real queueing delay (measured by experiments E16/E17).
        Envelope overhead is serialised; the envelope's decisions are
        spread over ``worker_count`` workers, whose makespan is
        ``ceil(decisions / workers)`` decision service times.
        """
        cost = self.config.envelope_overhead
        if decisions:
            cost += (
                -(-decisions // self.config.worker_count)
                * self.config.decision_service_time
            )
        if cost <= 0:
            self._trace_service(message, batch_id, decisions, 0.0, 0.0)
            return payload
        start = max(self._busy_until, self.now)
        self._busy_until = start + cost
        self._trace_service(
            message, batch_id, decisions, start - self.now, cost
        )
        reply = message.reply(kind=f"{message.kind}:response", payload=payload)

        def send_reply() -> None:
            if self.alive:
                self.node.send(reply)

        self.network.loop.schedule(
            self._busy_until - self.now, send_reply, label="pdp-service"
        )
        return None

    def _trace_service(
        self,
        message: Message,
        batch_id: str,
        decisions: int,
        queued: float,
        cost: float,
    ) -> None:
        """Record this envelope's service span, parented under the
        sender's envelope span via the message's trace header.

        The span covers arrival → reply emission; its attributes split
        that into busy-wait (``queued``), per-envelope parse/signature
        work (``overhead``) and the worker-pool decision makespan
        (``eval``) — the figures the latency decomposition joins on.
        """
        tracer = self.network.tracer
        if not tracer.enabled:
            return
        context = TraceContext.parse(message.headers.get(TRACE_HEADER))
        overhead = min(self.config.envelope_overhead, cost) if cost else 0.0
        tracer.emit(
            "pdp.service",
            self.name,
            self.domain,
            start=self.now,
            end=self.now + queued + cost,
            trace_id=context.trace_id if context else None,
            parent_id=context.span_id if context else None,
            batch_id=batch_id,
            decisions=decisions,
            queued=queued,
            overhead=overhead,
            eval=max(cost - overhead, 0.0),
            workers=self.config.worker_count,
        )

    # -- message handlers ---------------------------------------------------------------

    def _handle_query(self, message: Message):
        if self.config.require_signed_queries:
            self.rejected_queries += 1
            raise RpcFault(
                "pdp:authentication-required",
                "this PDP only answers signed queries",
            )
        query = XacmlAuthzDecisionQuery.from_xml(str(message.payload))
        engine_response = self.evaluate(query.request)
        statement = XacmlAuthzDecisionStatement(
            response=engine_response.response,
            in_response_to=query.query_id,
            issuer=self.name,
            issue_instant=self.now,
            request_echo=query.request if query.return_context else None,
        )
        return self._reply_after_service(
            message, statement.to_xml(), decisions=1, batch_id=query.query_id
        )

    def _handle_batch_query(self, message: Message):
        if self.config.require_signed_queries:
            self.rejected_queries += 1
            raise RpcFault(
                "pdp:authentication-required",
                "this PDP only answers signed queries",
            )
        batch = XacmlAuthzDecisionBatchQuery.from_xml(str(message.payload))
        reply = self._answer_batch(batch)
        return self._reply_after_service(
            message,
            reply.to_xml(),
            decisions=len(batch.queries),
            batch_id=batch.batch_id,
        )

    def _statement_for(
        self, query: XacmlAuthzDecisionQuery, engine_response: EngineResponse
    ) -> XacmlAuthzDecisionStatement:
        return XacmlAuthzDecisionStatement(
            response=engine_response.response,
            in_response_to=query.query_id,
            issuer=self.name,
            issue_instant=self.now,
            request_echo=query.request if query.return_context else None,
        )

    def _answer_batch(
        self, batch: XacmlAuthzDecisionBatchQuery, allow_forward: bool = True
    ) -> XacmlAuthzDecisionBatchStatement:
        placement = self.config.placement
        if placement is None or not allow_forward:
            engine_responses = self.evaluate_batch(
                [query.request for query in batch.queries]
            )
            statements = tuple(
                self._statement_for(query, engine_response)
                for query, engine_response in zip(
                    batch.queries, engine_responses, strict=True
                )
            )
        else:
            statements = self._answer_batch_sharded(batch, placement)
        return XacmlAuthzDecisionBatchStatement(
            statements=statements,
            in_response_to=batch.batch_id,
            issuer=self.name,
            issue_instant=self.now,
        )

    def _answer_batch_sharded(
        self, batch: XacmlAuthzDecisionBatchQuery, placement: PlacementSpec
    ) -> tuple[XacmlAuthzDecisionStatement, ...]:
        """Answer a batch on a sharded replica: own, reforward, or fall back.

        Slots whose placement key this replica owns evaluate locally.
        Misrouted slots — a client routed with a stale ring view, or a
        failover landed the envelope on a non-owner — are reforwarded to
        their owning replica in one nested call per owner and the
        owner's statements are spliced back in query order.  If the
        owner is unreachable (or replies malformed) the slots are
        evaluated locally from the authoritative resolver: correctness
        is preserved, only placement is violated, and the partition does
        not retain the foreign keys.  All three paths are counted
        (``placement.misrouted`` / ``placement.reforwarded`` /
        ``placement.reforward_fallback``).
        """
        owned: list[tuple[int, XacmlAuthzDecisionQuery]] = []
        misrouted: dict[str, list[tuple[int, XacmlAuthzDecisionQuery]]] = {}
        for index, query in enumerate(batch.queries):
            owner = placement.owner_of(query.request)
            if owner == self.name:
                owned.append((index, query))
            else:
                misrouted.setdefault(owner, []).append((index, query))
        statements: list[Optional[XacmlAuthzDecisionStatement]] = [
            None
        ] * len(batch.queries)
        if owned:
            engine_responses = self.evaluate_batch(
                [query.request for _, query in owned]
            )
            for (index, query), engine_response in zip(
                owned, engine_responses, strict=True
            ):
                statements[index] = self._statement_for(query, engine_response)
        metrics = self.network.metrics
        for owner, group in misrouted.items():
            metrics.bump("placement.misrouted", len(group))
            sub_batch = XacmlAuthzDecisionBatchQuery(
                queries=tuple(query for _, query in group),
                issuer=self.name,
                issue_instant=self.now,
            )
            answers = None
            try:
                reply = self.call(
                    owner,
                    OWNED_BATCH_QUERY_ACTION,
                    sub_batch.to_xml(),
                    timeout=self.config.forward_timeout,
                )
                answer = XacmlAuthzDecisionBatchStatement.from_xml(
                    str(reply.payload)
                )
                if len(answer.statements) == len(group):
                    answers = answer.statements
            except (RpcTimeout, RpcFault):
                answers = None
            if answers is not None:
                self.reforwarded_batches += 1
                metrics.bump("placement.reforwarded", len(group))
                for (index, _), statement in zip(group, answers, strict=True):
                    statements[index] = statement
                continue
            metrics.bump("placement.reforward_fallback", len(group))
            engine_responses = self.evaluate_batch(
                [query.request for _, query in group]
            )
            for (index, query), engine_response in zip(
                group, engine_responses, strict=True
            ):
                statements[index] = self._statement_for(query, engine_response)
        return tuple(statements)

    def _handle_owned_batch_query(self, message: Message):
        """Answer a peer replica's reforward of slots this replica owns.

        Never forwards again even if the local view disagrees (one-hop
        TTL — two replicas with divergent rings must not bounce a slot
        forever); evaluating locally is always correct because the
        attribute resolver is authoritative.
        """
        batch = XacmlAuthzDecisionBatchQuery.from_xml(str(message.payload))
        self.owned_batches_served += 1
        reply = self._answer_batch(batch, allow_forward=False)
        return self._reply_after_service(
            message,
            reply.to_xml(),
            decisions=len(batch.queries),
            batch_id=batch.batch_id,
        )

    # -- placement lifecycle ------------------------------------------------------------

    def rebalance_placement(self) -> int:
        """Realign this replica's partition with the (changed) ring.

        Called on every replica after :meth:`~repro.components.
        placement.PlacementMap.add_replica` / ``remove_replica`` on the
        authoritative ring.  Evicts entries whose key range moved away
        (the new owner repopulates them on demand from the shared
        resolver) and returns how many moved; the tier-wide sum is the
        rebalance cost counted as ``placement.moved_keys``.
        """
        if self.partition is None:
            return 0
        moved = self.partition.rebalance()
        metrics = self.network.metrics
        metrics.bump("placement.moved_keys", moved)
        metrics.record_sample(
            SHARD_CARDINALITY_SERIES, self.partition.cardinality
        )
        return moved

    def shard_stats(self) -> dict:
        """Per-replica state figures E19 reports (cardinality and skew)."""
        stats: dict = {
            "replica": self.name,
            "store": self.engine.store.shard_stats(),
        }
        if self.partition is not None:
            partition = self.partition.stats
            stats.update(
                cardinality=self.partition.cardinality,
                faults=partition.faults,
                hits=partition.hits,
                unowned_lookups=partition.unowned_lookups,
                evicted=partition.evicted,
            )
        return stats

    def _verify_secure_query(self, message: Message):
        """Shared front half of the secure endpoints: verify, or fault."""
        envelope = message.payload
        if not isinstance(envelope, SoapEnvelope):
            raise RpcFault("pdp:bad-request", "expected a SOAP envelope")
        if self.identity is None:
            raise RpcFault("pdp:misconfigured", "secure endpoint without identity")
        try:
            return verify_envelope(
                envelope,
                self.identity.keystore,
                self.identity.validator,
                decrypt_with=self.identity.keypair,
                config=SecurityConfig(require_signature=True),
                at=self.now,
            )
        except WsSecurityError as exc:
            self.rejected_queries += 1
            raise RpcFault("pdp:authentication-failed", str(exc)) from exc

    def _sign_reply(self, action: str, body_xml: str) -> SoapEnvelope:
        reply = SoapEnvelope(action=action, body_xml=body_xml)
        if self.config.sign_responses:
            reply = secure_envelope(
                reply,
                self.identity.keypair,
                self.identity.certificate,
                self.identity.keystore,
            )
        return reply

    def _handle_secure_query(self, message: Message):
        clear = self._verify_secure_query(message)
        query = XacmlAuthzDecisionQuery.from_xml(clear.body_xml)
        engine_response = self.evaluate(query.request)
        statement = XacmlAuthzDecisionStatement(
            response=engine_response.response,
            in_response_to=query.query_id,
            issuer=self.name,
            issue_instant=self.now,
            request_echo=query.request if query.return_context else None,
        )
        reply = self._sign_reply(
            f"{SECURE_QUERY_ACTION}:result", statement.to_xml()
        )
        return self._reply_after_service(
            message, reply, decisions=1, batch_id=query.query_id
        )

    def _handle_secure_batch_query(self, message: Message):
        """One signature verified, one signed for the whole batch.

        This is the fabric's amortisation on the authenticated channel:
        the WS-Security processing (and the simulated envelope overhead)
        is per envelope, so N requests cost one verify + one sign instead
        of N of each.
        """
        clear = self._verify_secure_query(message)
        batch = XacmlAuthzDecisionBatchQuery.from_xml(clear.body_xml)
        answer = self._answer_batch(batch)
        reply = self._sign_reply(
            f"{SECURE_BATCH_QUERY_ACTION}:result", answer.to_xml()
        )
        return self._reply_after_service(
            message,
            reply,
            decisions=len(batch.queries),
            batch_id=batch.batch_id,
        )
