"""The four policy-based authorisation components (paper §2.2).

PEP enforces, PDP decides, PAP administers, PIP informs.  All are
network-attached :class:`~repro.components.base.Component` subclasses that
exchange real XML over the simulated network, plus the TTL caches and the
context handler the architecture calls for.
"""

from .base import (
    Component,
    ComponentIdentity,
    DEFAULT_TIMEOUT,
    RpcFault,
    RpcTimeout,
)
from .cache import CacheStats, TtlCache
from .obligations import (
    AUDIT_OBLIGATION,
    ENCRYPT_RESPONSE_OBLIGATION,
    NOTIFY_OBLIGATION,
    ObligationAuditTrail,
    QUOTA_OBLIGATION,
    QuotaLedger,
    WATERMARK_OBLIGATION,
    audit_handler,
    encrypt_response_handler,
    notify_handler,
    quota_handler,
    register_standard_handlers,
)
from .context_handler import (
    ContextHandlerError,
    from_http_request,
    from_soap_call,
    with_environment_time,
)
from .fabric import (
    BatchWireCore,
    CoalescingDecisionQueue,
    DISPATCH_POLICIES,
    DecisionDispatcher,
    DomainDecisionGateway,
    QUEUE_LATENCY_SERIES,
    SUPER_BATCH_SERIES,
    WireJob,
    pep_latency_series,
)
from .federation import (
    DEFAULT_FORWARD_TTL,
    FORWARD_ACTION,
    FederatedGateway,
    ForwardedBatchQuery,
    SECURE_FORWARD_ACTION,
)
from .pap import (
    PolicyAdministrationPoint,
    PolicyRepository,
    parse_bundle,
    parse_revision,
    serialize_bundle,
)
from .pdp import (
    BATCH_QUERY_ACTION,
    PdpConfig,
    PolicyDecisionPoint,
    QUERY_ACTION,
    SECURE_BATCH_QUERY_ACTION,
    SECURE_QUERY_ACTION,
)
from .pep import (
    EnforcementResult,
    ObligationHandler,
    PepConfig,
    PolicyEnforcementPoint,
    RevocationGuard,
)
from .pip import (
    AttributeStore,
    PolicyInformationPoint,
    parse_pip_query,
    parse_pip_response,
    serialize_pip_query,
    serialize_pip_response,
)

__all__ = [
    "AUDIT_OBLIGATION",
    "AttributeStore",
    "BATCH_QUERY_ACTION",
    "BatchWireCore",
    "CacheStats",
    "CoalescingDecisionQueue",
    "DEFAULT_FORWARD_TTL",
    "DISPATCH_POLICIES",
    "DecisionDispatcher",
    "DomainDecisionGateway",
    "FORWARD_ACTION",
    "FederatedGateway",
    "ForwardedBatchQuery",
    "QUEUE_LATENCY_SERIES",
    "SECURE_FORWARD_ACTION",
    "SUPER_BATCH_SERIES",
    "WireJob",
    "pep_latency_series",
    "SECURE_BATCH_QUERY_ACTION",
    "ENCRYPT_RESPONSE_OBLIGATION",
    "NOTIFY_OBLIGATION",
    "ObligationAuditTrail",
    "QUOTA_OBLIGATION",
    "QuotaLedger",
    "WATERMARK_OBLIGATION",
    "audit_handler",
    "encrypt_response_handler",
    "notify_handler",
    "quota_handler",
    "register_standard_handlers",
    "Component",
    "ComponentIdentity",
    "ContextHandlerError",
    "DEFAULT_TIMEOUT",
    "EnforcementResult",
    "ObligationHandler",
    "PdpConfig",
    "PepConfig",
    "PolicyAdministrationPoint",
    "PolicyDecisionPoint",
    "PolicyEnforcementPoint",
    "PolicyInformationPoint",
    "PolicyRepository",
    "QUERY_ACTION",
    "RevocationGuard",
    "RpcFault",
    "RpcTimeout",
    "SECURE_QUERY_ACTION",
    "TtlCache",
    "from_http_request",
    "from_soap_call",
    "parse_bundle",
    "parse_pip_query",
    "parse_pip_response",
    "parse_revision",
    "serialize_bundle",
    "serialize_pip_query",
    "serialize_pip_response",
    "with_environment_time",
]
