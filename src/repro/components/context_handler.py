"""Context handler: native request formats → XACML request contexts.

The XACML data-flow (paper Fig. 4) places a *context handler* between the
PEP and the PDP: "an intermediate component, which would convert between
the request/response format understood by the PEP and the XACML context
format understood by the PDP".  This module converts the two native
formats the repo's Web Services substrate produces — SOAP business calls
and REST/HTTP requests — into canonical request contexts.
"""

from __future__ import annotations


from ..wsvc.rest import HttpRequest, RestRouter, RouteDecision
from ..wsvc.soap import SoapEnvelope
from ..xacml.attributes import (
    Attribute,
    Category,
    RESOURCE_DOMAIN,
    SUBJECT_DOMAIN,
    string,
)
from ..xacml.context import RequestContext


class ContextHandlerError(Exception):
    """Raised when a native request cannot be mapped to a context."""


def from_soap_call(
    envelope: SoapEnvelope,
    subject_id: str,
    service_name: str,
    subject_domain: str = "",
    resource_domain: str = "",
) -> RequestContext:
    """Map a SOAP business call to a request context.

    SOAP services expose many operations behind one URI (paper §3.1), so
    the *resource* is the service and the *action* is the SOAP action —
    giving policies the per-operation granularity the paper calls for.
    """
    if not envelope.action:
        raise ContextHandlerError("SOAP envelope carries no action")
    request = RequestContext.simple(
        subject_id=subject_id,
        resource_id=service_name,
        action_id=envelope.action,
    )
    if subject_domain:
        request.add(
            Category.SUBJECT, Attribute.of(SUBJECT_DOMAIN, string(subject_domain))
        )
    if resource_domain:
        request.add(
            Category.RESOURCE, Attribute.of(RESOURCE_DOMAIN, string(resource_domain))
        )
    return request


def from_http_request(
    http_request: HttpRequest,
    router: RestRouter,
    subject_domain: str = "",
    resource_domain: str = "",
) -> tuple[RequestContext, RouteDecision]:
    """Map a REST call to a request context via the router.

    RESTful resources have one URI each, so resource and action fall out
    of the route directly — the paper's observation that REST makes
    access control "much easier" is visible here as the absence of any
    message inspection.
    """
    decision = router.route(http_request)
    if decision is None:
        raise ContextHandlerError(
            f"no route for {http_request.method} {http_request.uri}"
        )
    if not http_request.subject_id:
        raise ContextHandlerError("unauthenticated HTTP request")
    request = RequestContext.simple(
        subject_id=http_request.subject_id,
        resource_id=decision.resource_id,
        action_id=decision.action_id,
    )
    if subject_domain:
        request.add(
            Category.SUBJECT, Attribute.of(SUBJECT_DOMAIN, string(subject_domain))
        )
    if resource_domain:
        request.add(
            Category.RESOURCE, Attribute.of(RESOURCE_DOMAIN, string(resource_domain))
        )
    return request, decision


def with_environment_time(request: RequestContext, now: float) -> RequestContext:
    """Attach the current simulated time as an environment attribute."""
    from ..xacml.attributes import ENVIRONMENT_DATE_TIME, date_time

    request.add(
        Category.ENVIRONMENT,
        Attribute.of(ENVIRONMENT_DATE_TIME, date_time(now)),
    )
    return request
