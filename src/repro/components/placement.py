"""PDP placement: consistent-hash ownership of decision state.

Every experiment before E19 drives load over a handful of subjects, so
"PDP replica" meant *stateless compute*: any replica could answer any
request from the same small policy store.  At the north star's scale —
millions of distinct subjects, each carrying attribute state the PDP
must consult — the state itself becomes the scaling axis, and placement
(which replica owns which key range) becomes an architectural layer of
its own:

* :class:`PlacementMap` — a consistent-hash ring over PDP replica
  addresses.  Keys (subject or resource ids) map to owners through
  virtual nodes, so replica join/leave moves only ~1/N of the key
  space; ``epoch`` counts ring changes so stale routing views are
  detectable.
* :class:`PlacementSpec` — the placement contract a
  :class:`~repro.components.pdp.PdpConfig` carries: the shared ring
  plus the request attribute the tier shards by ("subject" or
  "resource").  Both the replica-side ownership checks and the
  client-side ``hash-subject`` / ``hash-resource`` routing policies
  read the same spec, so there is exactly one source of truth for who
  owns what.
* :class:`AttributePartition` — one replica's slice of the population's
  subject-attribute state.  Entries materialise lazily from an
  authoritative ``resolver`` (the population generator, a directory, a
  database) on first lookup — the "repopulate" half of the rebalance
  story — and a ring change evicts whatever the replica no longer owns
  (the "migrate away" half), so per-replica state cardinality tracks
  ~1/N of the touched key space instead of duplicating hot keys on
  every replica.

The XACML-engine side of the same story (partitioning a
:class:`~repro.xacml.engine.PolicyStore` by governed resource) lives in
:meth:`repro.xacml.engine.PolicyStore.partition_for`.
"""

from __future__ import annotations

import bisect
import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..xacml.attributes import AttributeValue, DataType

#: What a placement layer may shard decision state by.
SHARD_KEYS = ("subject", "resource")

#: Stable hash functions usable for ring placement.  ``crc32`` is the
#: fast default; ``sha1`` trades speed for better small-key dispersion.
HASH_FUNCTIONS = ("crc32", "sha1")


def stable_hash(key: str, hash_name: str = "crc32") -> int:
    """Process-independent hash of one placement key.

    Python's builtin ``hash`` is salted per process, which would make
    shard ownership differ between the replica that stored a key and
    the client routing to it.  Placement therefore only ever uses
    explicitly stable digests.
    """
    data = key.encode("utf-8")
    if hash_name == "crc32":
        return zlib.crc32(data) & 0xFFFFFFFF
    if hash_name == "sha1":
        return int.from_bytes(hashlib.sha1(data).digest()[:8], "big")
    raise ValueError(
        f"unknown placement hash {hash_name!r}; expected one of "
        f"{HASH_FUNCTIONS}"
    )


class PlacementMap:
    """Consistent-hash ring mapping placement keys to replica addresses.

    Args:
        replicas: initial replica addresses (ownership order does not
            matter; the ring is derived from hashes).
        hash_name: one of :data:`HASH_FUNCTIONS`.
        virtual_nodes: ring points per replica.  More points smooth the
            per-replica share of the key space at the cost of a larger
            ring; 64 keeps the max/min share within ~2x for small
            replica counts.
    """

    def __init__(
        self,
        replicas: Sequence[str],
        hash_name: str = "crc32",
        virtual_nodes: int = 64,
    ) -> None:
        if not replicas:
            raise ValueError("placement map needs at least one replica")
        if len(set(replicas)) != len(replicas):
            raise ValueError(f"duplicate replica addresses: {list(replicas)}")
        if hash_name not in HASH_FUNCTIONS:
            raise ValueError(
                f"unknown placement hash {hash_name!r}; expected one of "
                f"{HASH_FUNCTIONS}"
            )
        if virtual_nodes < 1:
            raise ValueError(f"virtual_nodes must be >= 1, got {virtual_nodes}")
        self.hash_name = hash_name
        self.virtual_nodes = virtual_nodes
        #: Ring changes so far; replicas compare epochs to detect stale
        #: client routing views (the misroute/reforward window).
        self.epoch = 0
        self._replicas: list[str] = []
        self._points: list[int] = []
        self._owners: list[str] = []
        for address in replicas:
            self._insert(address)

    # -- ring maintenance ---------------------------------------------------------

    def _vnode_hashes(self, address: str) -> list[int]:
        return [
            stable_hash(f"{address}#{index}", self.hash_name)
            for index in range(self.virtual_nodes)
        ]

    def _insert(self, address: str) -> None:
        self._replicas.append(address)
        for point in self._vnode_hashes(address):
            slot = bisect.bisect(self._points, point)
            # Ties broken by address so ring layout is order-independent.
            while (
                slot < len(self._points)
                and self._points[slot] == point
                and self._owners[slot] < address
            ):
                slot += 1
            self._points.insert(slot, point)
            self._owners.insert(slot, address)

    def add_replica(self, address: str) -> None:
        """Join one replica; bumps the epoch.  ~1/N of keys move to it."""
        if address in self._replicas:
            raise ValueError(f"replica {address!r} already placed")
        self._insert(address)
        self.epoch += 1

    def remove_replica(self, address: str) -> None:
        """Leave one replica; bumps the epoch.  Its keys move to peers."""
        if address not in self._replicas:
            raise ValueError(f"replica {address!r} not placed")
        if len(self._replicas) == 1:
            raise ValueError("cannot remove the last replica")
        self._replicas.remove(address)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners, strict=True)
            if owner != address
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]
        self.epoch += 1

    def copy(self) -> "PlacementMap":
        """Independent snapshot (a client's possibly-stale routing view)."""
        snapshot = PlacementMap(
            list(self._replicas),
            hash_name=self.hash_name,
            virtual_nodes=self.virtual_nodes,
        )
        snapshot.epoch = self.epoch
        return snapshot

    def sync_from(self, other: "PlacementMap") -> None:
        """Adopt ``other``'s ring and epoch (routing-view catch-up)."""
        self._replicas = list(other._replicas)
        self._points = list(other._points)
        self._owners = list(other._owners)
        self.hash_name = other.hash_name
        self.virtual_nodes = other.virtual_nodes
        self.epoch = other.epoch

    # -- lookups ------------------------------------------------------------------

    @property
    def replicas(self) -> list[str]:
        return list(self._replicas)

    def __len__(self) -> int:
        return len(self._replicas)

    def __contains__(self, address: str) -> bool:
        return address in self._replicas

    def owner(self, key: str) -> str:
        """The replica owning ``key`` under the current ring."""
        point = stable_hash(key, self.hash_name)
        slot = bisect.bisect(self._points, point)
        if slot == len(self._points):
            slot = 0
        return self._owners[slot]

    def preference(self, key: str) -> list[str]:
        """Every replica in failover order for ``key``: owner first,
        then distinct successors walking the ring."""
        if len(self._replicas) == 1:
            return list(self._replicas)
        point = stable_hash(key, self.hash_name)
        start = bisect.bisect(self._points, point)
        ordered: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                ordered.append(owner)
                if len(ordered) == len(self._replicas):
                    break
        return ordered

    def share_of(self, address: str, keys: Sequence[str]) -> float:
        """Fraction of ``keys`` owned by ``address`` (balance probes)."""
        if not keys:
            return 0.0
        owned = sum(1 for key in keys if self.owner(key) == address)
        return owned / len(keys)

    def __repr__(self) -> str:
        return (
            f"PlacementMap(replicas={len(self._replicas)}, "
            f"epoch={self.epoch}, hash={self.hash_name})"
        )


@dataclass
class PlacementSpec:
    """The placement contract of one sharded PDP tier.

    Carried by :class:`~repro.components.pdp.PdpConfig` (validated in
    its ``__post_init__``) and by the ``hash-subject`` /
    ``hash-resource`` routing policies, so replicas and routers agree on
    ownership by construction.  ``ring`` is shared and mutable —
    rebalances go through :meth:`PlacementMap.add_replica` /
    :meth:`~PlacementMap.remove_replica` on the authoritative spec, and
    stale client views catch up via :meth:`PlacementMap.sync_from`.

    Attributes:
        shard_by: which request attribute keys the placement —
            ``"subject"`` partitions subject-attribute state,
            ``"resource"`` partitions the policy store.
        ring: the consistent-hash ring over replica addresses.
    """

    shard_by: str
    ring: PlacementMap

    def __post_init__(self) -> None:
        if self.shard_by not in SHARD_KEYS:
            raise ValueError(
                f"shard_by must be one of {SHARD_KEYS}, got {self.shard_by!r}"
            )
        if not isinstance(self.ring, PlacementMap):
            raise ValueError(
                f"placement ring must be a PlacementMap, got "
                f"{type(self.ring).__name__}"
            )

    def key_of(self, request) -> str:
        """The placement key of one request context ('' when absent)."""
        if self.shard_by == "subject":
            return request.subject_id or ""
        return request.resource_id or ""

    def owner_of(self, request) -> str:
        return self.ring.owner(self.key_of(request))

    def preference_for(self, request) -> list[str]:
        return self.ring.preference(self.key_of(request))

    def routing_view(self) -> "PlacementSpec":
        """A snapshot spec whose ring updates independently — models a
        client whose placement view lags the authoritative ring."""
        return PlacementSpec(shard_by=self.shard_by, ring=self.ring.copy())


#: Authoritative attribute source backing a partition: subject/resource
#: id -> {attribute_id: [values]}.  Deterministic resolvers (the
#: population generator) make "repopulate after rebalance" exact.
AttributeResolver = Callable[[str], dict[str, list[AttributeValue]]]


@dataclass
class PartitionStats:
    """Counters one partition keeps about its own state churn."""

    lookups: int = 0
    hits: int = 0
    faults: int = 0
    misses: int = 0
    #: Lookups for keys outside the owned range (misrouted traffic).
    unowned_lookups: int = 0
    #: Entries dropped because a rebalance moved their range away.
    evicted: int = 0
    rebalances: int = 0


class AttributePartition:
    """One replica's owned slice of per-subject (or per-resource)
    attribute state, materialised lazily from an authoritative resolver.

    The partition is the replica-side state model of E19: lookups for
    owned keys fault the entry in once and retain it; lookups for keys
    the replica does not own are still answered (the resolver is
    authoritative, so decisions stay correct on misrouted traffic) but
    the entry is *not* retained — misroutes must not pollute the
    partition's cardinality.  A ring change (:meth:`rebalance`) evicts
    every retained entry outside the new owned range and returns how
    many moved, the per-replica cost E19's join/leave sweep reports.

    Args:
        owner: this replica's address in the ring.
        spec: the authoritative placement spec (shared object).
        resolver: authoritative attribute source; ``None`` makes the
            partition a purely preloaded store.
    """

    def __init__(
        self,
        owner: str,
        spec: PlacementSpec,
        resolver: Optional[AttributeResolver] = None,
    ) -> None:
        self.owner = owner
        self.spec = spec
        self.resolver = resolver
        self._entries: dict[str, dict[str, list[AttributeValue]]] = {}
        self.stats = PartitionStats()

    # -- ownership ----------------------------------------------------------------

    def owns(self, key: str) -> bool:
        return self.spec.ring.owner(key) == self.owner

    @property
    def cardinality(self) -> int:
        """Distinct keys this partition currently materialises."""
        return len(self._entries)

    def keys(self) -> list[str]:
        return list(self._entries)

    # -- population ---------------------------------------------------------------

    def preload(
        self, key: str, attributes: dict[str, list[AttributeValue]]
    ) -> bool:
        """Install state for an owned key (migration receive path).

        Returns False (and stores nothing) for keys outside the owned
        range, so a bulk loader can stream the whole population at every
        replica and each retains only its share.
        """
        if not self.owns(key):
            return False
        self._entries[key] = {
            attribute_id: list(values)
            for attribute_id, values in attributes.items()
        }
        return True

    def _materialise(self, key: str) -> Optional[dict]:
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            return entry
        if self.resolver is None:
            return None
        attributes = self.resolver(key)
        if attributes is None:
            return None
        self.stats.faults += 1
        entry = {
            attribute_id: list(values)
            for attribute_id, values in attributes.items()
        }
        self._entries[key] = entry
        return entry

    def lookup(
        self, key: str, attribute_id: str, data_type: DataType
    ) -> list[AttributeValue]:
        """Values of one attribute of ``key``, faulting owned state in.

        Unowned keys are answered straight from the resolver without
        retention and counted as ``unowned_lookups`` — the partition's
        view of misrouted traffic.
        """
        self.stats.lookups += 1
        if not self.owns(key):
            self.stats.unowned_lookups += 1
            attributes = self.resolver(key) if self.resolver else None
            values = (attributes or {}).get(attribute_id, [])
            return [v for v in values if v.data_type is data_type]
        entry = self._materialise(key)
        if entry is None:
            self.stats.misses += 1
            return []
        values = entry.get(attribute_id, [])
        return [v for v in values if v.data_type is data_type]

    # -- rebalance ----------------------------------------------------------------

    def rebalance(self) -> int:
        """Drop every entry outside the (possibly changed) owned range.

        Called after the authoritative ring gained or lost a replica.
        Returns the number of entries evicted — the keys that *moved*
        off this replica; the new owner repopulates them on demand from
        the shared resolver (or receives them via :meth:`preload`).
        """
        moved = [key for key in self._entries if not self.owns(key)]
        for key in moved:
            del self._entries[key]
        self.stats.evicted += len(moved)
        self.stats.rebalances += 1
        return len(moved)

    def export_entries(
        self, keys: Optional[Sequence[str]] = None
    ) -> dict[str, dict[str, list[AttributeValue]]]:
        """Copy out entries (migration send path); all entries when
        ``keys`` is None."""
        chosen = self._entries if keys is None else {
            key: self._entries[key] for key in keys if key in self._entries
        }
        return {
            key: {aid: list(values) for aid, values in entry.items()}
            for key, entry in chosen.items()
        }

    def __repr__(self) -> str:
        return (
            f"AttributePartition(owner={self.owner!r}, "
            f"cardinality={self.cardinality}, "
            f"epoch={self.spec.ring.epoch})"
        )


@dataclass
class RebalanceReport:
    """What one tier-wide rebalance moved (summed over replicas)."""

    epoch: int
    moved_keys: int = 0
    per_replica: dict[str, int] = field(default_factory=dict)
