"""Policy Enforcement Point: the guard in front of every resource.

"The PEP component ... creates a barrier around the resource it protects
and mediates all accesses to this resource.  It conforms to decisions
that are made by other components" (paper §2.2).  The implementation
covers the architectural duties Section 3 assigns to enforcement points:

* querying a PDP (pull model) with optional WS-Security mutual
  authentication, verifying that responses really come from the trusted
  decision point;
* **decision caching** with TTL (paper §3.2 communication performance;
  experiment E6 measures both the savings and the staleness risk);
* **obligation enforcement**: registered handlers run before access is
  granted; an obligation the PEP does not understand forces Deny
  (XACML §7.14);
* **fail-safe enforcement**: if no PDP can be reached the PEP denies
  rather than failing open (configurable, experiments E10/E11);
* a hook for capability-based (push-model) validation, used by
  :mod:`repro.capability`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..saml.xacml_profile import XacmlAuthzDecisionQuery, XacmlAuthzDecisionStatement
from ..simnet.network import Network
from ..xacml.attributes import Category, RESOURCE_ID, SUBJECT_ID
from ..wsvc.soap import SoapEnvelope
from ..wsvc.ws_security import (
    SecurityConfig,
    WsSecurityError,
    secure_envelope,
    signer_of,
    verify_envelope,
)
from ..xacml.context import (
    Decision,
    Obligation,
    RequestContext,
    Status,
    StatusCode,
)
from .base import Component, ComponentIdentity, RpcFault, RpcTimeout
from .cache import TtlCache
from .pdp import QUERY_ACTION, SECURE_QUERY_ACTION

#: Obligation handler: receives the obligation and the request, performs
#: the action, returns True when fulfilled.
ObligationHandler = Callable[[Obligation, RequestContext], bool]

#: Revocation guard: consulted before any decision (cached or fresh) is
#: served; returns a denial reason when the request hits revoked state,
#: None to let enforcement proceed.  Installed by
#: :meth:`repro.revocation.coherence.CoherenceAgent.protect_pep`.
RevocationGuard = Callable[[RequestContext], Optional[str]]


@dataclass
class PepConfig:
    #: Decision cache TTL in simulated seconds; 0 disables the cache.
    decision_cache_ttl: float = 0.0
    decision_cache_capacity: int = 10_000
    #: Sign queries / verify response signatures (mutual authentication).
    secure_channel: bool = False
    #: Deny when no decision can be obtained (fail-safe); False would
    #: fail open, which no experiment enables but tests cover.
    deny_on_failure: bool = True
    #: RPC deadline towards the PDP.
    pdp_timeout: float = 2.0


@dataclass(frozen=True)
class EnforcementResult:
    """What enforcement concluded, and why."""

    decision: Decision
    source: str  # "pdp" | "cache" | "capability" | "fail-safe" | "obligation"
    obligations: tuple[Obligation, ...] = ()
    status: Optional[Status] = None
    detail: str = ""

    @property
    def granted(self) -> bool:
        return self.decision is Decision.PERMIT


class PolicyEnforcementPoint(Component):
    """Network-attached PEP guarding one or more resources."""

    def __init__(
        self,
        name: str,
        network: Network,
        domain: str = "",
        identity: Optional[ComponentIdentity] = None,
        pdp_address: Optional[str] = None,
        config: Optional[PepConfig] = None,
        pdp_selector: Optional[Callable[[], Optional[str]]] = None,
    ) -> None:
        super().__init__(name, network, domain, identity)
        self.config = config if config is not None else PepConfig()
        self.pdp_address = pdp_address
        #: Dynamic PDP selection hook (discovery, replication router).
        self.pdp_selector = pdp_selector
        self.decision_cache: TtlCache = TtlCache(
            ttl=self.config.decision_cache_ttl,
            clock=lambda: self.now,
            capacity=self.config.decision_cache_capacity,
        )
        self._obligation_handlers: dict[str, ObligationHandler] = {}
        #: Optional revocation coherence hook (see repro.revocation).
        self.revocation_guard: Optional[RevocationGuard] = None
        self.enforcements = 0
        self.grants = 0
        self.denials = 0
        self.fail_safe_denials = 0
        self.obligation_failures = 0
        self.revocation_denials = 0

    # -- obligations --------------------------------------------------------------

    def register_obligation_handler(
        self, obligation_id: str, handler: ObligationHandler
    ) -> None:
        self._obligation_handlers[obligation_id] = handler

    def _fulfil_obligations(
        self, obligations: tuple[Obligation, ...], request: RequestContext
    ) -> Optional[str]:
        """Run handlers; returns an error string when enforcement must deny."""
        for obligation in obligations:
            handler = self._obligation_handlers.get(obligation.obligation_id)
            if handler is None:
                return (
                    f"obligation {obligation.obligation_id!r} not understood"
                )
            if not handler(obligation, request):
                return f"obligation {obligation.obligation_id!r} failed"
        return None

    # -- the decision query (pull model) ----------------------------------------------

    def _choose_pdp(self) -> Optional[str]:
        if self.pdp_selector is not None:
            chosen = self.pdp_selector()
            if chosen is not None:
                return chosen
        return self.pdp_address

    def _query_pdp(self, request: RequestContext) -> XacmlAuthzDecisionStatement:
        pdp = self._choose_pdp()
        if pdp is None:
            raise RpcTimeout(self.name, "<none>", "no PDP configured", self.now)
        query = XacmlAuthzDecisionQuery(
            request=request, issuer=self.name, issue_instant=self.now
        )
        if self.config.secure_channel:
            if self.identity is None:
                raise ValueError(f"PEP {self.name} has no identity for secure mode")
            envelope = SoapEnvelope(
                action=SECURE_QUERY_ACTION, body_xml=query.to_xml()
            )
            envelope = secure_envelope(
                envelope,
                self.identity.keypair,
                self.identity.certificate,
                self.identity.keystore,
            )
            reply = self.call(
                pdp, SECURE_QUERY_ACTION, envelope, timeout=self.config.pdp_timeout
            )
            reply_envelope = reply.payload
            if not isinstance(reply_envelope, SoapEnvelope):
                raise RpcFault("pep:bad-reply", "PDP returned non-SOAP payload")
            clear = verify_envelope(
                reply_envelope,
                self.identity.keystore,
                self.identity.validator,
                decrypt_with=self.identity.keypair,
                config=SecurityConfig(require_signature=True),
                at=self.now,
            )
            if signer_of(clear) != pdp:
                raise WsSecurityError(
                    f"decision signed by {signer_of(clear)!r}, expected {pdp!r}"
                )
            return XacmlAuthzDecisionStatement.from_xml(clear.body_xml)
        reply = self.call(
            pdp, QUERY_ACTION, query.to_xml(), timeout=self.config.pdp_timeout
        )
        return XacmlAuthzDecisionStatement.from_xml(str(reply.payload))

    # -- enforcement ----------------------------------------------------------------

    def authorize(self, request: RequestContext) -> EnforcementResult:
        """Full pull-model enforcement of one access request."""
        self.enforcements += 1
        if self.revocation_guard is not None:
            reason = self.revocation_guard(request)
            if reason is not None:
                self.revocation_denials += 1
                self.denials += 1
                return EnforcementResult(
                    decision=Decision.DENY,
                    source="revocation",
                    detail=reason,
                )
        cache_key = request.cache_key()
        cached = self.decision_cache.get(cache_key)
        if cached is not None:
            result = self._enforce(
                cached.response.decision,
                tuple(cached.response.result.obligations),
                request,
                source="cache",
            )
            return result
        try:
            statement = self._query_pdp(request)
        except (RpcTimeout, RpcFault, WsSecurityError) as exc:
            if self.config.deny_on_failure:
                self.fail_safe_denials += 1
                self.denials += 1
                return EnforcementResult(
                    decision=Decision.DENY,
                    source="fail-safe",
                    status=Status(
                        code=StatusCode.PROCESSING_ERROR, message=str(exc)
                    ),
                    detail=f"fail-safe deny: {exc}",
                )
            raise
        self.decision_cache.put(cache_key, statement)
        return self._enforce(
            statement.response.decision,
            tuple(statement.response.result.obligations),
            request,
            source="pdp",
        )

    def _enforce(
        self,
        decision: Decision,
        obligations: tuple[Obligation, ...],
        request: RequestContext,
        source: str,
    ) -> EnforcementResult:
        if decision is Decision.PERMIT:
            error = self._fulfil_obligations(obligations, request)
            if error is not None:
                self.obligation_failures += 1
                self.denials += 1
                return EnforcementResult(
                    decision=Decision.DENY,
                    source="obligation",
                    obligations=obligations,
                    detail=error,
                )
            self.grants += 1
            return EnforcementResult(
                decision=Decision.PERMIT, source=source, obligations=obligations
            )
        # Deny-side obligations still run (e.g. audit-on-deny), but cannot
        # rescue the decision.
        if decision is Decision.DENY:
            self._fulfil_obligations(obligations, request)
        self.denials += 1
        return EnforcementResult(
            decision=Decision.DENY if decision is Decision.DENY else decision,
            source=source,
            obligations=obligations,
        )

    def authorize_simple(
        self, subject_id: str, resource_id: str, action_id: str
    ) -> EnforcementResult:
        return self.authorize(
            RequestContext.simple(subject_id, resource_id, action_id)
        )

    def invalidate_cached_decisions(self) -> None:
        """Drop all cached decisions (e.g. after a known policy change)."""
        self.decision_cache.clear()

    def invalidate_decisions_for(
        self,
        subject_id: Optional[str] = None,
        resource_id: Optional[str] = None,
    ) -> int:
        """Selectively drop cached decisions touching a subject/resource.

        This is the precise form of coherence a revocation event needs:
        revoking one subject's rights must not cost every other cached
        decision (paper §3.2 pits caching against revocation
        flexibility).  With both filters given, entries matching *either*
        are dropped.  Returns the number of entries invalidated.
        """
        if subject_id is None and resource_id is None:
            return 0
        wanted = set()
        if subject_id is not None:
            wanted.add((Category.SUBJECT.value, SUBJECT_ID, subject_id))
        if resource_id is not None:
            wanted.add((Category.RESOURCE.value, RESOURCE_ID, resource_id))

        def touches(key) -> bool:
            return any(part in wanted for part in key)

        return self.decision_cache.invalidate_where(touches)

    # -- revocation push (paper §3.2: caching vs revocation flexibility) ---------

    def subscribe_to_policy_changes(self, pap_address: str) -> None:
        """Subscribe to PAP change notifications; invalidate cache on each.

        This is the mitigation beyond TTLs for the staleness problem the
        paper describes: revocations reach cached decisions immediately at
        the cost of one notification message per change per PEP
        (experiment E6's 'TTL + invalidation push' row).
        """
        self.invalidations_received = getattr(self, "invalidations_received", 0)
        self.on("pap.changed", self._handle_policy_changed)
        self.call(pap_address, "pap.subscribe", "<Subscribe/>")

    def _handle_policy_changed(self, message) -> None:
        self.invalidations_received = getattr(self, "invalidations_received", 0) + 1
        self.decision_cache.clear()
        return None
