"""Policy Enforcement Point: the guard in front of every resource.

"The PEP component ... creates a barrier around the resource it protects
and mediates all accesses to this resource.  It conforms to decisions
that are made by other components" (paper §2.2).  The implementation
covers the architectural duties Section 3 assigns to enforcement points:

* querying a PDP (pull model) with optional WS-Security mutual
  authentication, verifying that responses really come from the trusted
  decision point;
* **decision caching** with TTL (paper §3.2 communication performance;
  experiment E6 measures both the savings and the staleness risk);
* **obligation enforcement**: registered handlers run before access is
  granted; an obligation the PEP does not understand forces Deny
  (XACML §7.14);
* **fail-safe enforcement**: if no PDP can be reached the PEP denies
  rather than failing open (configurable, experiments E10/E11);
* a hook for capability-based (push-model) validation, used by
  :mod:`repro.capability`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..saml.xacml_profile import (
    XacmlAuthzDecisionBatchQuery,
    XacmlAuthzDecisionBatchStatement,
    XacmlAuthzDecisionQuery,
    XacmlAuthzDecisionStatement,
)
from ..simnet.message import Message
from ..simnet.network import Network
from ..wsvc.soap import SoapEnvelope
from ..wsvc.ws_security import (
    SecurityConfig,
    WsSecurityError,
    secure_envelope,
    signer_of,
    verify_envelope,
)
from ..xacml.context import (
    Decision,
    Obligation,
    RequestContext,
    Status,
    StatusCode,
    cache_key_touches,
)
from .base import Component, ComponentIdentity, RpcFault, RpcTimeout
from .cache import TtlCache
from .fabric import CoalescingDecisionQueue, DecisionDispatcher
from .pdp import (
    BATCH_QUERY_ACTION,
    QUERY_ACTION,
    SECURE_BATCH_QUERY_ACTION,
    SECURE_QUERY_ACTION,
)

#: Obligation handler: receives the obligation and the request, performs
#: the action, returns True when fulfilled.
ObligationHandler = Callable[[Obligation, RequestContext], bool]

#: Revocation guard: consulted before any decision (cached or fresh) is
#: served; returns a denial reason when the request hits revoked state,
#: None to let enforcement proceed.  Installed by
#: :meth:`repro.revocation.coherence.CoherenceAgent.protect_pep`.
RevocationGuard = Callable[[RequestContext], Optional[str]]


@dataclass
class PepConfig:
    #: Decision cache TTL in simulated seconds; 0 disables the cache.
    decision_cache_ttl: float = 0.0
    decision_cache_capacity: int = 10_000
    #: Sign queries / verify response signatures (mutual authentication).
    secure_channel: bool = False
    #: Deny when no decision can be obtained (fail-safe); False would
    #: fail open, which no experiment enables but tests cover.
    deny_on_failure: bool = True
    #: RPC deadline towards the PDP.
    pdp_timeout: float = 2.0


@dataclass(frozen=True)
class EnforcementResult:
    """What enforcement concluded, and why."""

    decision: Decision
    source: str  # "pdp" | "cache" | "capability" | "fail-safe" | "obligation"
    obligations: tuple[Obligation, ...] = ()
    status: Optional[Status] = None
    detail: str = ""

    @property
    def granted(self) -> bool:
        return self.decision is Decision.PERMIT


class PolicyEnforcementPoint(Component):
    """Network-attached PEP guarding one or more resources."""

    def __init__(
        self,
        name: str,
        network: Network,
        domain: str = "",
        identity: Optional[ComponentIdentity] = None,
        pdp_address: Optional[str] = None,
        config: Optional[PepConfig] = None,
        pdp_selector: Optional[Callable[[], Optional[str]]] = None,
    ) -> None:
        super().__init__(name, network, domain, identity)
        self.config = config if config is not None else PepConfig()
        self.pdp_address = pdp_address
        #: Dynamic PDP selection hook (discovery, replication router).
        self.pdp_selector = pdp_selector
        #: Replica load-balancer with failover; set directly or via
        #: :meth:`enable_batching`.  When present it owns PDP selection
        #: for every query path (single, batch, coalesced).
        self.dispatcher: Optional[DecisionDispatcher] = None
        #: Client-side coalescing queue (see :meth:`enable_batching`).
        self.coalescer: Optional[CoalescingDecisionQueue] = None
        self.decision_cache: TtlCache = TtlCache(
            ttl=self.config.decision_cache_ttl,
            clock=lambda: self.now,
            capacity=self.config.decision_cache_capacity,
        )
        self._obligation_handlers: dict[str, ObligationHandler] = {}
        #: Optional revocation coherence hook (see repro.revocation).
        self.revocation_guard: Optional[RevocationGuard] = None
        self.enforcements = 0
        self.grants = 0
        self.denials = 0
        self.fail_safe_denials = 0
        self.obligation_failures = 0
        self.revocation_denials = 0

    # -- obligations --------------------------------------------------------------

    def register_obligation_handler(
        self, obligation_id: str, handler: ObligationHandler
    ) -> None:
        self._obligation_handlers[obligation_id] = handler

    def _fulfil_obligations(
        self, obligations: tuple[Obligation, ...], request: RequestContext
    ) -> Optional[str]:
        """Run handlers; returns an error string when enforcement must deny."""
        for obligation in obligations:
            handler = self._obligation_handlers.get(obligation.obligation_id)
            if handler is None:
                return (
                    f"obligation {obligation.obligation_id!r} not understood"
                )
            if not handler(obligation, request):
                return f"obligation {obligation.obligation_id!r} failed"
        return None

    # -- the decision query (pull model) ----------------------------------------------

    def _choose_pdp(self) -> Optional[str]:
        if self.dispatcher is not None:
            chosen = self.dispatcher.select()
            if chosen is not None:
                return chosen
        if self.pdp_selector is not None:
            chosen = self.pdp_selector()
            if chosen is not None:
                return chosen
        return self.pdp_address

    def _secure_payload(self, action: str, body_xml: str) -> SoapEnvelope:
        if self.identity is None:
            raise ValueError(f"PEP {self.name} has no identity for secure mode")
        envelope = SoapEnvelope(action=action, body_xml=body_xml)
        return secure_envelope(
            envelope,
            self.identity.keypair,
            self.identity.certificate,
            self.identity.keystore,
        )

    def _verify_reply_body(self, reply: Message, pdp: str) -> str:
        """Verify a secure reply envelope came from ``pdp``; return its body."""
        reply_envelope = reply.payload
        if not isinstance(reply_envelope, SoapEnvelope):
            raise RpcFault("pep:bad-reply", "PDP returned non-SOAP payload")
        clear = verify_envelope(
            reply_envelope,
            self.identity.keystore,
            self.identity.validator,
            decrypt_with=self.identity.keypair,
            config=SecurityConfig(require_signature=True),
            at=self.now,
        )
        if signer_of(clear) != pdp:
            raise WsSecurityError(
                f"decision signed by {signer_of(clear)!r}, expected {pdp!r}"
            )
        return clear.body_xml

    def _exchange(self, action: str, payload) -> tuple[Message, str]:
        """One decision round-trip: dispatcher failover or the single PDP."""
        if self.dispatcher is not None:
            return self.dispatcher.dispatch(
                self, action, payload, timeout=self.config.pdp_timeout
            )
        pdp = self._choose_pdp()
        if pdp is None:
            raise RpcTimeout(self.name, "<none>", "no PDP configured", self.now)
        reply = self.call(pdp, action, payload, timeout=self.config.pdp_timeout)
        return reply, pdp

    def _query_pdp(self, request: RequestContext) -> XacmlAuthzDecisionStatement:
        query = XacmlAuthzDecisionQuery(
            request=request, issuer=self.name, issue_instant=self.now
        )
        if self.config.secure_channel:
            payload = self._secure_payload(SECURE_QUERY_ACTION, query.to_xml())
            reply, pdp = self._exchange(SECURE_QUERY_ACTION, payload)
            return XacmlAuthzDecisionStatement.from_xml(
                self._verify_reply_body(reply, pdp)
            )
        reply, _ = self._exchange(QUERY_ACTION, query.to_xml())
        return XacmlAuthzDecisionStatement.from_xml(str(reply.payload))

    # -- batched decision queries ------------------------------------------------------

    def _build_batch_query(
        self, requests: list[RequestContext]
    ) -> tuple[str, object, XacmlAuthzDecisionBatchQuery]:
        """Build the wire form of a batch query: (action, payload, query).

        On the secure channel the whole batch rides under one
        WS-Security signature — the per-envelope amortisation the
        decision fabric exists for.
        """
        batch = XacmlAuthzDecisionBatchQuery.for_requests(
            requests, issuer=self.name, issue_instant=self.now
        )
        if self.config.secure_channel:
            payload = self._secure_payload(
                SECURE_BATCH_QUERY_ACTION, batch.to_xml()
            )
            return SECURE_BATCH_QUERY_ACTION, payload, batch
        return BATCH_QUERY_ACTION, batch.to_xml(), batch

    def _parse_batch_reply(
        self, reply: Message, pdp: str
    ) -> XacmlAuthzDecisionBatchStatement:
        if self.config.secure_channel:
            return XacmlAuthzDecisionBatchStatement.from_xml(
                self._verify_reply_body(reply, pdp)
            )
        return XacmlAuthzDecisionBatchStatement.from_xml(str(reply.payload))

    def _query_pdp_batch(
        self, requests: list[RequestContext]
    ) -> XacmlAuthzDecisionBatchStatement:
        action, payload, batch = self._build_batch_query(requests)
        reply, pdp = self._exchange(action, payload)
        statement_batch = self._parse_batch_reply(reply, pdp)
        if statement_batch.in_response_to != batch.batch_id:
            raise RpcFault(
                "pep:bad-reply",
                f"reply answers {statement_batch.in_response_to!r}, "
                f"expected {batch.batch_id!r}",
            )
        if len(statement_batch.statements) != len(requests):
            raise RpcFault(
                "pep:bad-reply",
                f"{len(statement_batch.statements)} statements for "
                f"{len(requests)} requests",
            )
        return statement_batch

    def enable_batching(
        self,
        max_batch: int = 16,
        max_delay: float = 0.002,
        dispatcher: Optional[DecisionDispatcher] = None,
        gateway=None,
    ) -> CoalescingDecisionQueue:
        """Attach the coalescing queue (and a dispatcher or gateway).

        Afterwards :meth:`submit` feeds the queue; the synchronous
        :meth:`authorize` / :meth:`authorize_batch` paths keep working
        and also route through the dispatcher when one is given.  With a
        :class:`~repro.components.fabric.DomainDecisionGateway` the
        queue's flushes hand off to the domain's shared aggregation
        point instead of sending per-PEP envelopes; the gateway owns
        replica dispatch for that traffic.
        """
        if dispatcher is not None:
            self.dispatcher = dispatcher
        self.coalescer = CoalescingDecisionQueue(
            self,
            max_batch=max_batch,
            max_delay=max_delay,
            dispatcher=self.dispatcher,
            gateway=gateway,
        )
        return self.coalescer

    def submit(self, request: RequestContext, callback) -> bool:
        """Asynchronous enforcement through the coalescing queue.

        The callback receives this request's :class:`EnforcementResult`
        once the (possibly batched, possibly deduplicated) decision
        lands.  Requires :meth:`enable_batching` first.
        """
        if self.coalescer is None:
            raise ValueError(
                f"PEP {self.name} has no coalescing queue; "
                "call enable_batching() first"
            )
        return self.coalescer.submit(request, callback)

    # -- enforcement ----------------------------------------------------------------

    def _pre_decision(
        self, request: RequestContext, cache_key: tuple
    ) -> Optional[EnforcementResult]:
        """Guard + cache front of every path; None means 'ask a PDP'."""
        if self.revocation_guard is not None:
            reason = self.revocation_guard(request)
            if reason is not None:
                self.revocation_denials += 1
                self.denials += 1
                return EnforcementResult(
                    decision=Decision.DENY,
                    source="revocation",
                    detail=reason,
                )
        cached = self.decision_cache.get(cache_key)
        if cached is not None:
            return self._enforce(
                cached.response.decision,
                tuple(cached.response.result.obligations),
                request,
                source="cache",
            )
        return None

    def _fail_safe_result(self, exc: Exception) -> EnforcementResult:
        self.fail_safe_denials += 1
        self.denials += 1
        return EnforcementResult(
            decision=Decision.DENY,
            source="fail-safe",
            status=Status(code=StatusCode.PROCESSING_ERROR, message=str(exc)),
            detail=f"fail-safe deny: {exc}",
        )

    def authorize(self, request: RequestContext) -> EnforcementResult:
        """Full pull-model enforcement of one access request."""
        self.enforcements += 1
        tracer = self.network.tracer
        trace = tracer.begin_decision(self, request) if tracer.enabled else None
        if trace is not None:
            # A blocking RPC has no queue/batch/demux phases: record a
            # single span covering the whole call.
            trace.set("sync", True)
            trace.set("path", "authorize")
        result = self._authorize_inner(request)
        if trace is not None:
            tracer.finish_decision(
                trace,
                self,
                granted=result.granted,
                decision=str(result.decision),
                source=result.source,
            )
        return result

    def _authorize_inner(self, request: RequestContext) -> EnforcementResult:
        cache_key = request.cache_key()
        immediate = self._pre_decision(request, cache_key)
        if immediate is not None:
            return immediate
        try:
            statement = self._query_pdp(request)
        except (RpcTimeout, RpcFault, WsSecurityError) as exc:
            if self.config.deny_on_failure:
                return self._fail_safe_result(exc)
            raise
        self.decision_cache.put(cache_key, statement)
        return self._enforce(
            statement.response.decision,
            tuple(statement.response.result.obligations),
            request,
            source="pdp",
        )

    def authorize_batch(
        self, requests: list[RequestContext]
    ) -> list[EnforcementResult]:
        """Synchronous batched enforcement of N requests, in order.

        Guard checks and cache hits resolve locally; the remaining
        *unique* misses travel as one batch decision query (one
        round-trip, one signature in secure mode).  Each request still
        gets its own enforcement — obligations run per waiter, and
        counters advance exactly as if :meth:`authorize` had been called
        N times.
        """
        self.enforcements += len(requests)
        results: list[Optional[EnforcementResult]] = [None] * len(requests)
        miss_order: list[tuple[tuple, RequestContext]] = []
        miss_indices: dict[tuple, list[int]] = {}
        for index, request in enumerate(requests):
            key = request.cache_key()
            immediate = self._pre_decision(request, key)
            if immediate is not None:
                results[index] = immediate
                continue
            waiters = miss_indices.get(key)
            if waiters is None:
                miss_indices[key] = [index]
                miss_order.append((key, request))
            else:
                waiters.append(index)
        if miss_order:
            try:
                statement_batch = self._query_pdp_batch(
                    [request for _, request in miss_order]
                )
            except (RpcTimeout, RpcFault, WsSecurityError) as exc:
                if not self.config.deny_on_failure:
                    raise
                for waiters in miss_indices.values():
                    for index in waiters:
                        results[index] = self._fail_safe_result(exc)
            else:
                for (key, request), statement in zip(
                    miss_order, statement_batch.statements, strict=False
                ):
                    self.decision_cache.put(key, statement)
                    for index in miss_indices[key]:
                        results[index] = self._enforce(
                            statement.response.decision,
                            tuple(statement.response.result.obligations),
                            requests[index],
                            source="pdp",
                        )
        tracer = self.network.tracer
        if tracer.enabled:
            for request, result in zip(requests, results, strict=True):
                tracer.sync_decision(
                    self, request, result, path="authorize_batch"
                )
        return results  # type: ignore[return-value]

    def _enforce(
        self,
        decision: Decision,
        obligations: tuple[Obligation, ...],
        request: RequestContext,
        source: str,
    ) -> EnforcementResult:
        if decision is Decision.PERMIT:
            error = self._fulfil_obligations(obligations, request)
            if error is not None:
                self.obligation_failures += 1
                self.denials += 1
                return EnforcementResult(
                    decision=Decision.DENY,
                    source="obligation",
                    obligations=obligations,
                    detail=error,
                )
            self.grants += 1
            return EnforcementResult(
                decision=Decision.PERMIT, source=source, obligations=obligations
            )
        # Deny-side obligations still run (e.g. audit-on-deny), but cannot
        # rescue the decision.
        if decision is Decision.DENY:
            self._fulfil_obligations(obligations, request)
        self.denials += 1
        return EnforcementResult(
            decision=Decision.DENY if decision is Decision.DENY else decision,
            source=source,
            obligations=obligations,
        )

    def authorize_simple(
        self, subject_id: str, resource_id: str, action_id: str
    ) -> EnforcementResult:
        return self.authorize(
            RequestContext.simple(subject_id, resource_id, action_id)
        )

    def invalidate_cached_decisions(self) -> None:
        """Drop all cached decisions (e.g. after a known policy change)."""
        self.decision_cache.clear()

    def invalidate_decisions_for(
        self,
        subject_id: Optional[str] = None,
        resource_id: Optional[str] = None,
    ) -> int:
        """Selectively drop cached decisions touching a subject/resource.

        This is the precise form of coherence a revocation event needs:
        revoking one subject's rights must not cost every other cached
        decision (paper §3.2 pits caching against revocation
        flexibility).  With both filters given, entries matching *either*
        are dropped.  Returns the number of entries invalidated.
        """
        if subject_id is None and resource_id is None:
            return 0
        return self.decision_cache.invalidate_where(
            lambda key: cache_key_touches(
                key, subject_id=subject_id, resource_id=resource_id
            )
        )

    # -- revocation push (paper §3.2: caching vs revocation flexibility) ---------

    def subscribe_to_policy_changes(self, pap_address: str) -> None:
        """Subscribe to PAP change notifications; invalidate cache on each.

        This is the mitigation beyond TTLs for the staleness problem the
        paper describes: revocations reach cached decisions immediately at
        the cost of one notification message per change per PEP
        (experiment E6's 'TTL + invalidation push' row).
        """
        self.invalidations_received = getattr(self, "invalidations_received", 0)
        self.on("pap.changed", self._handle_policy_changed)
        self.call(pap_address, "pap.subscribe", "<Subscribe/>")

    def _handle_policy_changed(self, message) -> None:
        self.invalidations_received = getattr(self, "invalidations_received", 0) + 1
        self.decision_cache.clear()
        return None
