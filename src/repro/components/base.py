"""Component base: network-attached services with RPC and identity.

Every authorisation component (PEP, PDP, PAP, PIP, capability service,
registry front-ends) is a :class:`Component`: a named endpoint on the
simulated network that registers operation handlers by message kind and
can issue synchronous RPCs to peers.

RPC is synchronous *in simulated time*: the caller drives the shared
event loop until the reply lands or the deadline passes.  A handler may
itself issue nested RPCs (PDP → PIP during evaluation) — re-entrancy is
safe because there is a single deterministic event queue.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..simnet.message import Message
from ..simnet.network import Network, Node
from ..wss.keys import KeyPair, KeyStore
from ..wss.pki import Certificate, TrustValidator
from ..wsvc.soap import SoapEnvelope

#: Default RPC deadline in simulated seconds.
DEFAULT_TIMEOUT = 2.0


class RpcTimeout(Exception):
    """The peer did not answer before the deadline (crash/partition)."""

    def __init__(self, caller: str, callee: str, kind: str, deadline: float) -> None:
        super().__init__(
            f"{caller} -> {callee} {kind!r}: no reply by t={deadline:.3f}"
        )
        self.callee = callee
        self.kind = kind


class RpcFault(Exception):
    """The peer answered with an application-level fault."""

    def __init__(self, code: str, reason: str) -> None:
        super().__init__(f"{code}: {reason}")
        self.code = code
        self.reason = reason


@dataclass(frozen=True)
class ComponentIdentity:
    """Key material and trust configuration of one component."""

    name: str
    keypair: KeyPair
    certificate: Certificate
    keystore: KeyStore
    validator: TrustValidator


Handler = Callable[[Message], Any]


class Component:
    """Base class for network-attached authorisation components.

    Args:
        name: unique component name; doubles as the network address.
        network: the shared simulated network.
        domain: owning administrative domain name ("" for global infra).
        identity: key material; None runs the component unauthenticated
            (used by tests and by experiments isolating protocol costs).
    """

    def __init__(
        self,
        name: str,
        network: Network,
        domain: str = "",
        identity: Optional[ComponentIdentity] = None,
    ) -> None:
        self.name = name
        self.network = network
        self.domain = domain
        self.identity = identity
        self.node: Node = network.node(name)
        self.node.on_message(self._dispatch)
        self._handlers: dict[str, Handler] = {}
        self._pending: dict[int, list[Message]] = {}
        self._rpc_ids = itertools.count(1)
        # Liveness probe used by heartbeat monitors and health probers.
        self.on("ping", lambda message: "<Pong/>")

    # -- lifecycle -----------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self.node.alive

    def crash(self) -> None:
        self.node.crash()

    def recover(self) -> None:
        self.node.recover()

    @property
    def now(self) -> float:
        return self.network.now

    # -- server side ---------------------------------------------------------

    def on(self, kind: str, handler: Handler) -> None:
        """Register a handler for inbound messages of ``kind``.

        The handler's return value, if not None, is sent back as a reply
        of kind ``f"{kind}:response"``.  Raising :class:`RpcFault` sends a
        fault reply instead.
        """
        self._handlers[kind] = handler

    def _dispatch(self, message: Message) -> None:
        if message.reply_to is not None and message.reply_to in self._pending:
            self._pending[message.reply_to].append(message)
            return
        handler = self._handlers.get(message.kind)
        if handler is None:
            return  # unknown operation: drop, like an unbound SOAP action
        try:
            result = handler(message)
        except RpcFault as fault:
            self.node.send(
                message.reply(
                    kind=f"{message.kind}:fault",
                    payload=f"<Fault code=\"{fault.code}\">{fault.reason}</Fault>",
                )
            )
            return
        if result is not None:
            self.node.send(message.reply(kind=f"{message.kind}:response", payload=result))

    # -- client side -----------------------------------------------------------

    def call(
        self,
        recipient: str,
        kind: str,
        payload: Any,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> Message:
        """Synchronous RPC: send, then drive the loop until reply/deadline.

        Raises:
            RpcTimeout: no reply before the deadline.
            RpcFault: the peer replied with a fault.
        """
        request = Message(
            sender=self.name, recipient=recipient, kind=kind, payload=payload
        )
        slot: list[Message] = []
        self._pending[request.msg_id] = slot
        deadline = self.now + timeout
        try:
            self.node.send(request)
            arrived = self.network.loop.run_until(lambda: bool(slot), deadline)
            if not arrived:
                raise RpcTimeout(self.name, recipient, kind, deadline)
        finally:
            self._pending.pop(request.msg_id, None)
        reply = slot[0]
        if reply.kind.endswith(":fault"):
            code, reason = _parse_fault(str(reply.payload))
            raise RpcFault(code, reason)
        return reply

    def notify(self, recipient: str, kind: str, payload: Any) -> None:
        """One-way message; no reply expected."""
        self.node.send(
            Message(sender=self.name, recipient=recipient, kind=kind, payload=payload)
        )

    # -- envelope helpers --------------------------------------------------------

    def call_soap(
        self,
        recipient: str,
        envelope: SoapEnvelope,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> SoapEnvelope:
        """RPC carrying a SOAP envelope; returns the reply envelope."""
        reply = self.call(recipient, envelope.action, envelope, timeout)
        payload = reply.payload
        if not isinstance(payload, SoapEnvelope):
            raise RpcFault("soap:Receiver", "peer returned a non-SOAP payload")
        if payload.is_fault:
            code, reason = _parse_soap_fault(payload.body_xml)
            raise RpcFault(code, reason)
        return payload

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"{type(self).__name__}({self.name}, {state})"


def _parse_fault(payload: str) -> tuple[str, str]:
    import re

    match = re.match(r"<Fault code=\"([^\"]*)\">(.*)</Fault>$", payload, re.DOTALL)
    if match is None:
        return ("unknown", payload)
    return (match.group(1), match.group(2))


def _parse_soap_fault(body_xml: str) -> tuple[str, str]:
    import re

    code = re.search(r"<soap:Value>([^<]*)</soap:Value>", body_xml)
    reason = re.search(r"<soap:Text>([^<]*)</soap:Text>", body_xml)
    return (
        code.group(1) if code else "soap:Receiver",
        reason.group(1) if reason else "unspecified fault",
    )
