"""Administrative delegation (XACML Administration & Delegation profile).

Paper §3.2: "A centralised administrative policy is not sufficient for
multi-domain computing environments as collaborating parties may not
agree upon a single authority to grant and revoke authorisation rights
... each domain has its own administrative policy and defines how much of
its access control decision making process should be delegated to other
domains.  When such access is delegated to other domains then those
domains may or may not be able to delegate it further."

The profile's central operation is **reduction**: a policy published by a
non-root issuer is only effective if an unbroken chain of administrative
grants connects a trusted root authority to that issuer, each hop
covering the policy's scope and carrying the right to re-delegate.
:class:`DelegationRegistry` implements grants, reduction (with work
counters for experiment E12) and revocation with its documented cascade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..xacml.policy import Policy, PolicySet

PolicyElement = Union[Policy, PolicySet]


class DelegationError(Exception):
    """Raised on unauthorised grants or malformed scopes."""


@dataclass(frozen=True)
class Scope:
    """What a grant covers: resource and action, '*' meaning any."""

    resource_id: str = "*"
    action_id: str = "*"

    def covers(self, other: "Scope") -> bool:
        resource_ok = self.resource_id == "*" or self.resource_id == other.resource_id
        action_ok = self.action_id == "*" or self.action_id == other.action_id
        return resource_ok and action_ok

    def __str__(self) -> str:
        return f"{self.action_id}@{self.resource_id}"


@dataclass(frozen=True)
class AdminGrant:
    """One administrative delegation edge.

    ``max_depth`` bounds further delegation: 0 means the delegate may
    publish policies but not re-delegate; k > 0 lets the delegate issue
    grants with max_depth up to k-1.
    """

    delegator: str
    delegate: str
    scope: Scope
    max_depth: int = 0
    granted_at: float = 0.0


@dataclass
class ReductionResult:
    """Outcome of a reduction walk."""

    valid: bool
    chain: list[AdminGrant] = field(default_factory=list)
    steps_examined: int = 0
    reason: str = ""

    @property
    def depth(self) -> int:
        return len(self.chain)


class DelegationRegistry:
    """Grants, reduction and revocation for one trust domain (or VO)."""

    def __init__(self, roots: Optional[set[str]] = None) -> None:
        #: Authorities trusted unconditionally (e.g. each domain's PAP
        #: administrator, or the VO authority).
        self.roots: set[str] = set(roots or ())
        self._grants: list[AdminGrant] = []
        self.reductions_performed = 0
        self.total_steps = 0
        #: Optional unified revocation registry (duck-typed; see
        #: repro.revocation): bound, every withdrawn grant is recorded
        #: there, giving revoked delegations a propagation path.
        self._revocation_registry = None

    def add_root(self, authority: str) -> None:
        self.roots.add(authority)

    def bind_revocation_registry(self, registry) -> None:
        self._revocation_registry = registry

    def grant(
        self,
        delegator: str,
        delegate: str,
        scope: Scope,
        max_depth: int = 0,
        at: float = 0.0,
    ) -> AdminGrant:
        """Record a delegation; the delegator must itself hold the right.

        A root may always grant.  A non-root delegator must pass reduction
        for the scope with remaining delegation depth > 0.
        """
        if delegator not in self.roots:
            reduction = self.reduce(delegator, scope, require_delegation_right=True)
            if not reduction.valid:
                raise DelegationError(
                    f"{delegator!r} may not delegate {scope}: {reduction.reason}"
                )
        grant = AdminGrant(
            delegator=delegator,
            delegate=delegate,
            scope=scope,
            max_depth=max_depth,
            granted_at=at,
        )
        self._grants.append(grant)
        return grant

    def revoke(self, delegator: str, delegate: str, scope: Scope) -> int:
        """Remove matching grants.  Downstream grants die implicitly:
        reduction re-walks chains, so anything that depended on the
        removed edge stops reducing — the cascade the paper asks for."""
        victims = [
            g
            for g in self._grants
            if g.delegator == delegator
            and g.delegate == delegate
            and g.scope == scope
        ]
        for victim in victims:
            self._grants.remove(victim)
        if victims and self._revocation_registry is not None:
            self._revocation_registry.revoke_delegation(
                delegator, delegate, str(scope)
            )
        return len(victims)

    def grants_to(self, delegate: str) -> list[AdminGrant]:
        return [g for g in self._grants if g.delegate == delegate]

    def grants(self) -> list[AdminGrant]:
        return list(self._grants)

    # -- reduction ---------------------------------------------------------------

    def reduce(
        self,
        issuer: str,
        scope: Scope,
        require_delegation_right: bool = False,
    ) -> ReductionResult:
        """Walk grants from ``issuer`` back to a root covering ``scope``.

        Args:
            require_delegation_right: when True, the chain must leave the
                issuer with remaining depth > 0 (i.e. the issuer may
                *re-delegate*, not merely publish).

        The walk is a BFS over incoming grants; each visited grant counts
        one step (reported to E12).
        """
        self.reductions_performed += 1
        result = ReductionResult(valid=False)
        if issuer in self.roots:
            result.valid = True
            result.reason = "issuer is a root authority"
            return result
        # State: (authority, min remaining depth along path, chain so far).
        frontier: list[tuple[str, list[AdminGrant]]] = [(issuer, [])]
        visited: set[str] = {issuer}
        while frontier:
            current, chain = frontier.pop(0)
            for grant in self._grants:
                if grant.delegate != current or not grant.scope.covers(scope):
                    continue
                result.steps_examined += 1
                new_chain = chain + [grant]
                # Depth feasibility: hop i from the end must allow i more
                # delegations; the grant closest to the issuer needs
                # max_depth >= (hops below it) (+1 with delegation right).
                needed = len(chain) + (1 if require_delegation_right else 0)
                if grant.max_depth < needed:
                    continue
                if grant.delegator in self.roots:
                    result.valid = True
                    result.chain = list(reversed(new_chain))
                    result.reason = "chain reduces to root"
                    self.total_steps += result.steps_examined
                    return result
                if grant.delegator not in visited:
                    visited.add(grant.delegator)
                    frontier.append((grant.delegator, new_chain))
        result.reason = f"no grant chain from a root to {issuer!r} covers {scope}"
        self.total_steps += result.steps_examined
        return result

    # -- PAP integration --------------------------------------------------------------

    def policy_scope(self, element: PolicyElement) -> Scope:
        """Best-effort scope extraction from a policy's target literals."""
        from ..xacml.attributes import (
            ACTION_ID,
            Category,
            RESOURCE_ID,
        )

        keys = element.target.literal_equality_keys()
        resources = keys.get((Category.RESOURCE, RESOURCE_ID), set())
        actions = keys.get((Category.ACTION, ACTION_ID), set())
        return Scope(
            resource_id=next(iter(resources)) if len(resources) == 1 else "*",
            action_id=next(iter(actions)) if len(actions) == 1 else "*",
        )

    def pap_guard(self, operation: str, requester: str, policy_id: str) -> bool:
        """Guard callable for :class:`PolicyAdministrationPoint`.

        Publish/withdraw require the requester to reduce for a wildcard
        scope (the PAP does not know the policy body at guard time; the
        stricter per-scope check is applied by :func:`validate_issued`).
        """
        if requester in self.roots:
            return True
        return self.reduce(requester, Scope()).valid

    def validate_issued(self, element: PolicyElement) -> ReductionResult:
        """Reduce a policy's *issuer* against the policy's own scope.

        Policies without an issuer are treated as root-published (the
        profile's "trusted policies").
        """
        if element.issuer is None:
            return ReductionResult(valid=True, reason="trusted (no issuer)")
        return self.reduce(element.issuer, self.policy_scope(element))


def effective_policies(
    registry: DelegationRegistry, elements: list[PolicyElement]
) -> tuple[list[PolicyElement], list[tuple[PolicyElement, str]]]:
    """Split policies into (effective, rejected-with-reason) by reduction."""
    effective: list[PolicyElement] = []
    rejected: list[tuple[PolicyElement, str]] = []
    for element in elements:
        result = registry.validate_issued(element)
        if result.valid:
            effective.append(element)
        else:
            rejected.append((element, result.reason))
    return effective, rejected
