"""Policy conflict analysis: static detection and runtime meta-policies.

Paper §3.1 distinguishes two conflict classes:

* **modality conflicts** — "a positive and negative policy with the same
  subjects, targets and actions" — detectable *before deployment* by
  static analysis that "enumerates all {subject, action, target} tuples
  which have a different set of applicable policies";
* **application-specific conflicts** — e.g. Separation of Duty — "usually
  visible only at runtime once all policies are deployed", handled by
  *meta-policies* "that contain application specific constraints on other
  access control policies".

Experiment E8 runs the static analyser over generated policy corpora,
checks which conflicts each XACML combining algorithm resolves and shows
the wall/SoD cases that only the runtime meta-policy engine catches.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterable, Optional, Protocol, Union

from ..models.chinese_wall import ChineseWallEngine
from ..xacml.attributes import ACTION_ID, Category, RESOURCE_ID, SUBJECT_ID
from ..xacml.context import Decision, RequestContext
from ..xacml.policy import Policy, PolicySet
from ..xacml.rules import Rule

PolicyElement = Union[Policy, PolicySet]


# -- static modality-conflict analysis --------------------------------------------------


@dataclass(frozen=True)
class RuleFootprint:
    """Literal constraint sets of one rule (None = unconstrained)."""

    policy_id: str
    rule_id: str
    effect: Decision
    subjects: Optional[frozenset[str]]
    resources: Optional[frozenset[str]]
    actions: Optional[frozenset[str]]
    has_condition: bool

    def overlaps(self, other: "RuleFootprint") -> bool:
        return (
            _sets_intersect(self.subjects, other.subjects)
            and _sets_intersect(self.resources, other.resources)
            and _sets_intersect(self.actions, other.actions)
        )


def _sets_intersect(
    a: Optional[frozenset[str]], b: Optional[frozenset[str]]
) -> bool:
    if a is None or b is None:
        return True  # unconstrained intersects everything
    return bool(a & b)


@dataclass(frozen=True)
class ConflictFinding:
    """A potential or actual modality conflict between two rules."""

    a: RuleFootprint
    b: RuleFootprint
    #: 'actual' when neither rule has a condition (the contradiction is
    #: unconditional); 'potential' when a condition might separate them.
    kind: str

    def describe(self) -> str:
        return (
            f"{self.kind}: {self.a.policy_id}/{self.a.rule_id} "
            f"({self.a.effect.value}) vs {self.b.policy_id}/{self.b.rule_id} "
            f"({self.b.effect.value})"
        )


def _footprint(policy: Policy, rule: Rule) -> RuleFootprint:
    def extract(target, category, attribute_id) -> Optional[frozenset[str]]:
        keys = target.literal_equality_keys()
        values = keys.get((category, attribute_id))
        return frozenset(values) if values else None

    def merged(category, attribute_id) -> Optional[frozenset[str]]:
        from_policy = extract(policy.target, category, attribute_id)
        from_rule = extract(rule.target, category, attribute_id)
        if from_policy is None:
            return from_rule
        if from_rule is None:
            return from_policy
        return from_policy & from_rule

    return RuleFootprint(
        policy_id=policy.policy_id,
        rule_id=rule.rule_id,
        effect=rule.effect,
        subjects=merged(Category.SUBJECT, SUBJECT_ID),
        resources=merged(Category.RESOURCE, RESOURCE_ID),
        actions=merged(Category.ACTION, ACTION_ID),
        has_condition=rule.condition is not None,
    )


def footprints(elements: Iterable[PolicyElement]) -> list[RuleFootprint]:
    out: list[RuleFootprint] = []
    for element in elements:
        policies = [element] if isinstance(element, Policy) else element.flatten()
        for policy in policies:
            for rule in policy.rules:
                out.append(_footprint(policy, rule))
    return out


def find_modality_conflicts(
    elements: Iterable[PolicyElement],
) -> list[ConflictFinding]:
    """Static analysis: all pairs of opposite-effect overlapping rules.

    Follows the paper's procedure: enumerate footprints, flag pairs where
    a Permit and a Deny share at least one {subject, action, target}
    tuple.  Unconditional pairs are *actual* conflicts; conditioned pairs
    are *potential* (the runtime condition may disambiguate).
    """
    prints = footprints(elements)
    findings: list[ConflictFinding] = []
    for i, a in enumerate(prints):
        for b in prints[i + 1 :]:
            if a.effect is b.effect:
                continue
            if not a.overlaps(b):
                continue
            kind = (
                "actual"
                if not a.has_condition and not b.has_condition
                else "potential"
            )
            findings.append(ConflictFinding(a=a, b=b, kind=kind))
    return findings


# -- runtime meta-policies ------------------------------------------------------------------


@dataclass(frozen=True)
class Veto:
    """A meta-policy objection to an otherwise-permitted request."""

    meta_policy: str
    reason: str


class MetaPolicy(Protocol):
    """Application-specific constraint evaluated at enforcement time."""

    name: str

    def check(self, request: RequestContext, at: float) -> Optional[Veto]: ...

    def record_grant(self, request: RequestContext, at: float) -> None: ...


@dataclass
class SeparationOfDutyMetaPolicy:
    """Dynamic SoD over resources: one subject must not touch two
    resources of the same exclusive set (paper §3.1's in-domain case)."""

    name: str
    exclusive_sets: list[frozenset[str]]
    _history: dict[str, set[str]] = field(default_factory=dict)

    def check(self, request: RequestContext, at: float) -> Optional[Veto]:
        subject = request.subject_id or ""
        resource = request.resource_id or ""
        touched = self._history.get(subject, set())
        for exclusive in self.exclusive_sets:
            if resource in exclusive:
                clashes = (touched & exclusive) - {resource}
                if clashes:
                    return Veto(
                        meta_policy=self.name,
                        reason=(
                            f"SoD: {subject!r} already used "
                            f"{sorted(clashes)[0]!r} from the same duty set"
                        ),
                    )
        return None

    def record_grant(self, request: RequestContext, at: float) -> None:
        subject = request.subject_id or ""
        resource = request.resource_id or ""
        self._history.setdefault(subject, set()).add(resource)


@dataclass
class ChineseWallMetaPolicy:
    """VO-wide conflict-of-interest wall (paper §3.1's cross-domain case)."""

    name: str
    engine: ChineseWallEngine

    def check(self, request: RequestContext, at: float) -> Optional[Veto]:
        subject = request.subject_id or ""
        resource = request.resource_id or ""
        try:
            permitted = self.engine.permitted(subject, resource)
        except Exception:
            return None  # resources outside the wall are unconstrained
        if not permitted:
            self.engine.vetoes += 1
            committed = self.engine.commitments_of(subject)
            return Veto(
                meta_policy=self.name,
                reason=(
                    f"Chinese wall: {subject!r} is committed to "
                    f"{sorted(committed.values())} in this conflict class"
                ),
            )
        return None

    def record_grant(self, request: RequestContext, at: float) -> None:
        subject = request.subject_id or ""
        resource = request.resource_id or ""
        with contextlib.suppress(Exception):
            self.engine.record_access(subject, resource, at)


class MetaPolicyEngine:
    """Runs a stack of meta-policies around base decisions.

    Wire into enforcement: after the base PDP permits, ``check_all``
    either returns a veto (enforce Deny) or None (record and proceed).
    """

    def __init__(self) -> None:
        self._policies: list[MetaPolicy] = []
        self.vetoes_issued = 0

    def add(self, policy: MetaPolicy) -> None:
        self._policies.append(policy)

    def check_all(self, request: RequestContext, at: float) -> Optional[Veto]:
        for policy in self._policies:
            veto = policy.check(request, at)
            if veto is not None:
                self.vetoes_issued += 1
                return veto
        return None

    def record_grant(self, request: RequestContext, at: float) -> None:
        for policy in self._policies:
            policy.record_grant(request, at)

    def guard_decision(
        self, base_decision: Decision, request: RequestContext, at: float
    ) -> tuple[Decision, Optional[Veto]]:
        """Combine a base decision with the meta-policy stack."""
        if base_decision is not Decision.PERMIT:
            return base_decision, None
        veto = self.check_all(request, at)
        if veto is not None:
            return Decision.DENY, veto
        self.record_grant(request, at)
        return Decision.PERMIT, None
