"""Policy syndication: the PAP hierarchy of paper Fig. 5.

"A global Policy Administration Point, which is managed by a central
authority, may hold a global security policy.  Such policy is then
syndicated to more local PAP components residing in different
administrative domains ... More local PAP components can incorporate all
changes or only those that are in line with constraints imposed by
authoritative bodies of those local PAPs.  Reports can be later sent back
to more global PAP components or the syndication servers.  A hierarchy of
such PAP interactions can be created."

:class:`SyndicationNode` is one node of that hierarchy: it owns (or
fronts) a PAP, subscribes children, pushes updates downward, filters them
through a local acceptance constraint and reports back upward.
Experiment E5 compares this push hierarchy against every PDP pulling from
one central PAP.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from ..components.base import Component, ComponentIdentity
from ..components.pap import PolicyAdministrationPoint
from ..simnet.message import Message
from ..simnet.network import Network
from ..xacml.parser import parse_policy
from ..xacml.policy import Policy, PolicySet, child_identifier
from ..xacml.serializer import serialize_policy

PolicyElement = Union[Policy, PolicySet]

#: Acceptance constraint: local authority's filter over incoming updates.
AcceptancePolicy = Callable[[PolicyElement], bool]


@dataclass
class SyndicationReport:
    """What a child reports back after applying an update."""

    node: str
    accepted: list[str] = field(default_factory=list)
    rejected: list[str] = field(default_factory=list)

    def to_xml(self) -> str:
        accepted = "".join(f"<Accepted id=\"{i}\"/>" for i in self.accepted)
        rejected = "".join(f"<Rejected id=\"{i}\"/>" for i in self.rejected)
        return f'<SyndicationReport node="{self.node}">{accepted}{rejected}</SyndicationReport>'

    @classmethod
    def from_xml(cls, xml_text: str) -> "SyndicationReport":
        head = re.match(r'<SyndicationReport node="([^"]*)">', xml_text)
        if head is None:
            raise ValueError("not a SyndicationReport")
        return cls(
            node=head.group(1),
            accepted=re.findall(r'<Accepted id="([^"]*)"/>', xml_text),
            rejected=re.findall(r'<Rejected id="([^"]*)"/>', xml_text),
        )


class SyndicationNode(Component):
    """One node in the Fig. 5 hierarchy.

    The root node is where the central authority publishes; interior
    nodes relay; leaf nodes apply updates into their domain-local PAP so
    in-domain PDPs fetch policies over cheap intra-domain links.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        domain: str = "",
        identity: Optional[ComponentIdentity] = None,
        local_pap: Optional[PolicyAdministrationPoint] = None,
        acceptance: Optional[AcceptancePolicy] = None,
    ) -> None:
        super().__init__(name, network, domain, identity)
        self.local_pap = local_pap
        self.acceptance = acceptance
        self.children: list[str] = []
        self.parent: Optional[str] = None
        self.updates_pushed = 0
        self.updates_applied = 0
        self.updates_rejected = 0
        self.reports_received: list[SyndicationReport] = []
        self.on("synd.update", self._handle_update)
        self.on("synd.report", self._handle_report)

    # -- topology ---------------------------------------------------------------

    def add_child(self, child: "SyndicationNode") -> None:
        self.children.append(child.name)
        child.parent = self.name

    # -- publication (root-side API) -------------------------------------------------

    def publish(self, element: PolicyElement) -> list[SyndicationReport]:
        """Publish at this node and syndicate downwards.

        Returns the reports collected from the entire subtree (depth-first,
        synchronous in simulated time).
        """
        reports = []
        applied = self._apply_locally(element)
        report = SyndicationReport(node=self.name)
        (report.accepted if applied else report.rejected).append(
            child_identifier(element)
        )
        reports.append(report)
        reports.extend(self._push_to_children(element))
        return reports

    def _apply_locally(self, element: PolicyElement) -> bool:
        if self.acceptance is not None and not self.acceptance(element):
            self.updates_rejected += 1
            return False
        if self.local_pap is not None:
            self.local_pap.repository.publish(
                element, at=self.now, publisher=f"syndication:{self.name}"
            )
        self.updates_applied += 1
        return True

    def _push_to_children(self, element: PolicyElement) -> list[SyndicationReport]:
        reports = []
        payload = serialize_policy(element)
        for child in self.children:
            self.updates_pushed += 1
            reply = self.call(child, "synd.update", payload)
            reports.extend(_parse_reports(str(reply.payload)))
        return reports

    # -- handlers ------------------------------------------------------------------------

    def _handle_update(self, message: Message) -> str:
        element = parse_policy(str(message.payload))
        applied = self._apply_locally(element)
        own = SyndicationReport(node=self.name)
        (own.accepted if applied else own.rejected).append(
            child_identifier(element)
        )
        reports = [own]
        if applied:
            reports.extend(self._push_to_children(element))
        return "".join(r.to_xml() for r in reports)

    def _handle_report(self, message: Message) -> str:
        self.reports_received.extend(_parse_reports(str(message.payload)))
        return "<Ack/>"


def _parse_reports(xml_text: str) -> list[SyndicationReport]:
    return [
        SyndicationReport.from_xml(match.group(0))
        for match in re.finditer(
            r"<SyndicationReport .*?</SyndicationReport>", xml_text, re.DOTALL
        )
    ]


def build_hierarchy(
    network: Network,
    root_name: str,
    regions: dict[str, list[PolicyAdministrationPoint]],
    acceptance_for: Optional[
        Callable[[str], Optional[AcceptancePolicy]]
    ] = None,
) -> tuple[SyndicationNode, list[SyndicationNode]]:
    """Assemble the Fig. 5 shape: root → regional servers → local PAPs.

    Args:
        regions: region name → local PAPs whose domains it serves.
        acceptance_for: optional factory giving each *leaf* node its local
            acceptance constraint.

    Returns:
        (root node, all leaf nodes).
    """
    root = SyndicationNode(root_name, network)
    leaves = []
    for region_name, paps in regions.items():
        regional = SyndicationNode(f"synd.{region_name}", network)
        root.add_child(regional)
        for pap in paps:
            acceptance = acceptance_for(pap.domain) if acceptance_for else None
            leaf = SyndicationNode(
                f"synd.{pap.name}",
                network,
                domain=pap.domain,
                local_pap=pap,
                acceptance=acceptance,
            )
            regional.add_child(leaf)
            leaves.append(leaf)
    return root, leaves
