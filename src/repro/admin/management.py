"""Policy lifecycle management and the consolidated security view.

Paper §3.2: "policy management involves many different steps including
writing, reviewing, testing, approving, issuing, combining, analyzing,
modifying, withdrawing, retrieving and enforcing authorisation policies.
Providing means of securing all those steps should be considered
mandatory" — and executives "need a way of providing a consolidated view
of the access control policy that is enforced within a computing
environment" for ISO 27k / DPA-style compliance.

:class:`PolicyLifecycleManager` is a guarded state machine over those
steps (with four-eyes separation between author and approver), and
:func:`consolidated_view` produces the auditor-facing summary across all
domains of a VO.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from ..components.pap import PolicyAdministrationPoint
from ..domain.virtual_org import VirtualOrganization
from ..xacml.policy import Policy, PolicySet, child_identifier
from ..xacml.validation import Severity, validate

PolicyElement = Union[Policy, PolicySet]


class LifecycleState(enum.Enum):
    DRAFT = "draft"
    REVIEWED = "reviewed"
    TESTED = "tested"
    APPROVED = "approved"
    ISSUED = "issued"
    WITHDRAWN = "withdrawn"


#: Legal transitions of the lifecycle state machine.
_TRANSITIONS: dict[LifecycleState, set[LifecycleState]] = {
    LifecycleState.DRAFT: {LifecycleState.REVIEWED},
    LifecycleState.REVIEWED: {LifecycleState.TESTED, LifecycleState.DRAFT},
    LifecycleState.TESTED: {LifecycleState.APPROVED, LifecycleState.DRAFT},
    LifecycleState.APPROVED: {LifecycleState.ISSUED, LifecycleState.DRAFT},
    LifecycleState.ISSUED: {LifecycleState.WITHDRAWN},
    LifecycleState.WITHDRAWN: {LifecycleState.DRAFT},
}


class LifecycleError(Exception):
    """Raised on illegal transitions or duty violations."""


@dataclass
class LifecycleEvent:
    at: float
    actor: str
    from_state: Optional[LifecycleState]
    to_state: LifecycleState
    note: str = ""


@dataclass
class ManagedPolicy:
    """A policy under lifecycle management."""

    element: PolicyElement
    author: str
    state: LifecycleState = LifecycleState.DRAFT
    history: list[LifecycleEvent] = field(default_factory=list)

    @property
    def policy_id(self) -> str:
        return child_identifier(self.element)

    def actors_for(self, state: LifecycleState) -> set[str]:
        return {e.actor for e in self.history if e.to_state is state}


class PolicyLifecycleManager:
    """Drives policies through the paper's management steps.

    Duties are separated: the reviewer and the approver must each differ
    from the author (four-eyes), which is itself an instance of the SoD
    principle the paper keeps returning to.
    """

    def __init__(self, clock=lambda: 0.0) -> None:
        self._clock = clock
        self._policies: dict[str, ManagedPolicy] = {}

    def write(self, element: PolicyElement, author: str) -> ManagedPolicy:
        policy_id = child_identifier(element)
        if policy_id in self._policies and self._policies[
            policy_id
        ].state is not LifecycleState.WITHDRAWN:
            raise LifecycleError(f"policy {policy_id!r} already under management")
        managed = ManagedPolicy(element=element, author=author)
        managed.history.append(
            LifecycleEvent(
                at=self._clock(),
                actor=author,
                from_state=None,
                to_state=LifecycleState.DRAFT,
                note="written",
            )
        )
        self._policies[policy_id] = managed
        return managed

    def modify(
        self, policy_id: str, element: PolicyElement, author: str
    ) -> ManagedPolicy:
        """Modification resets the lifecycle to DRAFT (re-review needed)."""
        managed = self._get(policy_id)
        managed.element = element
        managed.author = author
        self._transition(managed, LifecycleState.DRAFT, author, note="modified")
        return managed

    def review(self, policy_id: str, reviewer: str) -> None:
        managed = self._get(policy_id)
        if reviewer == managed.author:
            raise LifecycleError(
                f"reviewer {reviewer!r} may not review their own policy"
            )
        self._transition(managed, LifecycleState.REVIEWED, reviewer)

    def test(self, policy_id: str, tester: str) -> list[str]:
        """The testing step: static validation must be error-free."""
        managed = self._get(policy_id)
        issues = validate(managed.element)
        errors = [str(i) for i in issues if i.severity is Severity.ERROR]
        if errors:
            self._transition(
                managed,
                LifecycleState.DRAFT,
                tester,
                note=f"test failed: {len(errors)} errors",
            )
            return errors
        self._transition(managed, LifecycleState.TESTED, tester)
        return []

    def approve(self, policy_id: str, approver: str) -> None:
        managed = self._get(policy_id)
        if approver == managed.author:
            raise LifecycleError(
                f"approver {approver!r} may not approve their own policy"
            )
        self._transition(managed, LifecycleState.APPROVED, approver)

    def issue(
        self,
        policy_id: str,
        issuer: str,
        pap: PolicyAdministrationPoint,
    ) -> int:
        """Publish an approved policy to a PAP; returns the PAP version."""
        managed = self._get(policy_id)
        if managed.state is not LifecycleState.APPROVED:
            raise LifecycleError(
                f"policy {policy_id!r} is {managed.state.value}, not approved"
            )
        version = pap.publish(managed.element, publisher=issuer)
        self._transition(managed, LifecycleState.ISSUED, issuer)
        return version

    def withdraw(
        self,
        policy_id: str,
        actor: str,
        pap: Optional[PolicyAdministrationPoint] = None,
    ) -> None:
        managed = self._get(policy_id)
        if pap is not None:
            pap.withdraw(policy_id, requester=actor)
        self._transition(managed, LifecycleState.WITHDRAWN, actor)

    def state_of(self, policy_id: str) -> LifecycleState:
        return self._get(policy_id).state

    def managed(self) -> list[ManagedPolicy]:
        return list(self._policies.values())

    def _get(self, policy_id: str) -> ManagedPolicy:
        try:
            return self._policies[policy_id]
        except KeyError:
            raise LifecycleError(f"no managed policy {policy_id!r}") from None

    def _transition(
        self,
        managed: ManagedPolicy,
        to_state: LifecycleState,
        actor: str,
        note: str = "",
    ) -> None:
        if to_state not in _TRANSITIONS[managed.state]:
            raise LifecycleError(
                f"illegal transition {managed.state.value} -> {to_state.value} "
                f"for {managed.policy_id!r}"
            )
        managed.history.append(
            LifecycleEvent(
                at=self._clock(),
                actor=actor,
                from_state=managed.state,
                to_state=to_state,
                note=note,
            )
        )
        managed.state = to_state


# -- consolidated view ---------------------------------------------------------------------


@dataclass
class DomainPolicySummary:
    domain: str
    policy_ids: list[str]
    repository_revision: int
    pep_count: int
    resource_count: int


def consolidated_view(vo: VirtualOrganization) -> list[DomainPolicySummary]:
    """The auditor's table: what is enforced where, across the whole VO."""
    summaries = []
    for domain in vo.domains.values():
        policy_ids: list[str] = []
        revision = 0
        if domain.pap is not None:
            policy_ids = sorted(domain.pap.repository.identifiers())
            revision = domain.pap.repository.revision
        summaries.append(
            DomainPolicySummary(
                domain=domain.name,
                policy_ids=policy_ids,
                repository_revision=revision,
                pep_count=len(domain.peps),
                resource_count=len(domain.resources),
            )
        )
    return summaries
