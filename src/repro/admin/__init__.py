"""Administration layer: delegation, syndication, conflicts, lifecycle.

The Section-3 management machinery: the XACML Administration & Delegation
profile (grants + reduction + revocation), the Fig. 5 policy-syndication
hierarchy, static modality-conflict analysis with runtime meta-policies
(SoD, Chinese Wall), and the policy lifecycle state machine with the
VO-wide consolidated compliance view.
"""

from .conflicts import (
    ChineseWallMetaPolicy,
    ConflictFinding,
    MetaPolicy,
    MetaPolicyEngine,
    RuleFootprint,
    SeparationOfDutyMetaPolicy,
    Veto,
    find_modality_conflicts,
    footprints,
)
from .delegation import (
    AdminGrant,
    DelegationError,
    DelegationRegistry,
    ReductionResult,
    Scope,
    effective_policies,
)
from .management import (
    DomainPolicySummary,
    LifecycleError,
    LifecycleEvent,
    LifecycleState,
    ManagedPolicy,
    PolicyLifecycleManager,
    consolidated_view,
)
from .syndication import (
    AcceptancePolicy,
    SyndicationNode,
    SyndicationReport,
    build_hierarchy,
)

__all__ = [
    "AcceptancePolicy",
    "AdminGrant",
    "ChineseWallMetaPolicy",
    "ConflictFinding",
    "DelegationError",
    "DelegationRegistry",
    "DomainPolicySummary",
    "LifecycleError",
    "LifecycleEvent",
    "LifecycleState",
    "ManagedPolicy",
    "MetaPolicy",
    "MetaPolicyEngine",
    "PolicyLifecycleManager",
    "ReductionResult",
    "RuleFootprint",
    "Scope",
    "SeparationOfDutyMetaPolicy",
    "SyndicationNode",
    "SyndicationReport",
    "Veto",
    "build_hierarchy",
    "consolidated_view",
    "effective_policies",
    "find_modality_conflicts",
    "footprints",
]
