"""Shared XML attribute escaping helpers for the hand-rolled wire formats.

Every wire format in this repository serializes XML by string formatting
and parses it by regex; values that contain markup characters must
therefore round-trip through ``xml.sax.saxutils``.  ``quoteattr`` emits
``name="value"`` (or ``name='value'`` when the value itself contains a
double quote), and :func:`parse_attrs` is its exact inverse.  The
helpers started life in :mod:`repro.revocation.records`; they live here,
below every layer, so that low-layer formats (the PIP query protocol,
for one) can use them without an upward dependency.
"""

from __future__ import annotations

import re
from xml.sax.saxutils import unescape

#: ``quoteattr`` may emit &quot;/&apos; (value contains both quote
#: styles); ``unescape`` needs them named to invert it exactly.
_ATTR_ENTITIES = {"&quot;": '"', "&apos;": "'"}


def parse_attrs(attr_text: str) -> dict[str, str]:
    """Parse ``name="value"`` / ``name='value'`` pairs, unescaping values.

    The exact inverse of ``quoteattr`` serialization; shared by every
    wire format so hostile characters in targets or subject ids
    round-trip losslessly everywhere.
    """
    return {
        m.group(1): unescape(
            m.group(2) if m.group(2) is not None else m.group(3),
            _ATTR_ENTITIES,
        )
        for m in re.finditer(r"(\w+)=(?:\"([^\"]*)\"|'([^']*)')", attr_text)
    }
