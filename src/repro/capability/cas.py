"""Community Authorization Service (CAS-style capability service).

"There are two well-known examples of a capability-based access control
system.  Those are the Community Authorization Service (CAS) which
provides security for Globus and Virtual Organization Membership Service
(VOMS) ... The CAS system uses SAML assertions for capability encoding"
(paper §2.2).

The service holds VO-level policies (an ordinary XACML engine) and issues
signed SAML capability assertions after *pre-screening* requesters — the
paper's "capability service [can] pre-screen clients and issue
capabilities based on general information".
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..components.base import Component, ComponentIdentity, RpcFault
from ..saml.assertions import (
    Assertion,
    AttributeStatement,
    AuthzDecisionStatement,
    SignedAssertion,
    sign_assertion,
)
from ..simnet.message import Message
from ..simnet.network import Network
from ..xacml.attributes import Attribute, Category, string
from ..xacml.context import Decision, RequestContext
from ..xacml.engine import PdpEngine
from .tokens import CAPABILITY_SCOPE_ATTR, CAPABILITY_VO_ATTR, CapabilityScope

#: Default capability lifetime (simulated seconds).
CAPABILITY_LIFETIME = 300.0


@dataclass(frozen=True)
class CapabilityRequest:
    """What a client asks the capability service for."""

    subject_id: str
    scopes: tuple[CapabilityScope, ...]
    audience: Optional[str] = None

    def to_xml(self) -> str:
        scopes = "".join(
            f'<Scope resource="{s.resource_id}" action="{s.action_id}"/>'
            for s in self.scopes
        )
        audience = f' audience="{self.audience}"' if self.audience else ""
        return (
            f'<CapabilityRequest subject="{self.subject_id}"{audience}>'
            f"{scopes}</CapabilityRequest>"
        )

    @classmethod
    def from_xml(cls, xml_text: str) -> "CapabilityRequest":
        head = re.match(
            r'<CapabilityRequest subject="([^"]*)"(?: audience="([^"]*)")?>',
            xml_text,
        )
        if head is None:
            raise ValueError("not a CapabilityRequest")
        scopes = tuple(
            CapabilityScope(resource_id=m.group(1), action_id=m.group(2))
            for m in re.finditer(
                r'<Scope resource="([^"]*)" action="([^"]*)"/>', xml_text
            )
        )
        return cls(
            subject_id=head.group(1),
            scopes=scopes,
            audience=head.group(2),
        )


class CommunityAuthorizationService(Component):
    """Issues SAML capability assertions backed by VO policies.

    The subject attribute store is populated by the VO (roles, VO
    membership); the issuing engine evaluates each requested scope and
    only grants the scopes its policies permit — partially grantable
    requests yield a capability covering the permitted subset.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        domain: str,
        identity: ComponentIdentity,
        vo_name: str = "",
        capability_lifetime: float = CAPABILITY_LIFETIME,
    ) -> None:
        super().__init__(name, network, domain, identity)
        self.vo_name = vo_name
        self.capability_lifetime = capability_lifetime
        self.engine = PdpEngine()
        self._subject_attributes: dict[str, dict[str, list[str]]] = {}
        self.capabilities_issued = 0
        self.requests_refused = 0
        self.on("cap.request", self._handle_request)

    # -- community state ---------------------------------------------------------

    def set_subject_attribute(
        self, subject_id: str, attribute_id: str, values: list[str]
    ) -> None:
        self._subject_attributes.setdefault(subject_id, {})[attribute_id] = list(
            values
        )

    def add_policy(self, element) -> None:
        self.engine.add_policy(element)

    # -- issuing ------------------------------------------------------------------

    def _screen(self, subject_id: str, scope: CapabilityScope) -> bool:
        """Pre-screen one scope against the community policies."""
        request = RequestContext.simple(
            subject_id, scope.resource_id, scope.action_id
        )
        for attribute_id, values in self._subject_attributes.get(
            subject_id, {}
        ).items():
            request.add(
                Category.SUBJECT,
                Attribute(attribute_id, tuple(string(v) for v in values)),
            )
        return self.engine.decide(request, current_time=self.now) is Decision.PERMIT

    def issue(self, cap_request: CapabilityRequest) -> SignedAssertion:
        """Issue a capability for the permitted subset of requested scopes.

        Raises:
            RpcFault: when no requested scope is permitted.
        """
        granted = [
            scope
            for scope in cap_request.scopes
            if self._screen(cap_request.subject_id, scope)
        ]
        if not granted:
            self.requests_refused += 1
            raise RpcFault(
                "cas:refused",
                f"no requested scope permitted for {cap_request.subject_id!r}",
            )
        attributes = [
            (CAPABILITY_SCOPE_ATTR, scope.encode()) for scope in granted
        ]
        if self.vo_name:
            attributes.append((CAPABILITY_VO_ATTR, self.vo_name))
        statements = [
            AttributeStatement(attributes=tuple(attributes)),
        ] + [
            AuthzDecisionStatement(
                resource=scope.resource_id,
                action=scope.action_id,
                decision="Permit",
            )
            for scope in granted
        ]
        assertion = Assertion(
            issuer=self.identity.name,
            subject_id=cap_request.subject_id,
            issue_instant=self.now,
            not_before=self.now,
            not_on_or_after=self.now + self.capability_lifetime,
            statements=tuple(statements),
            audience=cap_request.audience,
        )
        self.capabilities_issued += 1
        return sign_assertion(
            assertion, self.identity.keypair, self.identity.certificate
        )

    # -- wire interface ------------------------------------------------------------

    def _handle_request(self, message: Message) -> object:
        cap_request = CapabilityRequest.from_xml(str(message.payload))
        signed = self.issue(cap_request)
        return _CapabilityPayload(signed.to_xml(), signed)


class _CapabilityPayload(str):
    """XML payload (authoritative for size) carrying the parsed token."""

    def __new__(cls, xml_text: str, signed: SignedAssertion):
        instance = super().__new__(cls, xml_text)
        instance.signed_assertion = signed
        return instance


def capability_from_payload(payload: object) -> SignedAssertion:
    signed = getattr(payload, "signed_assertion", None)
    if signed is None:
        raise ValueError("payload does not carry a capability assertion")
    return signed
