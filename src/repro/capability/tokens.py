"""Capability tokens and their PEP-side verification/enforcement.

In the capability-issuing (push) architecture of Fig. 2, "the subject,
which requested capabilities, can include them, typically in form of
assertions, in business service calls.  Such assertion is then extracted
on the service side and validated for its integrity and authenticity.
Only then the enforcement point checks whether the capability is
sufficient" — and, per the paper, "the resource provider still makes the
final access control decision", so the enforcer supports an optional
local policy engine for provider-side restrictions on top of the
capability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..components.pep import EnforcementResult, PolicyEnforcementPoint
from ..saml.assertions import (
    AssertionError_,
    SignedAssertion,
    validate_assertion,
)
from ..wss.keys import KeyStore
from ..wss.pki import TrustValidator
from ..xacml.context import Decision, RequestContext, Status, StatusCode
from ..xacml.engine import PdpEngine

#: SAML attribute names used inside capability assertions.
CAPABILITY_SCOPE_ATTR = "urn:repro:capability:scope"
CAPABILITY_VO_ATTR = "urn:repro:capability:vo"


@dataclass(frozen=True)
class CapabilityScope:
    """One (resource, action) pair a capability covers."""

    resource_id: str
    action_id: str

    def encode(self) -> str:
        return f"{self.action_id}@{self.resource_id}"

    @classmethod
    def decode(cls, text: str) -> "CapabilityScope":
        action_id, _, resource_id = text.partition("@")
        if not action_id or not resource_id:
            raise ValueError(f"bad capability scope {text!r}")
        return cls(resource_id=resource_id, action_id=action_id)


@dataclass(frozen=True)
class VerificationOutcome:
    ok: bool
    reason: str = ""


class CapabilityVerifier:
    """Relying-party verification of SAML capability assertions.

    Checks, in order: signature + issuer trust chain (PKI), validity
    window, audience restriction, issuer allow-list, and scope coverage.
    """

    def __init__(
        self,
        keystore: KeyStore,
        validator: TrustValidator,
        audience: Optional[str] = None,
        accepted_issuers: Optional[set[str]] = None,
    ) -> None:
        self.keystore = keystore
        self.validator = validator
        self.audience = audience
        self.accepted_issuers = accepted_issuers
        #: Optional revocation coherence hook: receives the validated
        #: assertion, returns a rejection reason when it (or its subject)
        #: has been revoked.  Installed by
        #: :meth:`repro.revocation.coherence.CoherenceAgent.protect_verifier`.
        self.revocation_check: Optional[Callable[..., Optional[str]]] = None
        self.verifications = 0
        self.rejections = 0
        self.revocation_rejections = 0

    def verify(
        self,
        capability: SignedAssertion,
        subject_id: str,
        resource_id: str,
        action_id: str,
        at: float,
    ) -> VerificationOutcome:
        self.verifications += 1
        try:
            assertion = validate_assertion(
                capability,
                self.keystore,
                self.validator,
                at=at,
                expected_audience=self.audience,
            )
        except AssertionError_ as exc:
            self.rejections += 1
            return VerificationOutcome(ok=False, reason=str(exc))
        if self.revocation_check is not None:
            revocation_reason = self.revocation_check(assertion)
            if revocation_reason is not None:
                self.rejections += 1
                self.revocation_rejections += 1
                return VerificationOutcome(ok=False, reason=revocation_reason)
        if (
            self.accepted_issuers is not None
            and assertion.issuer not in self.accepted_issuers
        ):
            self.rejections += 1
            return VerificationOutcome(
                ok=False,
                reason=f"issuer {assertion.issuer!r} not accepted here",
            )
        if assertion.subject_id != subject_id:
            self.rejections += 1
            return VerificationOutcome(
                ok=False,
                reason=(
                    f"capability subject {assertion.subject_id!r} does not "
                    f"match caller {subject_id!r}"
                ),
            )
        wanted = CapabilityScope(resource_id, action_id)
        # Scope can be carried as an AuthzDecisionStatement (CAS style) or
        # as scope attributes; accept either encoding.
        if assertion.decision_for(resource_id, action_id) == "Permit":
            return VerificationOutcome(ok=True)
        scopes = {
            CapabilityScope.decode(text)
            for text in assertion.attribute_values(CAPABILITY_SCOPE_ATTR)
        }
        if wanted in scopes:
            return VerificationOutcome(ok=True)
        self.rejections += 1
        return VerificationOutcome(
            ok=False,
            reason=f"capability does not cover {wanted.encode()!r}",
        )


class CapabilityEnforcer:
    """Push-model enforcement wrapper around a PEP.

    The enforcer never contacts a PDP: the capability *is* the decision.
    An optional ``local_engine`` lets the resource provider impose its own
    restrictions on top (the paper's "resource providers may impose their
    own restrictions on access requests"): a local Deny vetoes the
    capability; NotApplicable/Permit lets it stand.
    """

    def __init__(
        self,
        pep: PolicyEnforcementPoint,
        verifier: CapabilityVerifier,
        local_engine: Optional[PdpEngine] = None,
    ) -> None:
        self.pep = pep
        self.verifier = verifier
        self.local_engine = local_engine

    def authorize(
        self,
        capability: SignedAssertion,
        subject_id: str,
        resource_id: str,
        action_id: str,
    ) -> EnforcementResult:
        self.pep.enforcements += 1
        outcome = self.verifier.verify(
            capability, subject_id, resource_id, action_id, at=self.pep.now
        )
        if not outcome.ok:
            self.pep.denials += 1
            return EnforcementResult(
                decision=Decision.DENY,
                source="capability",
                status=Status(
                    code=StatusCode.PROCESSING_ERROR, message=outcome.reason
                ),
                detail=outcome.reason,
            )
        if self.local_engine is not None:
            request = RequestContext.simple(subject_id, resource_id, action_id)
            local = self.local_engine.decide(request, current_time=self.pep.now)
            if local is Decision.DENY:
                self.pep.denials += 1
                return EnforcementResult(
                    decision=Decision.DENY,
                    source="capability",
                    detail="local provider policy vetoed the capability",
                )
        self.pep.grants += 1
        return EnforcementResult(decision=Decision.PERMIT, source="capability")
