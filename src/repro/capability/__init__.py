"""Capability systems: the push-model architectures of paper Fig. 2.

CAS-style (SAML capability assertions carrying authorisation decisions)
and VOMS-style (X.509 attribute certificates carrying FQANs), plus the
PEP-side verifier/enforcer that makes the final provider-side decision.
"""

from .cas import (
    CAPABILITY_LIFETIME,
    CapabilityRequest,
    CommunityAuthorizationService,
    capability_from_payload,
)
from .tokens import (
    CAPABILITY_SCOPE_ATTR,
    CAPABILITY_VO_ATTR,
    CapabilityEnforcer,
    CapabilityScope,
    CapabilityVerifier,
)
from .voms import (
    AC_LIFETIME,
    Fqan,
    SUBJECT_FQAN,
    VOMS_EXTENSION,
    VomsService,
    extract_fqans,
    request_with_fqans,
)

__all__ = [
    "AC_LIFETIME",
    "CAPABILITY_LIFETIME",
    "CAPABILITY_SCOPE_ATTR",
    "CAPABILITY_VO_ATTR",
    "CapabilityEnforcer",
    "CapabilityRequest",
    "CapabilityScope",
    "CapabilityVerifier",
    "CommunityAuthorizationService",
    "Fqan",
    "SUBJECT_FQAN",
    "VOMS_EXTENSION",
    "VomsService",
    "capability_from_payload",
    "extract_fqans",
    "request_with_fqans",
]
