"""Virtual Organization Membership Service (VOMS-style attribute certs).

"The VOMS system uses extended X.509 certificates" for capability
encoding (paper §2.2), and "both solutions differ with respect to the
format of the capabilities that are issued and the granularity of
capability-enriched access requests": where CAS issues per-(resource,
action) decisions, VOMS issues *attributes* — VO membership, groups,
roles — as certificate extensions, and the resource side maps those to
rights with its own policies.

Fully-qualified attribute names (FQANs) follow the real VOMS shape:
``/vo-name/group[/Role=role]``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..components.base import Component, ComponentIdentity, RpcFault
from ..simnet.message import Message
from ..simnet.network import Network
from ..wss.keys import KeyStore
from ..wss.pki import Certificate, TrustValidator
from ..xacml.attributes import Attribute, Category, string
from ..xacml.context import RequestContext

#: Certificate extension key carrying FQANs.
VOMS_EXTENSION = "vomsFqans"
#: Default attribute-certificate lifetime (simulated seconds).
AC_LIFETIME = 12 * 3600.0

#: XACML attribute id the resource side maps FQANs onto.
SUBJECT_FQAN = "urn:repro:subject:fqan"


@dataclass(frozen=True)
class Fqan:
    """A fully-qualified attribute name: VO, group path, optional role."""

    vo: str
    group: str = ""
    role: str = ""

    def encode(self) -> str:
        text = f"/{self.vo}"
        if self.group:
            text += f"/{self.group}"
        if self.role:
            text += f"/Role={self.role}"
        return text

    @classmethod
    def decode(cls, text: str) -> "Fqan":
        match = re.match(r"^/([^/]+)(?:/((?:(?!Role=)[^/])+))?(?:/Role=(.+))?$", text)
        if match is None:
            raise ValueError(f"bad FQAN {text!r}")
        return cls(
            vo=match.group(1),
            group=match.group(2) or "",
            role=match.group(3) or "",
        )


class VomsService(Component):
    """Issues VOMS-style attribute certificates.

    Membership is registered per subject as a list of FQANs; the
    ``voms.request`` operation returns an attribute certificate — an
    X.509 certificate issued by the VOMS CA whose extensions carry the
    FQANs and the holder binding.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        domain: str,
        identity: ComponentIdentity,
        vo_name: str,
        ac_lifetime: float = AC_LIFETIME,
    ) -> None:
        super().__init__(name, network, domain, identity)
        self.vo_name = vo_name
        self.ac_lifetime = ac_lifetime
        self._memberships: dict[str, list[Fqan]] = {}
        self.acs_issued = 0
        self.on("voms.request", self._handle_request)
        # The service signs ACs with its component key; relying parties
        # validate through the CA that certified the service.  We mint ACs
        # via a dedicated issuing authority bound to the same key.
        from ..wss.pki import CertificateAuthority

        self._issuing_ca = CertificateAuthority.__new__(CertificateAuthority)
        self._issuing_ca.name = identity.name
        self._issuing_ca.keystore = identity.keystore
        self._issuing_ca.parent = None
        self._issuing_ca.keypair = identity.keypair
        self._issuing_ca._revoked = set()
        self._issuing_ca.certificate = identity.certificate

    @property
    def issuing_authority(self):
        """The CA relying parties must register to validate ACs."""
        return self._issuing_ca

    # -- membership management ---------------------------------------------------------

    def enroll(self, subject_id: str, fqan: Fqan) -> None:
        if fqan.vo != self.vo_name:
            raise ValueError(
                f"FQAN VO {fqan.vo!r} does not match service VO {self.vo_name!r}"
            )
        self._memberships.setdefault(subject_id, []).append(fqan)

    def expel(self, subject_id: str) -> None:
        self._memberships.pop(subject_id, None)

    def membership(self, subject_id: str) -> list[Fqan]:
        return list(self._memberships.get(subject_id, []))

    # -- issuing --------------------------------------------------------------------------

    def issue_attribute_certificate(self, subject_id: str) -> Certificate:
        fqans = self._memberships.get(subject_id)
        if not fqans:
            raise RpcFault(
                "voms:not-a-member",
                f"{subject_id!r} holds no membership in VO {self.vo_name!r}",
            )
        holder_key = self.identity.keystore.generate(
            label=f"voms-ac:{subject_id}:{self.acs_issued}"
        )
        self.acs_issued += 1
        return self._issuing_ca.issue(
            subject=subject_id,
            public_key=holder_key.public,
            not_before=self.now,
            lifetime=self.ac_lifetime,
            extensions=(
                (VOMS_EXTENSION, ",".join(f.encode() for f in fqans)),
                ("vo", self.vo_name),
            ),
        )

    def _handle_request(self, message: Message) -> object:
        certificate = self.issue_attribute_certificate(str(message.payload))
        return certificate


def extract_fqans(
    certificate: Certificate,
    keystore: KeyStore,
    validator: TrustValidator,
    at: float,
) -> list[Fqan]:
    """Relying-party side: validate the AC chain and read its FQANs.

    Raises:
        CertificateError: chain invalid, expired or revoked.
        ValueError: the certificate carries no VOMS extension.
    """
    validator.validate(certificate, at=at)
    raw = certificate.extension(VOMS_EXTENSION)
    if raw is None:
        raise ValueError(
            f"certificate for {certificate.subject!r} has no VOMS extension"
        )
    return [Fqan.decode(token) for token in raw.split(",") if token]


def request_with_fqans(
    subject_id: str,
    resource_id: str,
    action_id: str,
    fqans: list[Fqan],
) -> RequestContext:
    """Build a request context carrying FQANs as subject attributes.

    This is the bridge from VOMS attributes to the XACML engine: the
    resource side writes policies against ``SUBJECT_FQAN``.
    """
    request = RequestContext.simple(subject_id, resource_id, action_id)
    if fqans:
        request.add(
            Category.SUBJECT,
            Attribute(
                SUBJECT_FQAN, tuple(string(f.encode()) for f in fqans)
            ),
        )
    return request
