"""Discrete-event scheduler.

The event loop is the single driver of simulated time.  Components schedule
callbacks (message deliveries, heartbeat timers, cache expiries) and the
loop executes them in timestamp order, advancing the shared
:class:`~repro.simnet.clock.SimClock` as it goes.

Ties are broken by insertion order so that runs are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .clock import SimClock


@dataclass(frozen=True)
class EventHandle:
    """Opaque handle returned by :meth:`EventLoop.schedule`, used to cancel."""

    seq: int
    when: float


@dataclass(frozen=True)
class TopicEvent:
    """One publication on a network topic (see :meth:`Network.publish`).

    Topic routing is the substrate of the push-invalidation bus
    (:mod:`repro.revocation.bus`): a publisher addresses a *topic* rather
    than a node, and the network fans the payload out to every subscriber
    over its individual link.  The network keeps a log of these events so
    experiments can audit fan-out volume separately from unicast traffic.
    """

    topic: str
    kind: str
    publisher: str
    published_at: float
    subscriber_count: int
    payload: Any = None


@dataclass(order=True)
class _Entry:
    when: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventLoop:
    """A deterministic discrete-event loop.

    Example:
        >>> loop = EventLoop()
        >>> fired = []
        >>> _ = loop.schedule(2.0, lambda: fired.append("b"))
        >>> _ = loop.schedule(1.0, lambda: fired.append("a"))
        >>> loop.run()
        >>> fired
        ['a', 'b']
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._entries: dict[int, _Entry] = {}
        self._processed = 0

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._entries.values() if not e.cancelled)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        when = self.clock.now + delay
        return self.schedule_at(when, callback, label)

    def schedule_at(
        self, when: float, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule at {when}, clock already at {self.clock.now}"
            )
        seq = next(self._seq)
        entry = _Entry(when=when, seq=seq, callback=callback, label=label)
        heapq.heappush(self._heap, entry)
        self._entries[seq] = entry
        return EventHandle(seq=seq, when=when)

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a scheduled event.  Returns True if it had not yet fired."""
        entry = self._entries.get(handle.seq)
        if entry is None or entry.cancelled:
            return False
        entry.cancelled = True
        return True

    def step(self) -> bool:
        """Execute the next event, advancing the clock.

        Returns:
            True if an event was executed, False if the queue was empty.
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            self._entries.pop(entry.seq, None)
            if entry.cancelled:
                continue
            self.clock.advance_to(entry.when)
            entry.callback()
            self._processed += 1
            return True
        return False

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout_at: float,
        max_events: int = 1_000_000,
    ) -> bool:
        """Process events until ``predicate`` holds or ``timeout_at`` passes.

        This is the engine behind synchronous RPC over the simulated
        network: the caller sends a request, then drives the loop until
        the reply callback flips a flag.  Re-entrant by design — a handler
        that itself issues a nested RPC simply drives the same loop
        deeper; determinism is preserved because there is only one event
        queue and one clock.

        Returns:
            True if the predicate became true, False on timeout (the
            clock is then positioned at ``timeout_at``).
        """
        executed = 0
        while not predicate():
            if executed >= max_events:
                raise RuntimeError(
                    f"run_until exceeded max_events={max_events}"
                )
            head = None
            while self._heap and self._heap[0].cancelled:
                dropped = heapq.heappop(self._heap)
                self._entries.pop(dropped.seq, None)
            if self._heap:
                head = self._heap[0]
            if head is None or head.when > timeout_at:
                if self.clock.now < timeout_at:
                    self.clock.advance_to(timeout_at)
                return predicate()
            self.step()
            executed += 1
        return True

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Run events until the queue drains or ``until`` is reached.

        Args:
            until: stop once the next event would fire after this time; the
                clock is advanced to ``until`` on exit so timers line up.
            max_events: safety valve against runaway scheduling loops.

        Returns:
            Number of events executed by this call.
        """
        executed = 0
        while self._heap and executed < max_events:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                self._entries.pop(head.seq, None)
                continue
            if until is not None and head.when > until:
                break
            self.step()
            executed += 1
        if executed >= max_events:
            raise RuntimeError(
                f"event loop exceeded max_events={max_events}; "
                "likely a self-rescheduling cycle"
            )
        if until is not None and self.clock.now < until:
            self.clock.advance_to(until)
        return executed
