"""Network and component metrics.

Every experiment in EXPERIMENTS.md reports numbers collected here: message
counts, bytes on the wire, per-kind breakdowns and latency distributions.
Collection is cheap (dict increments) so it is always on.
"""

from __future__ import annotations

import statistics
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable


def _percentile(data: list[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted ``data``.

    The inclusive method (numpy's default): ``q`` of 0.5 over an even
    count averages the two middle elements instead of grabbing the
    upper one, and tail percentiles interpolate instead of truncating
    down — benchmark tables were under-reporting tails before.
    """
    if len(data) == 1:
        return data[0]
    position = q * (len(data) - 1)
    lower = int(position)
    if lower + 1 >= len(data):
        return data[-1]
    fraction = position - lower
    return data[lower] + (data[lower + 1] - data[lower]) * fraction


@dataclass
class LatencyStats:
    """Summary statistics over a set of latency samples (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "LatencyStats":
        data = sorted(samples)
        if not data:
            return cls(
                count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, maximum=0.0
            )
        return cls(
            count=len(data),
            mean=statistics.fmean(data),
            p50=_percentile(data, 0.50),
            p95=_percentile(data, 0.95),
            p99=_percentile(data, 0.99),
            maximum=data[-1],
        )


@dataclass
class MetricsRegistry:
    """Accumulates counters for a simulation run.

    The registry distinguishes *delivered* from *dropped* traffic so that
    failure-injection experiments (E10, E11) can report loss separately.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    sent_by_kind: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_by_kind: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    latency_samples: list[float] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: Arbitrary named sample series (queueing delays, batch sizes, ...);
    #: summarised on demand via :meth:`series`.
    samples: dict[str, list[float]] = field(
        default_factory=lambda: defaultdict(list)
    )

    def record_send(self, kind: str, size_bytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        self.sent_by_kind[kind] += 1
        self.bytes_by_kind[kind] += size_bytes

    def record_delivery(self, size_bytes: int, latency: float) -> None:
        self.messages_delivered += 1
        self.bytes_delivered += size_bytes
        self.latency_samples.append(latency)

    def record_drop(self) -> None:
        self.messages_dropped += 1

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment an arbitrary named counter (cache hits, denials, ...)."""
        self.counters[counter] += amount

    def record_sample(self, series: str, value: float) -> None:
        """Append one observation to a named sample series."""
        self.samples[series].append(value)

    def series(self, name: str) -> LatencyStats:
        """Summary statistics over a named sample series."""
        return self.series_window(name)

    def sample_count(self, name: str) -> int:
        """How many observations a named series holds right now.

        Measurement windows remember this before a run and pass it to
        :meth:`series_window` afterwards, so several measured runs can
        share one registry without resetting it.
        """
        return len(self.samples.get(name, ()))

    def series_window(self, name: str, start: int = 0) -> LatencyStats:
        """Summary statistics over a series, skipping the first ``start``."""
        return LatencyStats.from_samples(self.samples.get(name, [])[start:])

    def latency(self) -> LatencyStats:
        return LatencyStats.from_samples(self.latency_samples)

    def snapshot(self) -> dict[str, object]:
        """A plain-dict view suitable for printing in benchmark tables.

        Includes per-kind byte totals (``bytes[<kind>]``) and a summary
        of every named sample series (``series[<name>]``) so benchmark
        collectors can emit them without bespoke plumbing.
        """
        lat = self.latency()
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
            "latency_mean_ms": round(lat.mean * 1000, 3),
            "latency_p95_ms": round(lat.p95 * 1000, 3),
            "latency_p99_ms": round(lat.p99 * 1000, 3),
            **{f"sent[{k}]": v for k, v in sorted(self.sent_by_kind.items())},
            **{f"bytes[{k}]": v for k, v in sorted(self.bytes_by_kind.items())},
            **{f"count[{k}]": v for k, v in sorted(self.counters.items())},
            **{
                f"series[{name}]": self._series_summary(name)
                for name in sorted(self.samples)
            },
        }

    def _series_summary(self, name: str) -> dict[str, float]:
        """One series' summary in raw units (series are not all
        latencies — batch sizes share the mechanism)."""
        stats = self.series(name)
        return {
            "count": stats.count,
            "mean": round(stats.mean, 6),
            "p50": round(stats.p50, 6),
            "p95": round(stats.p95, 6),
            "p99": round(stats.p99, 6),
            "max": round(stats.maximum, 6),
        }

    def reset(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.sent_by_kind.clear()
        self.bytes_by_kind.clear()
        self.latency_samples.clear()
        self.counters.clear()
        self.samples.clear()
