"""Messages exchanged over the simulated network.

A :class:`Message` carries an opaque payload plus explicitly-accounted
wire size.  Size accounting is central to the reproduction: the paper's
"Communication Performance" challenge (Section 3.2) argues that
authorisation traffic — especially WS-Security-protected XML — can dominate
the higher-level protocol, so every experiment reports message counts and
bytes as measured here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_message_ids = itertools.count(1)

#: Fixed per-message envelope overhead in bytes (HTTP + TCP/IP headers).
#: Chosen to match a typical HTTP/1.1 POST carrying a SOAP envelope.
TRANSPORT_OVERHEAD_BYTES = 320


def payload_size(payload: Any) -> int:
    """Estimate the wire size of a payload in bytes.

    Strings and bytes are measured exactly (UTF-8 for strings), which is the
    common case: SOAP envelopes, XACML contexts and SAML assertions are all
    serialized to XML text before being sent.  Other objects fall back to
    the length of their ``repr`` — an approximation only used by low-level
    tests, never by the benchmarks.
    """
    if payload is None:
        return 0
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    size = getattr(payload, "wire_size", None)
    if isinstance(size, int):
        return size
    return len(repr(payload).encode("utf-8"))


@dataclass
class Message:
    """A single simulated network message.

    Attributes:
        sender: address of the sending node.
        recipient: address of the destination node.
        kind: application-level message type tag, e.g. ``"xacml.request"``.
        payload: opaque content; its size is measured by ``payload_size``.
        size_bytes: total wire footprint (payload + transport overhead).
        msg_id: unique id, for tracing and reply correlation.
        reply_to: id of the request this message answers, if any.
        headers: small key/value metadata (e.g. signature markers).
    """

    sender: str
    recipient: str
    kind: str
    payload: Any = None
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    reply_to: Optional[int] = None
    headers: dict[str, Any] = field(default_factory=dict)
    size_bytes: int = -1

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            self.size_bytes = payload_size(self.payload) + TRANSPORT_OVERHEAD_BYTES

    def reply(self, kind: str, payload: Any, **headers: Any) -> "Message":
        """Build a response message addressed back to the sender."""
        return Message(
            sender=self.recipient,
            recipient=self.sender,
            kind=kind,
            payload=payload,
            reply_to=self.msg_id,
            headers=dict(headers),
        )

    def __repr__(self) -> str:
        return (
            f"Message(#{self.msg_id} {self.sender}->{self.recipient} "
            f"{self.kind} {self.size_bytes}B)"
        )
