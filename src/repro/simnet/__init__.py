"""Discrete-event network simulation substrate.

This package stands in for the distributed deployment the paper assumes
(Web Services hosts spread across administrative domains).  It provides a
deterministic, seedable event loop, a message fabric with latency and
bandwidth modelling, byte-accurate message size accounting and failure
injection — everything the communication-performance and dependability
experiments need.
"""

from .clock import SimClock
from .events import EventHandle, EventLoop, TopicEvent
from .failures import AvailabilityProbe, FailureEvent, FailureInjector
from .message import Message, TRANSPORT_OVERHEAD_BYTES, payload_size
from .metrics import LatencyStats, MetricsRegistry
from .network import (
    DEFAULT_BANDWIDTH,
    INTER_DOMAIN_LATENCY,
    INTRA_DOMAIN_LATENCY,
    Link,
    Network,
    Node,
)

__all__ = [
    "AvailabilityProbe",
    "DEFAULT_BANDWIDTH",
    "EventHandle",
    "EventLoop",
    "FailureEvent",
    "FailureInjector",
    "INTER_DOMAIN_LATENCY",
    "INTRA_DOMAIN_LATENCY",
    "LatencyStats",
    "Link",
    "Message",
    "MetricsRegistry",
    "Network",
    "Node",
    "SimClock",
    "TopicEvent",
    "TRANSPORT_OVERHEAD_BYTES",
    "payload_size",
]
