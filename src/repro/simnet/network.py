"""Simulated network: nodes, links and message delivery.

The network model is intentionally simple but sufficient for the paper's
communication-performance analysis:

* every node has an address and an inbox handler;
* links have a fixed propagation latency plus a bandwidth term so that
  *bigger messages take longer* (this is what makes WS-Security overhead
  measurable end-to-end, experiment E7);
* links can be partitioned and nodes crashed (experiments E10, E11);
* optional per-link loss probability, drawn from a seeded RNG for
  reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from .clock import SimClock
from .events import EventLoop, TopicEvent
from .message import Message
from .metrics import MetricsRegistry
from ..observability.tracing import Tracer

#: Default one-way latency between two nodes in the same domain (seconds).
INTRA_DOMAIN_LATENCY = 0.0005
#: Default one-way latency between nodes in different domains (seconds).
INTER_DOMAIN_LATENCY = 0.020
#: Default link bandwidth in bytes/second (100 Mbit/s).
DEFAULT_BANDWIDTH = 12_500_000


class MessageHandler(Protocol):
    def __call__(self, message: Message) -> None: ...


@dataclass
class Link:
    """Directed connectivity descriptor between two addresses."""

    latency: float = INTER_DOMAIN_LATENCY
    bandwidth: float = DEFAULT_BANDWIDTH
    loss_probability: float = 0.0
    up: bool = True

    def transfer_time(self, size_bytes: int) -> float:
        return self.latency + size_bytes / self.bandwidth


class Node:
    """A network endpoint bound to an address.

    Subclasses (or composition users) register a handler that receives
    delivered messages.  A crashed node silently drops inbound traffic,
    matching fail-stop semantics.
    """

    def __init__(self, address: str, network: "Network") -> None:
        self.address = address
        self.network = network
        self.alive = True
        self._handler: Optional[MessageHandler] = None
        network._register(self)

    def on_message(self, handler: MessageHandler) -> None:
        self._handler = handler

    def send(self, message: Message) -> None:
        """Send a message; delivery is scheduled on the event loop."""
        self.network.transmit(message)

    def crash(self) -> None:
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    def _deliver(self, message: Message) -> None:
        if not self.alive or self._handler is None:
            self.network.metrics.record_drop()
            return
        self._handler(message)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"Node({self.address}, {state})"


class Network:
    """The message fabric connecting all simulated components.

    A single :class:`Network` instance underpins one experiment run: it owns
    the event loop, the clock, the RNG and the metrics registry, making each
    run self-contained and reproducible from its seed.
    """

    def __init__(self, seed: int = 0, loop: Optional[EventLoop] = None) -> None:
        self.loop = loop if loop is not None else EventLoop(SimClock())
        self.rng = random.Random(seed)
        self.metrics = MetricsRegistry()
        #: Decision-path tracer, off by default (``sample_rate`` 0).
        #: Set ``network.tracer.sample_rate = 1.0`` before a run to
        #: collect causal span trees; see ``repro.observability``.
        self.tracer = Tracer(now=lambda: self.loop.now)
        self._nodes: dict[str, Node] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self.default_link = Link()
        self._topics: dict[str, list[str]] = {}
        self.topic_log: list[TopicEvent] = []

    @property
    def clock(self) -> SimClock:
        return self.loop.clock

    @property
    def now(self) -> float:
        return self.loop.now

    # -- topology ----------------------------------------------------------

    def node(self, address: str) -> Node:
        """Create (or fetch) the node bound to ``address``."""
        existing = self._nodes.get(address)
        if existing is not None:
            return existing
        return Node(address, self)

    def _register(self, node: Node) -> None:
        if node.address in self._nodes:
            raise ValueError(f"address already registered: {node.address}")
        self._nodes[node.address] = node

    def get(self, address: str) -> Node:
        try:
            return self._nodes[address]
        except KeyError:
            raise KeyError(f"no node registered at {address!r}") from None

    def set_link(self, src: str, dst: str, link: Link, symmetric: bool = True) -> None:
        self._links[(src, dst)] = link
        if symmetric:
            self._links[(dst, src)] = Link(
                latency=link.latency,
                bandwidth=link.bandwidth,
                loss_probability=link.loss_probability,
                up=link.up,
            )

    def link_between(self, src: str, dst: str) -> Link:
        return self._links.get((src, dst), self.default_link)

    def partition(self, src: str, dst: str, symmetric: bool = True) -> None:
        """Cut connectivity between two addresses (network partition)."""
        link = self._links.get((src, dst))
        if link is None:
            link = Link(
                latency=self.default_link.latency,
                bandwidth=self.default_link.bandwidth,
            )
            self._links[(src, dst)] = link
        link.up = False
        if symmetric:
            self.partition(dst, src, symmetric=False)

    def heal(self, src: str, dst: str, symmetric: bool = True) -> None:
        """Restore connectivity previously cut by :meth:`partition`."""
        link = self._links.get((src, dst))
        if link is not None:
            link.up = True
        if symmetric:
            self.heal(dst, src, symmetric=False)

    # -- topic routing -----------------------------------------------------

    def subscribe(self, topic: str, address: str) -> None:
        """Register ``address`` to receive publications on ``topic``."""
        subscribers = self._topics.setdefault(topic, [])
        if address not in subscribers:
            subscribers.append(address)

    def unsubscribe(self, topic: str, address: str) -> bool:
        """Remove a subscription; returns True if it existed."""
        subscribers = self._topics.get(topic, [])
        if address in subscribers:
            subscribers.remove(address)
            return True
        return False

    def subscribers(self, topic: str) -> list[str]:
        return list(self._topics.get(topic, ()))

    def publish(
        self,
        sender: str,
        topic: str,
        kind: str,
        payload: object = None,
    ) -> int:
        """Fan a payload out to every subscriber of ``topic``.

        Each subscriber receives its own :class:`Message` subject to the
        sender→subscriber link (latency, loss, partitions), so a pushed
        invalidation pays N messages for N subscribers — exactly the
        overhead experiment E15 charges against the push strategy.

        Returns:
            Number of messages transmitted (the sender never receives its
            own publication).
        """
        recipients = [a for a in self._topics.get(topic, ()) if a != sender]
        for address in recipients:
            self.transmit(
                Message(
                    sender=sender,
                    recipient=address,
                    kind=kind,
                    payload=payload,
                    headers={"topic": topic},
                )
            )
        self.topic_log.append(
            TopicEvent(
                topic=topic,
                kind=kind,
                publisher=sender,
                published_at=self.now,
                subscriber_count=len(recipients),
                payload=payload,
            )
        )
        return len(recipients)

    # -- transmission ------------------------------------------------------

    def transmit(self, message: Message) -> None:
        """Queue a message for delivery subject to link state and loss."""
        self.metrics.record_send(message.kind, message.size_bytes)
        link = self.link_between(message.sender, message.recipient)
        if not link.up:
            self.metrics.record_drop()
            return
        if link.loss_probability > 0 and self.rng.random() < link.loss_probability:
            self.metrics.record_drop()
            return
        dest = self._nodes.get(message.recipient)
        if dest is None:
            self.metrics.record_drop()
            return
        delay = link.transfer_time(message.size_bytes)
        sent_at = self.now

        def deliver() -> None:
            self.metrics.record_delivery(message.size_bytes, self.now - sent_at)
            dest._deliver(message)

        self.loop.schedule(delay, deliver, label=f"deliver:{message.kind}")

    def run(self, until: Optional[float] = None) -> int:
        """Drain the event loop; convenience passthrough."""
        return self.loop.run(until=until)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        self.loop.schedule(delay, callback)
