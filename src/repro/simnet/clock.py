"""Simulated clock for the discrete-event network substrate.

All timing in the reproduction is *simulated*: latencies, capability
lifetimes, cache TTLs and heartbeat timeouts are measured against a
:class:`SimClock`, never against the wall clock.  This keeps every
experiment deterministic and lets benchmarks compress hours of simulated
collaboration into milliseconds of real time.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock.

    Time is a ``float`` number of simulated seconds since the start of the
    simulation.  Only the event loop (see :mod:`repro.simnet.events`) should
    advance the clock; everything else reads it.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises:
            ValueError: if ``when`` lies in the past; simulated time is
                monotonic by construction.
        """
        if when < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, requested={when}"
            )
        self._now = when

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise ValueError(f"cannot advance by negative delta {delta}")
        self._now += delta

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.6f})"
