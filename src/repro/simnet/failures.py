"""Failure injection for dependability experiments.

The paper's titular promise is *dependable* access control; experiments
E10 and E11 stress PDP discovery and replication under faults injected by
this module: node crashes/restarts, network partitions and message loss,
all scheduled on the simulated clock from a seeded RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from .network import Network


@dataclass
class FailureEvent:
    """A record of one injected fault, for experiment reporting."""

    at: float
    kind: str
    target: str
    detail: str = ""


class FailureInjector:
    """Schedules faults against a :class:`~repro.simnet.network.Network`.

    All faults are scheduled through the network's event loop so they
    interleave deterministically with application traffic.
    """

    def __init__(self, network: Network, seed: int = 0) -> None:
        self.network = network
        self.rng = random.Random(seed)
        self.log: list[FailureEvent] = []

    # -- crash faults -------------------------------------------------------

    def crash_at(self, address: str, at: float) -> None:
        """Crash the node at ``address`` at absolute simulated time ``at``."""

        def do_crash() -> None:
            self.network.get(address).crash()
            self.log.append(FailureEvent(self.network.now, "crash", address))

        self._schedule_at(at, do_crash)

    def recover_at(self, address: str, at: float) -> None:
        """Recover a crashed node at absolute simulated time ``at``."""

        def do_recover() -> None:
            self.network.get(address).recover()
            self.log.append(FailureEvent(self.network.now, "recover", address))

        self._schedule_at(at, do_recover)

    def crash_for(self, address: str, at: float, duration: float) -> None:
        """Crash then recover after ``duration`` seconds of downtime."""
        self.crash_at(address, at)
        self.recover_at(address, at + duration)

    # -- partition faults ---------------------------------------------------

    def partition_at(self, a: str, b: str, at: float) -> None:
        def do_partition() -> None:
            self.network.partition(a, b)
            self.log.append(FailureEvent(self.network.now, "partition", f"{a}|{b}"))

        self._schedule_at(at, do_partition)

    def heal_at(self, a: str, b: str, at: float) -> None:
        def do_heal() -> None:
            self.network.heal(a, b)
            self.log.append(FailureEvent(self.network.now, "heal", f"{a}|{b}"))

        self._schedule_at(at, do_heal)

    # -- random crash/recovery process ---------------------------------------

    def random_crash_process(
        self,
        addresses: list[str],
        horizon: float,
        mtbf: float,
        mttr: float,
        start: float = 0.0,
    ) -> int:
        """Generate an exponential crash/repair schedule over ``horizon``.

        Args:
            addresses: candidate victims, chosen uniformly per fault.
            horizon: stop injecting past this simulated time.
            mtbf: mean time between failures (exponential).
            mttr: mean time to repair (exponential).

        Returns:
            Number of crash events scheduled.
        """
        if not addresses:
            return 0
        t = start
        scheduled = 0
        while True:
            t += self.rng.expovariate(1.0 / mtbf)
            if t >= horizon:
                break
            victim = self.rng.choice(addresses)
            downtime = self.rng.expovariate(1.0 / mttr)
            self.crash_for(victim, t, downtime)
            scheduled += 1
        return scheduled

    def _schedule_at(self, at: float, callback) -> None:
        now = self.network.now
        if at < now:
            raise ValueError(f"cannot inject fault in the past (at={at}, now={now})")
        self.network.loop.schedule_at(at, callback, label="fault")


@dataclass
class AvailabilityProbe:
    """Tracks success/failure of periodic probes for availability metrics."""

    successes: int = 0
    failures: int = 0
    outcomes: list[tuple[float, bool]] = field(default_factory=list)

    def record(self, at: float, ok: bool) -> None:
        if ok:
            self.successes += 1
        else:
            self.failures += 1
        self.outcomes.append((at, ok))

    @property
    def availability(self) -> float:
        total = self.successes + self.failures
        return self.successes / total if total else 1.0

    def downtime_windows(self) -> list[tuple[float, float]]:
        """Contiguous [start, end] windows of failed probes."""
        windows: list[tuple[float, float]] = []
        start: Optional[float] = None
        last: float = 0.0
        for at, ok in self.outcomes:
            if not ok:
                if start is None:
                    start = at
                last = at
            else:
                if start is not None:
                    windows.append((start, last))
                    start = None
        if start is not None:
            windows.append((start, last))
        return windows
