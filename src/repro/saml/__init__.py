"""SAML: assertions, the XACML profile of SAML, and the SOAP binding."""

from .assertions import (
    Assertion,
    AssertionError_,
    AttributeStatement,
    AuthnStatement,
    AuthzDecisionStatement,
    SignedAssertion,
    sign_assertion,
    validate_assertion,
)
from .bindings import (
    ASSERTION_HEADER,
    attach_assertion,
    extract_assertions,
    first_assertion,
    has_assertion,
)
from .xacml_profile import (
    XacmlAuthzDecisionBatchQuery,
    XacmlAuthzDecisionBatchStatement,
    XacmlAuthzDecisionQuery,
    XacmlAuthzDecisionStatement,
)

__all__ = [
    "ASSERTION_HEADER",
    "Assertion",
    "AssertionError_",
    "AttributeStatement",
    "AuthnStatement",
    "AuthzDecisionStatement",
    "SignedAssertion",
    "XacmlAuthzDecisionBatchQuery",
    "XacmlAuthzDecisionBatchStatement",
    "XacmlAuthzDecisionQuery",
    "XacmlAuthzDecisionStatement",
    "attach_assertion",
    "extract_assertions",
    "first_assertion",
    "has_assertion",
    "sign_assertion",
    "validate_assertion",
]
