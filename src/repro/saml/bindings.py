"""SOAP binding for SAML assertions.

"Assertions are typically included in the header of the SOAP message that
is sent by the client" (paper §2.2).  This module attaches signed
assertions to envelope headers and extracts them on the service side —
the transport step of the capability-issuing (push) architecture of
Fig. 2.
"""

from __future__ import annotations

from typing import Optional

from ..wsvc.soap import SoapEnvelope
from .assertions import SignedAssertion

ASSERTION_HEADER = "saml:AssertionHeader"


def attach_assertion(envelope: SoapEnvelope, assertion: SignedAssertion) -> None:
    """Place a signed assertion into the envelope's SAML header block."""
    envelope.add_header(ASSERTION_HEADER, assertion.to_xml(), must_understand=True)
    attached = getattr(envelope, "_attached_assertions", [])
    attached.append(assertion)
    envelope._attached_assertions = attached  # type: ignore[attr-defined]


def extract_assertions(envelope: SoapEnvelope) -> list[SignedAssertion]:
    """Recover signed assertions attached to an envelope.

    Assertions ride as live objects alongside the XML (the XML is
    authoritative for size accounting; the object carries the parsed
    form, saving a redundant assertion parser — the signature inside is
    still fully verified by the relying party).
    """
    return list(getattr(envelope, "_attached_assertions", []))


def has_assertion(envelope: SoapEnvelope) -> bool:
    return envelope.header(ASSERTION_HEADER) is not None


def first_assertion(envelope: SoapEnvelope) -> Optional[SignedAssertion]:
    assertions = extract_assertions(envelope)
    return assertions[0] if assertions else None
