"""SAML 2.0-style assertions.

The paper uses SAML as the encoding for capabilities ("capabilities are
usually encoded as SAML assertions", Section 2.2) and for exchanging
authorisation data between components (Section 2.3).  An
:class:`Assertion` carries statements about a subject, bounded by a
validity window and an optional audience restriction, and is signed by
its issuer so relying parties can verify provenance through the PKI.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Union

from ..wss.keys import KeyPair, KeyStore
from ..wss.pki import Certificate, CertificateError, TrustValidator
from ..wss.xmldsig import SignatureError, SignedDocument, sign_document, verify_document

_assertion_ids = itertools.count(1)


class AssertionError_(Exception):
    """Raised when an assertion fails validation.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


@dataclass(frozen=True)
class AttributeStatement:
    """Attribute name/value pairs asserted about the subject."""

    attributes: tuple[tuple[str, str], ...]

    def to_xml(self) -> str:
        inner = "".join(
            f'<saml:Attribute Name="{name}">'
            f"<saml:AttributeValue>{value}</saml:AttributeValue></saml:Attribute>"
            for name, value in self.attributes
        )
        return f"<saml:AttributeStatement>{inner}</saml:AttributeStatement>"

    def values_for(self, name: str) -> list[str]:
        return [value for key, value in self.attributes if key == name]


@dataclass(frozen=True)
class AuthnStatement:
    """Record of how and when the subject authenticated."""

    authn_instant: float
    method: str = "urn:oasis:names:tc:SAML:2.0:ac:classes:X509"

    def to_xml(self) -> str:
        return (
            f'<saml:AuthnStatement AuthnInstant="{self.authn_instant}" '
            f'Method="{self.method}"/>'
        )


@dataclass(frozen=True)
class AuthzDecisionStatement:
    """A decision statement: subject may/may not perform action on resource."""

    resource: str
    action: str
    decision: str  # "Permit" | "Deny" | "Indeterminate"

    def to_xml(self) -> str:
        return (
            f'<saml:AuthzDecisionStatement Resource="{self.resource}" '
            f'Decision="{self.decision}">'
            f"<saml:Action>{self.action}</saml:Action>"
            f"</saml:AuthzDecisionStatement>"
        )


Statement = Union[AttributeStatement, AuthnStatement, AuthzDecisionStatement]


@dataclass(frozen=True)
class Assertion:
    """An unsigned SAML assertion."""

    issuer: str
    subject_id: str
    issue_instant: float
    not_before: float
    not_on_or_after: float
    statements: tuple[Statement, ...] = ()
    audience: Optional[str] = None
    assertion_id: str = field(
        default_factory=lambda: f"saml-{next(_assertion_ids)}"
    )

    def to_xml(self) -> str:
        conditions = (
            f'<saml:Conditions NotBefore="{self.not_before}" '
            f'NotOnOrAfter="{self.not_on_or_after}">'
        )
        if self.audience is not None:
            conditions += (
                f"<saml:AudienceRestriction><saml:Audience>{self.audience}"
                f"</saml:Audience></saml:AudienceRestriction>"
            )
        conditions += "</saml:Conditions>"
        statements_xml = "".join(statement.to_xml() for statement in self.statements)
        return (
            f'<saml:Assertion xmlns:saml="urn:oasis:names:tc:SAML:2.0:assertion" '
            f'ID="{self.assertion_id}" IssueInstant="{self.issue_instant}">'
            f"<saml:Issuer>{self.issuer}</saml:Issuer>"
            f"<saml:Subject><saml:NameID>{self.subject_id}</saml:NameID>"
            f"</saml:Subject>{conditions}{statements_xml}</saml:Assertion>"
        )

    @property
    def wire_size(self) -> int:
        return len(self.to_xml().encode("utf-8"))

    def attribute_values(self, name: str) -> list[str]:
        out: list[str] = []
        for statement in self.statements:
            if isinstance(statement, AttributeStatement):
                out.extend(statement.values_for(name))
        return out

    def decision_for(self, resource: str, action: str) -> Optional[str]:
        for statement in self.statements:
            if (
                isinstance(statement, AuthzDecisionStatement)
                and statement.resource == resource
                and statement.action == action
            ):
                return statement.decision
        return None


@dataclass(frozen=True)
class SignedAssertion:
    """An assertion plus its issuer's signature over the XML form."""

    assertion: Assertion
    signed: SignedDocument

    def to_xml(self) -> str:
        return self.signed.to_xml()

    @property
    def wire_size(self) -> int:
        return self.signed.wire_size

    @property
    def issuer(self) -> str:
        return self.assertion.issuer

    @property
    def subject_id(self) -> str:
        return self.assertion.subject_id


def sign_assertion(
    assertion: Assertion, keypair: KeyPair, certificate: Certificate
) -> SignedAssertion:
    """Sign an assertion with the issuer's key."""
    if certificate.subject != assertion.issuer:
        raise ValueError(
            f"certificate subject {certificate.subject!r} does not match "
            f"assertion issuer {assertion.issuer!r}"
        )
    return SignedAssertion(
        assertion=assertion,
        signed=sign_document(assertion.to_xml(), keypair, certificate),
    )


def validate_assertion(
    signed_assertion: SignedAssertion,
    keystore: KeyStore,
    validator: TrustValidator,
    at: float,
    expected_audience: Optional[str] = None,
) -> Assertion:
    """Full relying-party validation; returns the inner assertion.

    Checks the signature and the issuer's trust chain, the validity
    window, and (when given) the audience restriction.

    Raises:
        AssertionError_: on any failure, with a human-readable reason.
    """
    assertion = signed_assertion.assertion
    try:
        verify_document(signed_assertion.signed, keystore, validator, at=at)
    except (SignatureError, CertificateError) as exc:
        raise AssertionError_(f"assertion signature invalid: {exc}") from exc
    if signed_assertion.signed.content != assertion.to_xml():
        # The signature covers the XML; the carried object must be exactly
        # what was signed, or a relying party could be handed a swapped-in
        # assertion riding a valid signature.
        raise AssertionError_(
            f"assertion {assertion.assertion_id} does not match signed content"
        )
    if signed_assertion.signed.signer_subject != assertion.issuer:
        raise AssertionError_(
            f"assertion issuer {assertion.issuer!r} does not match signer "
            f"{signed_assertion.signed.signer_subject!r}"
        )
    if not (assertion.not_before <= at < assertion.not_on_or_after):
        raise AssertionError_(
            f"assertion {assertion.assertion_id} outside validity window "
            f"at t={at} [{assertion.not_before}, {assertion.not_on_or_after})"
        )
    if (
        expected_audience is not None
        and assertion.audience is not None
        and assertion.audience != expected_audience
    ):
        raise AssertionError_(
            f"assertion audience {assertion.audience!r} does not include "
            f"{expected_audience!r}"
        )
    return assertion
