"""SAML profile of XACML.

"The SAML profile for XACML defines how to use SAML to protect,
transport, and request XACML schema instances and other information in
XACML-based authorisation systems" (paper §2.3).  This module provides
the two message shapes that profile defines:

* :class:`XacmlAuthzDecisionQuery` — a SAML query wrapping an XACML
  request context (PEP → PDP);
* :class:`XacmlAuthzDecisionStatement` — a SAML statement wrapping an
  XACML response context (PDP → PEP), usable inside a signed assertion so
  decisions are attributable and non-forgeable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..xacml.context import RequestContext, ResponseContext
from ..xacml.parser import parse_request, parse_response
from ..xacml.serializer import serialize_request, serialize_response

_query_ids = itertools.count(1)


@dataclass(frozen=True)
class XacmlAuthzDecisionQuery:
    """A SAML-wrapped XACML request, as sent by a PEP to a PDP."""

    request: RequestContext
    issuer: str
    issue_instant: float
    #: When true the PDP must include the evaluated request back in its
    #: statement, binding decision to request (profile's ReturnContext).
    return_context: bool = False
    query_id: str = field(default_factory=lambda: f"xacmlq-{next(_query_ids)}")

    def to_xml(self) -> str:
        return (
            f'<xacml-samlp:XACMLAuthzDecisionQuery ID="{self.query_id}" '
            f'IssueInstant="{self.issue_instant}" '
            f'ReturnContext="{"true" if self.return_context else "false"}">'
            f"<saml:Issuer>{self.issuer}</saml:Issuer>"
            f"{serialize_request(self.request)}"
            f"</xacml-samlp:XACMLAuthzDecisionQuery>"
        )

    @property
    def wire_size(self) -> int:
        return len(self.to_xml().encode("utf-8"))

    @classmethod
    def from_xml(cls, xml_text: str) -> "XacmlAuthzDecisionQuery":
        import re

        match = re.match(
            r'<xacml-samlp:XACMLAuthzDecisionQuery ID="([^"]*)" '
            r'IssueInstant="([^"]*)" ReturnContext="([^"]*)">'
            r"<saml:Issuer>([^<]*)</saml:Issuer>(<Request>.*</Request>)"
            r"</xacml-samlp:XACMLAuthzDecisionQuery>$",
            xml_text,
            re.DOTALL,
        )
        if match is None:
            raise ValueError("not an XACMLAuthzDecisionQuery")
        return cls(
            request=parse_request(match.group(5)),
            issuer=match.group(4),
            issue_instant=float(match.group(2)),
            return_context=match.group(3) == "true",
            query_id=match.group(1),
        )


@dataclass(frozen=True)
class XacmlAuthzDecisionStatement:
    """A SAML-wrapped XACML response, as returned by a PDP."""

    response: ResponseContext
    in_response_to: str
    issuer: str
    issue_instant: float
    request_echo: Optional[RequestContext] = None

    def to_xml(self) -> str:
        echo = (
            serialize_request(self.request_echo)
            if self.request_echo is not None
            else ""
        )
        return (
            f'<xacml-saml:XACMLAuthzDecisionStatement '
            f'InResponseTo="{self.in_response_to}" '
            f'IssueInstant="{self.issue_instant}">'
            f"<saml:Issuer>{self.issuer}</saml:Issuer>"
            f"{serialize_response(self.response)}{echo}"
            f"</xacml-saml:XACMLAuthzDecisionStatement>"
        )

    @property
    def wire_size(self) -> int:
        return len(self.to_xml().encode("utf-8"))

    @classmethod
    def from_xml(cls, xml_text: str) -> "XacmlAuthzDecisionStatement":
        import re

        match = re.match(
            r'<xacml-saml:XACMLAuthzDecisionStatement InResponseTo="([^"]*)" '
            r'IssueInstant="([^"]*)">'
            r"<saml:Issuer>([^<]*)</saml:Issuer>"
            r"(<Response>.*</Response>)(<Request>.*</Request>)?"
            r"</xacml-saml:XACMLAuthzDecisionStatement>$",
            xml_text,
            re.DOTALL,
        )
        if match is None:
            raise ValueError("not an XACMLAuthzDecisionStatement")
        echo = match.group(5)
        return cls(
            response=parse_response(match.group(4)),
            in_response_to=match.group(1),
            issuer=match.group(3),
            issue_instant=float(match.group(2)),
            request_echo=parse_request(echo) if echo else None,
        )
