"""SAML profile of XACML.

"The SAML profile for XACML defines how to use SAML to protect,
transport, and request XACML schema instances and other information in
XACML-based authorisation systems" (paper §2.3).  This module provides
the two message shapes that profile defines:

* :class:`XacmlAuthzDecisionQuery` — a SAML query wrapping an XACML
  request context (PEP → PDP);
* :class:`XacmlAuthzDecisionStatement` — a SAML statement wrapping an
  XACML response context (PDP → PEP), usable inside a signed assertion so
  decisions are attributable and non-forgeable.

Plus the batched envelope pair the decision fabric rides on:

* :class:`XacmlAuthzDecisionBatchQuery` — N queries under one envelope
  (and, in secure mode, one WS-Security signature for the lot);
* :class:`XacmlAuthzDecisionBatchStatement` — the N matching statements,
  one per inner query id, in query order.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import Optional

from ..xacml.context import RequestContext, ResponseContext
from ..xacml.parser import parse_request, parse_response
from ..xacml.serializer import serialize_request, serialize_response

_query_ids = itertools.count(1)
_batch_ids = itertools.count(1)


@dataclass(frozen=True)
class XacmlAuthzDecisionQuery:
    """A SAML-wrapped XACML request, as sent by a PEP to a PDP."""

    request: RequestContext
    issuer: str
    issue_instant: float
    #: When true the PDP must include the evaluated request back in its
    #: statement, binding decision to request (profile's ReturnContext).
    return_context: bool = False
    query_id: str = field(default_factory=lambda: f"xacmlq-{next(_query_ids)}")

    def to_xml(self) -> str:
        return (
            f'<xacml-samlp:XACMLAuthzDecisionQuery ID="{self.query_id}" '
            f'IssueInstant="{self.issue_instant}" '
            f'ReturnContext="{"true" if self.return_context else "false"}">'
            f"<saml:Issuer>{self.issuer}</saml:Issuer>"
            f"{serialize_request(self.request)}"
            f"</xacml-samlp:XACMLAuthzDecisionQuery>"
        )

    @property
    def wire_size(self) -> int:
        return len(self.to_xml().encode("utf-8"))

    @classmethod
    def from_xml(cls, xml_text: str) -> "XacmlAuthzDecisionQuery":
        import re

        match = re.match(
            r'<xacml-samlp:XACMLAuthzDecisionQuery ID="([^"]*)" '
            r'IssueInstant="([^"]*)" ReturnContext="([^"]*)">'
            r"<saml:Issuer>([^<]*)</saml:Issuer>(<Request>.*</Request>)"
            r"</xacml-samlp:XACMLAuthzDecisionQuery>$",
            xml_text,
            re.DOTALL,
        )
        if match is None:
            raise ValueError("not an XACMLAuthzDecisionQuery")
        return cls(
            request=parse_request(match.group(5)),
            issuer=match.group(4),
            issue_instant=float(match.group(2)),
            return_context=match.group(3) == "true",
            query_id=match.group(1),
        )


@dataclass(frozen=True)
class XacmlAuthzDecisionStatement:
    """A SAML-wrapped XACML response, as returned by a PDP."""

    response: ResponseContext
    in_response_to: str
    issuer: str
    issue_instant: float
    request_echo: Optional[RequestContext] = None

    def to_xml(self) -> str:
        echo = (
            serialize_request(self.request_echo)
            if self.request_echo is not None
            else ""
        )
        return (
            f'<xacml-saml:XACMLAuthzDecisionStatement '
            f'InResponseTo="{self.in_response_to}" '
            f'IssueInstant="{self.issue_instant}">'
            f"<saml:Issuer>{self.issuer}</saml:Issuer>"
            f"{serialize_response(self.response)}{echo}"
            f"</xacml-saml:XACMLAuthzDecisionStatement>"
        )

    @property
    def wire_size(self) -> int:
        return len(self.to_xml().encode("utf-8"))

    @classmethod
    def from_xml(cls, xml_text: str) -> "XacmlAuthzDecisionStatement":
        import re

        match = re.match(
            r'<xacml-saml:XACMLAuthzDecisionStatement InResponseTo="([^"]*)" '
            r'IssueInstant="([^"]*)">'
            r"<saml:Issuer>([^<]*)</saml:Issuer>"
            r"(<Response>.*</Response>)(<Request>.*</Request>)?"
            r"</xacml-saml:XACMLAuthzDecisionStatement>$",
            xml_text,
            re.DOTALL,
        )
        if match is None:
            raise ValueError("not an XACMLAuthzDecisionStatement")
        echo = match.group(5)
        return cls(
            response=parse_response(match.group(4)),
            in_response_to=match.group(1),
            issuer=match.group(3),
            issue_instant=float(match.group(2)),
            request_echo=parse_request(echo) if echo else None,
        )


@dataclass(frozen=True)
class XacmlAuthzDecisionBatchQuery:
    """N decision queries carried in one envelope (PEP → PDP).

    Per-message costs — one transport round-trip and, on the secure
    channel, one WS-Security verification — are paid once for the whole
    batch instead of once per request.  A batch of one is wire-compatible
    with sending the inner query alone apart from the wrapper element.
    """

    queries: tuple[XacmlAuthzDecisionQuery, ...]
    issuer: str
    issue_instant: float
    batch_id: str = field(default_factory=lambda: f"xacmlb-{next(_batch_ids)}")

    def __post_init__(self) -> None:
        if not self.queries:
            raise ValueError("a batch query needs at least one inner query")

    @classmethod
    def for_requests(
        cls,
        requests: list[RequestContext],
        issuer: str,
        issue_instant: float,
    ) -> "XacmlAuthzDecisionBatchQuery":
        return cls(
            queries=tuple(
                XacmlAuthzDecisionQuery(
                    request=request, issuer=issuer, issue_instant=issue_instant
                )
                for request in requests
            ),
            issuer=issuer,
            issue_instant=issue_instant,
        )

    def to_xml(self) -> str:
        inner = "".join(query.to_xml() for query in self.queries)
        return (
            f'<xacml-samlp:XACMLAuthzDecisionBatchQuery ID="{self.batch_id}" '
            f'IssueInstant="{self.issue_instant}" Count="{len(self.queries)}">'
            f"<saml:Issuer>{self.issuer}</saml:Issuer>"
            f"{inner}"
            f"</xacml-samlp:XACMLAuthzDecisionBatchQuery>"
        )

    @property
    def wire_size(self) -> int:
        return len(self.to_xml().encode("utf-8"))

    @classmethod
    def from_xml(cls, xml_text: str) -> "XacmlAuthzDecisionBatchQuery":
        match = re.match(
            r'<xacml-samlp:XACMLAuthzDecisionBatchQuery ID="([^"]*)" '
            r'IssueInstant="([^"]*)" Count="(\d+)">'
            r"<saml:Issuer>([^<]*)</saml:Issuer>(.*)"
            r"</xacml-samlp:XACMLAuthzDecisionBatchQuery>$",
            xml_text,
            re.DOTALL,
        )
        if match is None:
            raise ValueError("not an XACMLAuthzDecisionBatchQuery")
        queries = tuple(
            XacmlAuthzDecisionQuery.from_xml(m.group(0))
            for m in re.finditer(
                r"<xacml-samlp:XACMLAuthzDecisionQuery .*?"
                r"</xacml-samlp:XACMLAuthzDecisionQuery>",
                match.group(5),
                re.DOTALL,
            )
        )
        if len(queries) != int(match.group(3)):
            raise ValueError(
                f"batch declares {match.group(3)} queries, "
                f"found {len(queries)}"
            )
        return cls(
            queries=queries,
            issuer=match.group(4),
            issue_instant=float(match.group(2)),
            batch_id=match.group(1),
        )


@dataclass(frozen=True)
class XacmlAuthzDecisionBatchStatement:
    """The PDP's answers to a batch query, in query order (PDP → PEP)."""

    statements: tuple[XacmlAuthzDecisionStatement, ...]
    in_response_to: str
    issuer: str
    issue_instant: float

    def to_xml(self) -> str:
        inner = "".join(statement.to_xml() for statement in self.statements)
        return (
            f"<xacml-saml:XACMLAuthzDecisionBatchStatement "
            f'InResponseTo="{self.in_response_to}" '
            f'IssueInstant="{self.issue_instant}" '
            f'Count="{len(self.statements)}">'
            f"<saml:Issuer>{self.issuer}</saml:Issuer>"
            f"{inner}"
            f"</xacml-saml:XACMLAuthzDecisionBatchStatement>"
        )

    @property
    def wire_size(self) -> int:
        return len(self.to_xml().encode("utf-8"))

    @classmethod
    def from_xml(cls, xml_text: str) -> "XacmlAuthzDecisionBatchStatement":
        match = re.match(
            r"<xacml-saml:XACMLAuthzDecisionBatchStatement "
            r'InResponseTo="([^"]*)" IssueInstant="([^"]*)" Count="(\d+)">'
            r"<saml:Issuer>([^<]*)</saml:Issuer>(.*)"
            r"</xacml-saml:XACMLAuthzDecisionBatchStatement>$",
            xml_text,
            re.DOTALL,
        )
        if match is None:
            raise ValueError("not an XACMLAuthzDecisionBatchStatement")
        statements = tuple(
            XacmlAuthzDecisionStatement.from_xml(m.group(0))
            for m in re.finditer(
                r"<xacml-saml:XACMLAuthzDecisionStatement .*?"
                r"</xacml-saml:XACMLAuthzDecisionStatement>",
                match.group(5),
                re.DOTALL,
            )
        )
        if len(statements) != int(match.group(3)):
            raise ValueError(
                f"batch declares {match.group(3)} statements, "
                f"found {len(statements)}"
            )
        return cls(
            statements=statements,
            in_response_to=match.group(1),
            issuer=match.group(4),
            issue_instant=float(match.group(2)),
        )
