"""repro: dependable access control for multi-domain computing environments.

A from-scratch reproduction of Machulak, Parkin & van Moorsel,
*Architecting Dependable Access Control Systems for Multi-Domain Computing
Environments* (DSN 2008).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the experiment-by-experiment reproduction record.

Layering (bottom-up):

``observability`` → ``simnet`` → ``wss`` → ``wsvc`` → ``xacml`` →
``saml`` → ``components`` → ``domain`` → ``models`` → ``capability`` →
``admin`` → ``revocation`` → ``core`` → ``workloads`` → ``bench``
"""

__version__ = "1.0.0"

__all__ = [
    "observability",
    "simnet",
    "wss",
    "wsvc",
    "xacml",
    "saml",
    "components",
    "domain",
    "models",
    "capability",
    "admin",
    "revocation",
    "core",
    "workloads",
    "bench",
]
