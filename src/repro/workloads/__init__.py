"""Synthetic workloads and named scenarios for experiments and examples."""

from .generator import (
    ACTIONS,
    AccessEvent,
    GeneratedWorkload,
    PolicyCorpusSpec,
    WorkloadSpec,
    build_workload,
    generate_policy_corpus,
    request_stream,
)
from .highload import (
    ClosedLoopStats,
    MultiPepStats,
    PepLoadStats,
    access_requests,
    run_closed_loop,
    run_closed_loop_multi,
)
from .scenarios import (
    Scenario,
    enterprise_soa,
    grid_vo,
    healthcare_federation,
    revocation_churn,
)

__all__ = [
    "ACTIONS",
    "AccessEvent",
    "ClosedLoopStats",
    "GeneratedWorkload",
    "MultiPepStats",
    "PepLoadStats",
    "PolicyCorpusSpec",
    "Scenario",
    "WorkloadSpec",
    "access_requests",
    "build_workload",
    "enterprise_soa",
    "generate_policy_corpus",
    "grid_vo",
    "healthcare_federation",
    "request_stream",
    "revocation_churn",
    "run_closed_loop",
    "run_closed_loop_multi",
]
