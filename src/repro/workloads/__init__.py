"""Synthetic workloads and named scenarios for experiments and examples."""

from .generator import (
    ACTIONS,
    AccessEvent,
    GeneratedWorkload,
    PolicyCorpusSpec,
    WorkloadSpec,
    build_workload,
    generate_policy_corpus,
    request_stream,
)
from .highload import (
    ClosedLoopStats,
    MultiPepStats,
    PepLoadStats,
    access_requests,
    run_closed_loop,
    run_closed_loop_multi,
)
from .multidomain import (
    DomainLoadStats,
    FederatedLoadStats,
    StalenessAudit,
    federated_resource_id,
    multi_domain_request_mix,
    run_closed_loop_federated,
)
from .scenarios import (
    Scenario,
    enterprise_soa,
    grid_vo,
    healthcare_federation,
    revocation_churn,
)

__all__ = [
    "ACTIONS",
    "AccessEvent",
    "ClosedLoopStats",
    "DomainLoadStats",
    "FederatedLoadStats",
    "GeneratedWorkload",
    "MultiPepStats",
    "PepLoadStats",
    "PolicyCorpusSpec",
    "Scenario",
    "StalenessAudit",
    "WorkloadSpec",
    "access_requests",
    "build_workload",
    "enterprise_soa",
    "federated_resource_id",
    "generate_policy_corpus",
    "grid_vo",
    "healthcare_federation",
    "multi_domain_request_mix",
    "request_stream",
    "revocation_churn",
    "run_closed_loop",
    "run_closed_loop_multi",
    "run_closed_loop_federated",
]
