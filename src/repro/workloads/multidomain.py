"""Multi-domain closed-loop workloads: remote-fraction request mixes.

The single- and multi-PEP closed loops of :mod:`repro.workloads.highload`
drive one domain's PEPs against one domain's decision tier.  Federation
(experiment E18) needs the multi-*domain* version: several domains'
PEP fleets run concurrently on one network, and a configurable fraction
of each PEP's requests target resources *governed by another domain* —
the traffic that must cross the gateway→gateway path (or, in the naive
baseline, go per-PEP straight at the remote PDP tier).

:func:`multi_domain_request_mix` builds one PEP's stream over the
VO-wide resource population with a given remote fraction;
:func:`run_closed_loop_federated` is a deprecated wrapper that drives
every domain's PEPs through :func:`~repro.workloads.highload.
drive_closed_loop` (one driver, one implementation) with the domain
names as group labels and re-dresses the per-group results in the
historic per-domain shape.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..xacml.context import RequestContext
from .highload import ClosedLoopStats, PepLoadStats, drive_closed_loop


def federated_resource_id(domain_name: str, index: int) -> str:
    """The canonical VO-wide resource name: ``res.<domain>.<index>``."""
    return f"res.{domain_name}.{index}"


def multi_domain_request_mix(
    home_domain: str,
    domain_names: Sequence[str],
    count: int,
    remote_fraction: float,
    resources_per_domain: int = 8,
    subjects: int = 100,
    read_fraction: float = 0.9,
    seed: int = 0,
) -> list[RequestContext]:
    """One PEP's request stream with a controlled remote share.

    Each request targets a uniformly drawn resource of its governing
    domain: the home domain with probability ``1 - remote_fraction``,
    otherwise a uniformly drawn *other* domain.  Subjects are shared
    across the whole VO population so identical hot requests exist for
    the dedup tiers to merge.

    Args:
        home_domain: the domain whose PEP will submit this stream.
        domain_names: every domain in the VO (including the home one).
        count: stream length.
        remote_fraction: probability a request is remote-governed.
        seed: per-PEP seed; different PEPs should use different seeds so
            streams overlap without being identical.
    """
    if not 0.0 <= remote_fraction <= 1.0:
        raise ValueError(
            f"remote_fraction must be in [0, 1], got {remote_fraction}"
        )
    remote_domains = [name for name in domain_names if name != home_domain]
    if remote_fraction > 0 and not remote_domains:
        raise ValueError(
            f"remote_fraction {remote_fraction} needs at least one domain "
            f"besides {home_domain!r}"
        )
    rng = random.Random(seed)
    requests = []
    for _ in range(count):
        governing = (
            remote_domains[rng.randrange(len(remote_domains))]
            if remote_domains and rng.random() < remote_fraction
            else home_domain
        )
        requests.append(
            RequestContext.simple(
                f"user-{rng.randrange(subjects)}",
                federated_resource_id(
                    governing, rng.randrange(resources_per_domain)
                ),
                "read" if rng.random() < read_fraction else "delete",
            )
        )
    return requests


class StalenessAudit:
    """Prices cache staleness against one mid-workload revocation.

    Used as the closed-loop driver's ``observer``: every completion for
    the watched subject is timestamped and classified against the
    revocation instant and the coherence window.  A *violation* is a
    grant completing after ``revoked_at + coherence_window`` — the
    paper's §3.2 "false positive" served from a cache the coherence
    machinery should already have cleaned.  Grants completing inside
    the window are the priced (allowed) staleness; grants before the
    revocation are normal service.

    Args:
        subject_id: the subject whose revocation is audited.
        coherence_window: simulated seconds after the revocation in
            which stale grants are tolerated (the swept strategy's
            propagation bound plus in-flight round-trip slack).
    """

    def __init__(self, subject_id: str, coherence_window: float) -> None:
        if coherence_window < 0:
            raise ValueError(
                f"coherence_window must be >= 0, got {coherence_window}"
            )
        self.subject_id = subject_id
        self.coherence_window = coherence_window
        self.revoked_at: float | None = None
        self.grants_before = 0
        self.denials_after = 0
        self.stale_grants_in_window = 0
        #: Completion times of post-window grants — the violations.
        self.violations: list[float] = []

    def mark_revoked(self, at: float) -> None:
        self.revoked_at = at

    def __call__(self, pep, request, result) -> None:
        if request is None or request.subject_id != self.subject_id:
            return
        now = pep.now
        if self.revoked_at is None or now < self.revoked_at:
            if result.granted:
                self.grants_before += 1
            return
        if not result.granted:
            self.denials_after += 1
        elif now <= self.revoked_at + self.coherence_window:
            self.stale_grants_in_window += 1
        else:
            self.violations.append(now)

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def __repr__(self) -> str:
        return (
            f"StalenessAudit({self.subject_id!r}, "
            f"window={self.coherence_window}, "
            f"violations={self.violation_count})"
        )


@dataclass(frozen=True)
class DomainLoadStats:
    """One domain's share of a federated closed-loop run."""

    name: str
    submitted: int
    completed: int
    granted: int
    denied: int
    #: Worst per-PEP p95 submit→completion delay inside this domain.
    worst_pep_p95: float
    per_pep: tuple[PepLoadStats, ...]


@dataclass(frozen=True)
class FederatedLoadStats:
    """What one multi-domain closed-loop run measured.

    ``fleet`` aggregates the whole VO (every domain's PEPs pooled);
    ``per_domain`` regroups the per-PEP breakdowns by owning domain.
    """

    fleet: ClosedLoopStats
    per_domain: tuple[DomainLoadStats, ...]

    def domain(self, name: str) -> DomainLoadStats:
        for stats in self.per_domain:
            if stats.name == name:
                return stats
        raise KeyError(f"no domain {name!r} in this run")


def run_closed_loop_federated(
    peps_by_domain: Mapping[str, Sequence],
    requests_by_domain: Mapping[str, Sequence[Sequence[RequestContext]]],
    concurrency: int,
    horizon: float = 300.0,
    observer=None,
) -> FederatedLoadStats:
    """Deprecated: :func:`~repro.workloads.highload.drive_closed_loop`
    with the domain names as group labels.

    Kept for historic call sites; returns the same
    :class:`FederatedLoadStats` shape as always.

    Args:
        peps_by_domain: domain name → that domain's PEPs (batching
            enabled, registered with the domain's gateway or carrying
            their own dispatch — both E18 modes use this driver).
        requests_by_domain: domain name → one request sequence per PEP,
            aligned with ``peps_by_domain``.
        concurrency: outstanding-request window per PEP.
        horizon: simulated-seconds safety stop.
        observer: optional per-completion ``observer(pep, request,
            result)`` callback, passed through to the shared driver
            (staleness accounting for the E18 cache grid).
    """
    warnings.warn(
        "run_closed_loop_federated is deprecated; use "
        "repro.workloads.highload.drive_closed_loop with groups=",
        DeprecationWarning,
        stacklevel=2,
    )
    if set(peps_by_domain) != set(requests_by_domain):
        raise ValueError(
            f"domains differ: {sorted(peps_by_domain)} vs "
            f"{sorted(requests_by_domain)}"
        )
    domain_names = sorted(peps_by_domain)
    peps, requests, owners = [], [], []
    for domain_name in domain_names:
        domain_peps = list(peps_by_domain[domain_name])
        domain_requests = list(requests_by_domain[domain_name])
        if len(domain_peps) != len(domain_requests):
            raise ValueError(
                f"domain {domain_name!r}: {len(domain_peps)} PEPs but "
                f"{len(domain_requests)} request sequences"
            )
        peps.extend(domain_peps)
        requests.extend(domain_requests)
        owners.extend([domain_name] * len(domain_peps))
    run = drive_closed_loop(
        peps,
        requests,
        concurrency,
        horizon=horizon,
        observer=observer,
        groups=owners,
    )
    per_domain = tuple(
        DomainLoadStats(
            name=group.name,
            submitted=group.submitted,
            completed=group.completed,
            granted=group.granted,
            denied=group.denied,
            worst_pep_p95=group.worst_pep_p95,
            per_pep=group.per_pep,
        )
        for group in run.per_group
    )
    return FederatedLoadStats(fleet=run.fleet, per_domain=per_domain)
