"""Realistic large populations: the state axis of experiment E19.

:mod:`repro.workloads.generator` builds *small* federated workloads —
dozens of subjects wired into live domain components.  The north star
is millions of users, and at that scale the interesting questions are
about *state* (who holds which subject's attributes) rather than wiring.
This module produces populations of up to 10^6+ subjects with the shape
real deployments have, without ever materialising the population:

* **streaming** — every subject is derived on demand, O(log n) per
  subject, deterministically from ``(seed, index)``; request streams
  are generators;
* **Zipf popularity** — subject activity and resource popularity follow
  bounded Zipf distributions, sampled in O(1) per draw by rejection
  inversion (Hörmann & Derflinger 1996) instead of materialising the
  n-entry weight vector :func:`repro.workloads.generator._zipf_weights`
  needs;
* **org-chart structure** — subjects form an implicit complete b-ary
  management tree: depth determines management role (executive /
  director / manager), leaves draw individual-contributor roles from a
  weighted distribution, organisational units are subtrees, and the
  delegation chain of a subject is its management chain;
* **attribute authority** — :meth:`Population.attribute_resolver`
  adapts the population to the
  :data:`repro.components.placement.AttributeResolver` contract, so a
  sharded PDP tier can fault any subject's attributes in lazily and
  "repopulate after rebalance" is exact.

The request stream plugs into the same machinery as
:func:`~repro.workloads.generator.request_stream` (it yields the same
:class:`~repro.workloads.generator.AccessEvent`) and into the closed-
loop drivers of :mod:`repro.workloads.highload`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..xacml import combining
from ..xacml.attributes import (
    AttributeValue,
    Category,
    SUBJECT_ROLE,
    integer,
    string,
)
from ..xacml.context import RequestContext
from ..xacml.expressions import attribute_equals
from ..xacml.policy import Policy
from ..xacml.rules import deny_rule, permit_rule
from ..xacml.targets import subject_resource_action_target
from .generator import ACTIONS, AccessEvent

#: Attribute identifiers the population's subjects carry (SUBJECT_ROLE
#: is the standard XACML 2.0 role attribute; the rest use the repro
#: namespace).
SUBJECT_UNIT = "urn:repro:subject:unit"
SUBJECT_CLEARANCE = "urn:repro:subject:clearance"
SUBJECT_MANAGER = "urn:repro:subject:manager"

#: Management roles by tree depth; anyone deeper with reports is a
#: plain manager.
_DEPTH_ROLES = ("executive", "director")


@dataclass
class PopulationSpec:
    """Parameters of a synthetic organisation-shaped population."""

    #: Distinct subjects (the org tree's node count).
    subjects: int = 10_000
    #: Distinct resources.
    resources: int = 1_000
    #: Fan-out of the management tree (direct reports per manager).
    branching: int = 8
    #: Individual-contributor roles for leaf subjects, with draw weights.
    roles: tuple[str, ...] = ("engineer", "analyst", "contractor")
    role_weights: tuple[float, ...] = (0.5, 0.3, 0.2)
    #: Tree depth whose ancestor names a subject's organisational unit.
    unit_depth: int = 2
    #: Zipf exponents: subject activity / resource popularity skew
    #: (0 = uniform).
    subject_skew: float = 1.1
    resource_skew: float = 1.0
    #: Action mix: reads, then the rest split between write and delete.
    read_fraction: float = 0.8
    delete_fraction: float = 0.05
    seed: int = 0
    domain: str = "domain-a"

    def __post_init__(self) -> None:
        if self.subjects < 1:
            raise ValueError(f"subjects must be >= 1, got {self.subjects}")
        if self.resources < 1:
            raise ValueError(f"resources must be >= 1, got {self.resources}")
        if self.branching < 2:
            raise ValueError(f"branching must be >= 2, got {self.branching}")
        if not self.roles:
            raise ValueError("at least one individual-contributor role")
        if len(self.role_weights) != len(self.roles):
            raise ValueError(
                f"{len(self.roles)} roles but "
                f"{len(self.role_weights)} role_weights"
            )
        if any(weight <= 0 for weight in self.role_weights):
            raise ValueError("role_weights must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}"
            )
        if not 0.0 <= self.delete_fraction <= 1.0:
            raise ValueError(
                f"delete_fraction must be in [0, 1], got "
                f"{self.delete_fraction}"
            )


class ZipfSampler:
    """Bounded Zipf(n, s) ranks in O(1) per draw, O(1) memory.

    Classic weighted choice needs the n-entry weight vector — already
    40 MB of floats at n = 5·10^6 — and O(log n) per draw.  Rejection
    inversion (Hörmann & Derflinger 1996, the algorithm behind Apache
    Commons' ``RejectionInversionZipfSampler``) inverts the integral of
    the density instead, so nothing is materialised and the population
    can scale to 10^6+ subjects.  ``exponent <= 0`` degrades to uniform.
    Draws consume the supplied ``random.Random`` deterministically.
    """

    def __init__(self, n: int, exponent: float, rng: random.Random) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self.exponent = exponent
        self.rng = rng
        if exponent <= 0:
            return
        self._h_x1 = self._h(1.5) - 1.0
        self._h_n = self._h(n + 0.5)
        self._s = 2.0 - self._h_inv(self._h(2.5) - self._power(2.0))

    def _power(self, x: float) -> float:
        return math.exp(-self.exponent * math.log(x))

    def _h(self, x: float) -> float:
        # Antiderivative of x^(-exponent).
        if self.exponent == 1.0:
            return math.log(x)
        return (x ** (1.0 - self.exponent)) / (1.0 - self.exponent)

    def _h_inv(self, x: float) -> float:
        if self.exponent == 1.0:
            return math.exp(x)
        return (x * (1.0 - self.exponent)) ** (1.0 / (1.0 - self.exponent))

    def sample(self) -> int:
        """One rank in [1, n]; rank 1 is the most popular."""
        if self.exponent <= 0:
            return self.rng.randrange(self.n) + 1
        while True:
            u = self._h_n + self.rng.random() * (self._h_x1 - self._h_n)
            x = self._h_inv(u)
            k = int(x + 0.5)
            if k < 1:
                k = 1
            elif k > self.n:
                k = self.n
            if k - x <= self._s or u >= self._h(k + 0.5) - self._power(k):
                return k


@dataclass(frozen=True)
class SubjectProfile:
    """One subject's derived identity: role, org position, attributes."""

    index: int
    subject_id: str
    role: str
    depth: int
    unit: str
    manager_id: Optional[str]
    clearance: int

    @property
    def is_manager(self) -> bool:
        return self.role in ("manager",) + _DEPTH_ROLES


class Population:
    """A streaming, deterministic, organisation-shaped population.

    Subjects are the nodes of an implicit complete ``branching``-ary
    tree over indices ``0 .. subjects-1`` (node ``i``'s manager is
    ``(i-1) // branching``), so org structure costs nothing to store
    and any subject's profile derives in O(log n) from its index plus a
    per-subject ``random.Random`` keyed on ``(seed, index)``.
    """

    def __init__(self, spec: PopulationSpec) -> None:
        self.spec = spec
        self._subject_width = len(str(max(spec.subjects - 1, 1)))
        self._resource_width = len(str(max(spec.resources - 1, 1)))
        self._subject_prefix = f"subj-{spec.seed}-"
        self._resource_prefix = f"res-{spec.seed}-"
        self._subject_scramble = _coprime_multiplier(spec.subjects)
        self._resource_scramble = _coprime_multiplier(spec.resources)

    # -- identities ---------------------------------------------------------------

    def subject_id(self, index: int) -> str:
        self._check_subject(index)
        return f"{self._subject_prefix}{index:0{self._subject_width}d}"

    def resource_id(self, index: int) -> str:
        if not 0 <= index < self.spec.resources:
            raise ValueError(f"resource index {index} out of range")
        return f"{self._resource_prefix}{index:0{self._resource_width}d}"

    def subject_index(self, subject_id: str) -> Optional[int]:
        """Inverse of :meth:`subject_id`; None for foreign identifiers."""
        if not subject_id.startswith(self._subject_prefix):
            return None
        try:
            index = int(subject_id[len(self._subject_prefix):])
        except ValueError:
            return None
        if not 0 <= index < self.spec.subjects:
            return None
        return index

    def _check_subject(self, index: int) -> None:
        if not 0 <= index < self.spec.subjects:
            raise ValueError(f"subject index {index} out of range")

    # -- org structure ------------------------------------------------------------

    def manager_index(self, index: int) -> Optional[int]:
        self._check_subject(index)
        if index == 0:
            return None
        return (index - 1) // self.spec.branching

    def _depth(self, index: int) -> int:
        depth = 0
        while index > 0:
            index = (index - 1) // self.spec.branching
            depth += 1
        return depth

    def _has_reports(self, index: int) -> bool:
        return index * self.spec.branching + 1 < self.spec.subjects

    def _ancestor_at_depth(self, index: int, depth: int) -> int:
        while self._depth(index) > depth:
            index = (index - 1) // self.spec.branching
        return index

    def subject_profile(self, index: int) -> SubjectProfile:
        """Derive one subject, O(log n), no population-wide state.

        Management roles come from tree position (root = executive,
        depth 1 = director, any deeper node with reports = manager);
        leaves draw an individual-contributor role from the weighted
        role distribution with a per-subject rng, so the same
        ``(seed, index)`` always yields the same subject.
        """
        self._check_subject(index)
        depth = self._depth(index)
        if self._has_reports(index):
            role = (
                _DEPTH_ROLES[depth]
                if depth < len(_DEPTH_ROLES)
                else "manager"
            )
        else:
            rng = random.Random(f"{self.spec.seed}:subj:{index}")
            role = rng.choices(
                self.spec.roles, weights=self.spec.role_weights
            )[0]
        manager = self.manager_index(index)
        unit_root = self._ancestor_at_depth(
            index, min(depth, self.spec.unit_depth)
        )
        return SubjectProfile(
            index=index,
            subject_id=self.subject_id(index),
            role=role,
            depth=depth,
            unit=f"unit-{unit_root}",
            manager_id=None if manager is None else self.subject_id(manager),
            clearance=max(0, len(_DEPTH_ROLES) + 1 - depth),
        )

    def delegation_chain(self, index: int) -> list[str]:
        """The subject's management chain, subject first, root last.

        This is the org-chart-shaped delegation graph: authority to act
        on a subject's behalf flows along management edges, so chain
        length is O(log_b n) — the realistic shape for delegation-depth
        experiments.
        """
        chain = [self.subject_id(index)]
        manager = self.manager_index(index)
        while manager is not None:
            chain.append(self.subject_id(manager))
            manager = self.manager_index(manager)
        return chain

    # -- attribute authority ------------------------------------------------------

    def subject_attributes(
        self, subject_id: str
    ) -> dict[str, list[AttributeValue]]:
        """Authoritative attributes of one subject ({} for strangers)."""
        index = self.subject_index(subject_id)
        if index is None:
            return {}
        profile = self.subject_profile(index)
        attributes = {
            SUBJECT_ROLE: [string(profile.role)],
            SUBJECT_UNIT: [string(profile.unit)],
            SUBJECT_CLEARANCE: [integer(profile.clearance)],
        }
        if profile.manager_id is not None:
            attributes[SUBJECT_MANAGER] = [string(profile.manager_id)]
        return attributes

    def attribute_resolver(self):
        """This population as a :data:`~repro.components.placement.
        AttributeResolver` (what sharded partitions fault state from)."""
        return self.subject_attributes

    def populate_pip(self, store, limit: Optional[int] = None) -> int:
        """Eagerly load subject attributes into a PIP's AttributeStore.

        Only sensible for small populations (tests, unsharded
        baselines); ``limit`` caps how many subjects to materialise.
        Returns the number loaded.
        """
        count = self.spec.subjects if limit is None else min(
            limit, self.spec.subjects
        )
        for index in range(count):
            subject_id = self.subject_id(index)
            for attribute_id, values in self.subject_attributes(
                subject_id
            ).items():
                store.set_subject_attribute(subject_id, attribute_id, values)
        return count

    # -- policies -----------------------------------------------------------------

    def policy_set(self, policies: Optional[int] = None) -> list[Policy]:
        """Role-based policies governing the population's resources.

        With ``policies=None`` (the default): one policy per action,
        targeted on the action id (so the target index keeps candidate
        sets small) with one role-conditioned permit rule per entitled
        role.  Entitlement tightens with privilege: everyone reads,
        individual contributors above contractor plus all management
        write, only senior management deletes.  Decisions therefore
        *require* resolving the subject's role attribute — the
        per-subject state E19 shards — and no rule constrains resources,
        so the store replicates cleanly across a subject-sharded tier.

        With ``policies=N``: a mined-looking corpus of ``N`` per-resource
        policies (the "Mining Domain-Based Policies" shape), each
        targeting one ``(resource, action)`` pair with role-conditioned
        permit rules and an occasional disjoint-role deny.  The corpus
        is *clean by construction* — permitted and denied role sets are
        derived per ``(resource, action)`` bucket and kept disjoint, so
        the static analyzer must report zero findings on it; E25 pins
        exactly that, and uses the corpus for wall-time scaling.
        """
        if policies is not None:
            return self._mined_policy_set(policies)
        management = _DEPTH_ROLES + ("manager",)
        ic_roles = tuple(self.spec.roles)
        writers = tuple(
            role for role in ic_roles if role != "contractor"
        ) + management
        entitlements = {
            "read": ic_roles + management,
            "write": writers,
            "delete": _DEPTH_ROLES,
        }
        policies = []
        for action in ACTIONS:
            roles = entitlements.get(action, management)
            policies.append(
                Policy(
                    policy_id=f"pop-{self.spec.seed}-{action}",
                    target=subject_resource_action_target(action_id=action),
                    rules=tuple(
                        permit_rule(
                            f"pop-{action}-{role}",
                            condition=attribute_equals(
                                Category.SUBJECT, SUBJECT_ROLE, string(role)
                            ),
                        )
                        for role in roles
                    ),
                    rule_combining=combining.RULE_PERMIT_OVERRIDES,
                )
            )
        return policies

    def _mined_policy_set(self, count: int) -> list[Policy]:
        if count < 1:
            raise ValueError(f"policies must be >= 1, got {count}")
        management = _DEPTH_ROLES + ("manager",)
        all_roles = tuple(self.spec.roles) + management
        out: list[Policy] = []
        for index in range(count):
            resource = index % self.spec.resources
            action = ACTIONS[(index // self.spec.resources) % len(ACTIONS)]
            # Role sets derive from the (resource, action) bucket, not
            # the policy index, so same-bucket policies never contradict
            # each other and denied roles stay disjoint from permitted
            # ones — zero analyzer findings by construction.
            rng = random.Random(
                f"{self.spec.seed}:mined:{resource}:{action}"
            )
            permitted = tuple(
                rng.sample(all_roles, k=rng.randrange(1, 4))
            )
            denied = tuple(
                role
                for role in all_roles
                if role not in permitted and rng.random() < 0.2
            )[:1]
            rules = tuple(
                permit_rule(
                    f"mined-{index}-permit-{role}",
                    condition=attribute_equals(
                        Category.SUBJECT, SUBJECT_ROLE, string(role)
                    ),
                )
                for role in permitted
            ) + tuple(
                deny_rule(
                    f"mined-{index}-deny-{role}",
                    condition=attribute_equals(
                        Category.SUBJECT, SUBJECT_ROLE, string(role)
                    ),
                )
                for role in denied
            )
            out.append(
                Policy(
                    policy_id=f"mined-{self.spec.seed}-{index:05d}",
                    target=subject_resource_action_target(
                        resource_id=self.resource_id(resource),
                        action_id=action,
                    ),
                    rules=rules,
                    rule_combining=combining.RULE_PERMIT_OVERRIDES,
                )
            )
        return out

    # -- request streams ----------------------------------------------------------

    def _scrambled_subject(self, rank: int) -> int:
        # Popularity rank → subject index, decorrelating activity from
        # org position (the busiest subject should not always be the
        # CEO) while keeping the mapping a deterministic bijection.
        return (rank - 1) * self._subject_scramble % self.spec.subjects

    def _scrambled_resource(self, rank: int) -> int:
        return (rank - 1) * self._resource_scramble % self.spec.resources

    def events(
        self, count: int, seed: Optional[int] = None
    ) -> Iterator[AccessEvent]:
        """Stream ``count`` access events, Zipf-skewed both ways.

        A generator: nothing population-sized is materialised, so the
        same code path drives the 10^4 and 10^6 tiers of E19.
        """
        spec = self.spec
        rng = random.Random(
            f"{spec.seed}:stream:{spec.seed if seed is None else seed}"
        )
        subject_ranks = ZipfSampler(spec.subjects, spec.subject_skew, rng)
        resource_ranks = ZipfSampler(spec.resources, spec.resource_skew, rng)
        for _ in range(count):
            subject = self._scrambled_subject(subject_ranks.sample())
            resource = self._scrambled_resource(resource_ranks.sample())
            draw = rng.random()
            if draw < spec.read_fraction:
                action = "read"
            elif draw < spec.read_fraction + spec.delete_fraction:
                action = "delete"
            else:
                action = "write"
            yield AccessEvent(
                subject_id=self.subject_id(subject),
                subject_domain=spec.domain,
                resource_id=self.resource_id(resource),
                resource_domain=spec.domain,
                action_id=action,
            )

    def request_contexts(
        self, count: int, seed: Optional[int] = None
    ) -> Iterator[RequestContext]:
        """The event stream as bare XACML request contexts.

        Requests carry only the three canonical identifiers — the
        subject's role/unit/clearance stay server-side state the PDP
        must resolve, which is exactly the state axis E19 measures.
        """
        for event in self.events(count, seed=seed):
            yield RequestContext.simple(
                subject_id=event.subject_id,
                resource_id=event.resource_id,
                action_id=event.action_id,
            )

    def __repr__(self) -> str:
        return (
            f"Population(subjects={self.spec.subjects}, "
            f"resources={self.spec.resources}, "
            f"branching={self.spec.branching}, seed={self.spec.seed})"
        )


def _coprime_multiplier(n: int) -> int:
    """Smallest multiplier >= 7919 coprime to ``n`` (a bijective mixer)."""
    candidate = 7919  # the 1000th prime; any odd start works
    while math.gcd(candidate, n) != 1:
        candidate += 1
    return candidate


@dataclass
class PopulationWorkload:
    """Convenience bundle: a population plus its compiled policies."""

    spec: PopulationSpec
    population: Population
    policies: list[Policy] = field(default_factory=list)


def build_population(spec: PopulationSpec) -> PopulationWorkload:
    """Build the population bundle experiments install into PDPs."""
    population = Population(spec)
    return PopulationWorkload(
        spec=spec,
        population=population,
        policies=population.policy_set(),
    )
