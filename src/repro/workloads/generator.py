"""Synthetic multi-domain workload generation.

The paper's authors evaluated against enterprise/grid deployments we do
not have; these generators produce the synthetic equivalents (DESIGN.md
§2): seeded, parameterised populations of domains, subjects, roles,
resources and request streams with skewed (Zipf-like) resource
popularity — the skew is what makes decision caching (E6) behave like it
does in production.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..domain.virtual_org import VirtualOrganization
from ..models.rbac import RbacModel
from ..simnet.network import Network
from ..wss.keys import KeyStore
from ..xacml import combining
from ..xacml.policy import Policy
from ..xacml.rules import deny_rule, permit_rule
from ..xacml.targets import subject_resource_action_target

ACTIONS = ("read", "write", "delete")


@dataclass
class WorkloadSpec:
    """Parameters of a synthetic multi-domain workload."""

    domains: int = 3
    subjects_per_domain: int = 20
    resources_per_domain: int = 10
    roles: tuple[str, ...] = ("staff", "engineer", "manager")
    #: Fraction of requests issued by subjects from another domain.
    cross_domain_fraction: float = 0.3
    #: Zipf skew for resource popularity (1.0 = classic; 0 = uniform).
    zipf_skew: float = 1.0
    read_fraction: float = 0.8
    seed: int = 0


@dataclass(frozen=True)
class AccessEvent:
    """One request in a generated stream."""

    subject_id: str
    subject_domain: str
    resource_id: str
    resource_domain: str
    action_id: str


@dataclass
class GeneratedWorkload:
    """Everything an experiment needs: the VO plus generators' metadata."""

    spec: WorkloadSpec
    vo: VirtualOrganization
    rbac: RbacModel
    subjects: list[tuple[str, str]] = field(default_factory=list)  # (id, domain)
    resources: list[tuple[str, str]] = field(default_factory=list)  # (id, domain)

    def subject_ids(self) -> list[str]:
        return [s for s, _ in self.subjects]

    def resource_ids(self) -> list[str]:
        return [r for r, _ in self.resources]


def _zipf_weights(n: int, skew: float) -> list[float]:
    if skew <= 0:
        return [1.0] * n
    return [1.0 / (rank**skew) for rank in range(1, n + 1)]


def build_workload(
    spec: WorkloadSpec, network: Network, keystore: KeyStore
) -> GeneratedWorkload:
    """Build a federated VO populated per the spec.

    Each domain gets the standard component layout; one VO-wide RBAC
    model assigns every subject a role; each domain publishes the
    compiled role policy set for its resources.
    """
    from ..domain.federation import build_federation

    domain_names = [f"domain-{i}" for i in range(spec.domains)]
    vo, _ = build_federation(
        f"workload-vo-{spec.seed}", domain_names, network, keystore
    )
    rbac = RbacModel(name=f"wl-{spec.seed}")
    for role in spec.roles:
        rbac.add_role(role)
    workload = GeneratedWorkload(spec=spec, vo=vo, rbac=rbac)

    for domain_name in domain_names:
        domain = vo.domain(domain_name)
        for res_index in range(spec.resources_per_domain):
            resource_id = f"res-{domain_name}-{res_index}"
            domain.expose_resource(resource_id)
            workload.resources.append((resource_id, domain_name))
            # Every role can read a prefix of resources; seniors get writes.
            for role_index, role in enumerate(spec.roles):
                if res_index % (role_index + 1) == 0:
                    rbac.grant_permission(role, resource_id, "read")
                if role_index == len(spec.roles) - 1:
                    rbac.grant_permission(role, resource_id, "write")
        for subj_index in range(spec.subjects_per_domain):
            subject_id = f"user-{domain_name}-{subj_index}"
            role = spec.roles[subj_index % len(spec.roles)]
            subject = domain.new_subject(subject_id, role=[role])
            rbac.assign_user(subject_id, role)
            vo.grant_membership(subject)
            workload.subjects.append((subject_id, domain_name))

    # Publish the RBAC policy set in every domain and sync PIPs.
    policy_set = rbac.compile_policy_set()
    for domain_name in domain_names:
        domain = vo.domain(domain_name)
        domain.pap.publish(policy_set, publisher="workload-generator")
        rbac.populate_pip(domain.pip.store)
        # Cross-domain requests resolve roles from the subject's home
        # domain; give each PDP the other PIPs as fallback authorities.
        for other_name in domain_names:
            if other_name != domain_name:
                domain.pdp.pip_addresses.append(
                    vo.domain(other_name).pip.name
                )
    return workload


def request_stream(
    workload: GeneratedWorkload, count: int, seed: Optional[int] = None
) -> list[AccessEvent]:
    """Generate a request stream with Zipf resource popularity."""
    spec = workload.spec
    rng = random.Random(spec.seed if seed is None else seed)
    weights = _zipf_weights(len(workload.resources), spec.zipf_skew)
    events = []
    for _ in range(count):
        resource_id, resource_domain = rng.choices(
            workload.resources, weights=weights
        )[0]
        candidates = (
            [(s, d) for s, d in workload.subjects if d != resource_domain]
            if rng.random() < spec.cross_domain_fraction
            else [(s, d) for s, d in workload.subjects if d == resource_domain]
        )
        subject_id, subject_domain = rng.choice(candidates or workload.subjects)
        action_id = "read" if rng.random() < spec.read_fraction else "write"
        events.append(
            AccessEvent(
                subject_id=subject_id,
                subject_domain=subject_domain,
                resource_id=resource_id,
                resource_domain=resource_domain,
                action_id=action_id,
            )
        )
    return events


# -- policy corpus generation (conflict analysis, E8) ---------------------------------------


@dataclass
class PolicyCorpusSpec:
    policies: int = 50
    rules_per_policy: int = 4
    subjects: int = 20
    resources: int = 20
    #: Fraction of rules that are Deny (the rest Permit).
    deny_fraction: float = 0.3
    #: Number of deliberately injected conflicting pairs.
    injected_conflicts: int = 5
    seed: int = 0


def generate_policy_corpus(spec: PolicyCorpusSpec) -> tuple[list[Policy], int]:
    """Random policies plus deliberately injected modality conflicts.

    Returns (policies, injected_conflict_count) so analyses can check
    recall: the analyser must find at least the injected conflicts.
    """
    rng = random.Random(spec.seed)
    subjects = [f"s{i}" for i in range(spec.subjects)]
    resources = [f"r{i}" for i in range(spec.resources)]
    policies: list[Policy] = []
    for p_index in range(spec.policies):
        rules = []
        for r_index in range(spec.rules_per_policy):
            subject = rng.choice(subjects)
            resource = rng.choice(resources)
            action = rng.choice(ACTIONS)
            builder = (
                deny_rule if rng.random() < spec.deny_fraction else permit_rule
            )
            rules.append(
                builder(
                    rule_id=f"p{p_index}-r{r_index}",
                    target=subject_resource_action_target(
                        subject_id=subject,
                        resource_id=resource,
                        action_id=action,
                    ),
                )
            )
        policies.append(
            Policy(
                policy_id=f"corpus-{spec.seed}-p{p_index}",
                rules=tuple(rules),
                rule_combining=combining.RULE_DENY_OVERRIDES,
            )
        )
    # Inject guaranteed conflicts: same (s, r, a), opposite effects, in
    # two fresh policies per pair.
    for c_index in range(spec.injected_conflicts):
        subject = rng.choice(subjects)
        resource = rng.choice(resources)
        action = rng.choice(ACTIONS)
        target = subject_resource_action_target(
            subject_id=subject, resource_id=resource, action_id=action
        )
        policies.append(
            Policy(
                policy_id=f"corpus-{spec.seed}-inj{c_index}-permit",
                rules=(permit_rule(f"inj{c_index}-permit", target=target),),
            )
        )
        policies.append(
            Policy(
                policy_id=f"corpus-{spec.seed}-inj{c_index}-deny",
                rules=(deny_rule(f"inj{c_index}-deny", target=target),),
            )
        )
    return policies, spec.injected_conflicts
