"""Closed-loop high-load driving of the batched decision fabric.

The request streams of :mod:`repro.workloads.generator` are *open loop*:
experiments decide when each event fires.  Saturation experiments need
the opposite — a fixed population of clients that each keep exactly one
request outstanding and submit the next the moment the previous one
completes.  Offered load is then set by the population size
(``concurrency``), and the measured decisions/second is the system's
actual capacity at that load, with queueing delay showing up as
submit→completion latency (experiment E16's three reported axes).

:func:`drive_closed_loop` is the one driver every closed-loop shape
runs on: one PEP, a whole domain of them, or several domains' fleets
grouped for per-domain reporting (experiments E16/E17/E18/E19).  The
historic entry points — :func:`run_closed_loop`,
:func:`run_closed_loop_multi` and :func:`~repro.workloads.multidomain.
run_closed_loop_federated` — survive as thin deprecated wrappers with
their original signatures and return shapes.

The driver is fully event-driven on top of
:meth:`~repro.components.pep.PolicyEnforcementPoint.submit` (the
coalescing queue), so a single ``network.run`` carries the whole run
without growing the Python stack.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

from ..components.fabric import QUEUE_LATENCY_SERIES, pep_latency_series
from ..simnet.metrics import LatencyStats
from ..xacml.context import RequestContext
from .generator import AccessEvent


def access_requests(events: Sequence[AccessEvent]) -> list[RequestContext]:
    """Convert generated access events into XACML request contexts."""
    return [
        RequestContext.simple(e.subject_id, e.resource_id, e.action_id)
        for e in events
    ]


@dataclass(frozen=True)
class ClosedLoopStats:
    """What one closed-loop run measured."""

    offered_concurrency: int
    submitted: int
    completed: int
    granted: int
    denied: int
    #: Simulated seconds from first submit to last completion.
    duration: float
    decisions_per_sec: float
    #: Every message the run put on the wire (queries, replies, policy
    #: fetches, PIP traffic) divided by completed decisions.
    messages_total: int
    messages_per_decision: float
    #: Submit→completion delay of requests that crossed the wire
    #: (cache/guard hits complete synchronously and are not sampled).
    queue_latency: LatencyStats


@dataclass(frozen=True)
class PepLoadStats:
    """One PEP's share of a multi-PEP closed-loop run."""

    name: str
    submitted: int
    completed: int
    granted: int
    denied: int
    #: This PEP's submit→completion delays (wire-crossing requests only).
    queue_latency: LatencyStats


@dataclass(frozen=True)
class MultiPepStats:
    """What one multi-PEP closed-loop run measured.

    ``fleet`` aggregates the whole domain (its ``offered_concurrency``
    is the sum over PEPs, its latency the pooled samples); ``per_pep``
    carries each PEP's own completion counts and latency distribution —
    the view the gateway's fairness cap is judged against.
    """

    fleet: ClosedLoopStats
    per_pep: tuple[PepLoadStats, ...]


@dataclass(frozen=True)
class GroupLoadStats:
    """One PEP group's share of a closed-loop run (e.g. one domain)."""

    name: str
    submitted: int
    completed: int
    granted: int
    denied: int
    #: Worst per-PEP p95 submit→completion delay inside this group.
    worst_pep_p95: float
    per_pep: tuple[PepLoadStats, ...]


@dataclass(frozen=True)
class ClosedLoopRun:
    """Everything :func:`drive_closed_loop` measured.

    ``fleet`` pools every PEP; ``per_pep`` breaks the run down per PEP;
    ``per_group`` (only when the driver was given group labels)
    regroups the per-PEP shares — the per-domain view of the federated
    wrapper.
    """

    fleet: ClosedLoopStats
    per_pep: tuple[PepLoadStats, ...]
    per_group: tuple[GroupLoadStats, ...] = ()

    def group(self, name: str) -> GroupLoadStats:
        for stats in self.per_group:
            if stats.name == name:
                return stats
        raise KeyError(f"no group {name!r} in this run")


def drive_closed_loop(
    peps: Sequence,
    requests_by_pep: Sequence[Sequence[RequestContext]],
    concurrency,
    horizon: float = 300.0,
    observer=None,
    groups: Optional[Sequence[str]] = None,
) -> ClosedLoopRun:
    """THE closed-loop driver: one request sequence per PEP, one network.

    Every closed-loop shape parameterises this one implementation — a
    single PEP, a domain of PEPs behind one gateway, or several
    domains' fleets (label each PEP with its domain via ``groups``).
    Every PEP keeps its concurrency window of requests outstanding (the
    offered load is the sum of the windows), all windows refill
    event-driven off their own completions, and a single ``network.run``
    carries the whole run to quiescence.

    Args:
        peps: PEPs with batching enabled — sharing a
            :class:`~repro.components.fabric.DomainDecisionGateway` or
            each running its own dispatcher (the E17 baseline).
        requests_by_pep: one request sequence per PEP, same length as
            ``peps``; sequences may differ in length.
        concurrency: outstanding-request window *per PEP* — one int for
            a uniform fleet, or one int per PEP (how E17's fairness
            experiment makes one PEP chatty).
        horizon: simulated-seconds safety stop.
        observer: optional ``observer(pep, request, result)`` callback
            invoked on every completion at its simulated completion
            time — how staleness experiments timestamp per-subject
            outcomes without threading state through the driver.
        groups: optional group label per PEP (same length as ``peps``);
            fills ``per_group`` with one summary per distinct label, in
            first-appearance order.
    """
    if len(peps) != len(requests_by_pep):
        raise ValueError(
            f"{len(peps)} PEPs but {len(requests_by_pep)} request sequences"
        )
    if not peps:
        raise ValueError("need at least one PEP")
    if isinstance(concurrency, int):
        windows = [concurrency] * len(peps)
    else:
        windows = list(concurrency)
        if len(windows) != len(peps):
            raise ValueError(
                f"{len(peps)} PEPs but {len(windows)} concurrency windows"
            )
    if any(window < 1 for window in windows):
        raise ValueError(f"concurrency must be >= 1, got {windows}")
    if groups is not None and len(groups) != len(peps):
        raise ValueError(
            f"{len(peps)} PEPs but {len(groups)} group labels"
        )
    network = peps[0].network
    metrics = network.metrics
    started_at = network.now
    messages_before = metrics.messages_sent
    fleet_samples_before = metrics.sample_count(QUEUE_LATENCY_SERIES)
    per_pep_samples_before = [
        metrics.sample_count(pep_latency_series(pep.name)) for pep in peps
    ]
    shared = {"last_completion_at": started_at}

    def make_driver(pep, requests, window):
        state = {
            "pep": pep,
            "next": 0,
            "completed": 0,
            "granted": 0,
            "pumping": False,
        }

        def on_complete(result, request) -> None:
            state["completed"] += 1
            if result.granted:
                state["granted"] += 1
            shared["last_completion_at"] = network.now
            if observer is not None:
                observer(pep, request, result)
            pump()

        def pump() -> None:
            # Same re-entrancy guard as the single-PEP driver: a
            # synchronous completion inside submit must not recurse
            # into the refill loop already running above it.
            if state["pumping"]:
                return
            state["pumping"] = True
            try:
                while (
                    state["next"] < len(requests)
                    and state["next"] - state["completed"] < window
                ):
                    request = requests[state["next"]]
                    state["next"] += 1
                    # The request is always bound into the callback —
                    # observer or not — so every completion path hands
                    # the observer the matching (pep, request, result)
                    # triple (late binding here once made the observer
                    # see request=None on one branch).
                    pep.submit(
                        request,
                        lambda result, request=request: on_complete(
                            result, request
                        ),
                    )
            finally:
                state["pumping"] = False

        state["pump"] = pump
        return state

    states = [
        make_driver(pep, requests, window)
        for pep, requests, window in zip(
            peps, requests_by_pep, windows, strict=True
        )
    ]
    for state in states:
        state["pump"]()
    network.run(until=started_at + horizon)

    per_pep = tuple(
        PepLoadStats(
            name=state["pep"].name,
            submitted=state["next"],
            completed=state["completed"],
            granted=state["granted"],
            denied=state["completed"] - state["granted"],
            queue_latency=metrics.series_window(
                pep_latency_series(state["pep"].name), samples_before
            ),
        )
        for state, samples_before in zip(
            states, per_pep_samples_before, strict=True
        )
    )
    completed = sum(stats.completed for stats in per_pep)
    duration = max(shared["last_completion_at"] - started_at, 1e-9)
    messages_total = metrics.messages_sent - messages_before
    fleet = ClosedLoopStats(
        offered_concurrency=sum(windows),
        submitted=sum(stats.submitted for stats in per_pep),
        completed=completed,
        granted=sum(stats.granted for stats in per_pep),
        denied=sum(stats.denied for stats in per_pep),
        duration=duration,
        decisions_per_sec=completed / duration if completed else 0.0,
        messages_total=messages_total,
        messages_per_decision=(
            messages_total / completed if completed else float("inf")
        ),
        queue_latency=metrics.series_window(
            QUEUE_LATENCY_SERIES, fleet_samples_before
        ),
    )
    per_group: tuple[GroupLoadStats, ...] = ()
    if groups is not None:
        labels = list(dict.fromkeys(groups))  # first-appearance order
        per_group = tuple(
            _group_stats(
                label,
                tuple(
                    stats
                    for stats, owner in zip(per_pep, groups, strict=True)
                    if owner == label
                ),
            )
            for label in labels
        )
    return ClosedLoopRun(fleet=fleet, per_pep=per_pep, per_group=per_group)


def _group_stats(
    name: str, shares: tuple[PepLoadStats, ...]
) -> GroupLoadStats:
    return GroupLoadStats(
        name=name,
        submitted=sum(share.submitted for share in shares),
        completed=sum(share.completed for share in shares),
        granted=sum(share.granted for share in shares),
        denied=sum(share.denied for share in shares),
        worst_pep_p95=max(
            (share.queue_latency.p95 for share in shares), default=0.0
        ),
        per_pep=shares,
    )


# -- deprecated wrappers (historic call sites and return shapes) ----------------------


def run_closed_loop(
    pep,
    requests: Sequence[RequestContext],
    concurrency: int,
    horizon: float = 300.0,
) -> ClosedLoopStats:
    """Deprecated: :func:`drive_closed_loop` with a one-PEP fleet.

    Kept for historic call sites; returns the fleet summary exactly as
    it always did.
    """
    warnings.warn(
        "run_closed_loop is deprecated; use drive_closed_loop",
        DeprecationWarning,
        stacklevel=2,
    )
    return drive_closed_loop(
        [pep], [requests], concurrency, horizon=horizon
    ).fleet


def run_closed_loop_multi(
    peps: Sequence,
    requests_by_pep: Sequence[Sequence[RequestContext]],
    concurrency,
    horizon: float = 300.0,
    observer=None,
) -> MultiPepStats:
    """Deprecated: :func:`drive_closed_loop` without grouping.

    Kept for historic call sites; returns the same
    :class:`MultiPepStats` shape as always.
    """
    warnings.warn(
        "run_closed_loop_multi is deprecated; use drive_closed_loop",
        DeprecationWarning,
        stacklevel=2,
    )
    run = drive_closed_loop(
        peps,
        requests_by_pep,
        concurrency,
        horizon=horizon,
        observer=observer,
    )
    return MultiPepStats(fleet=run.fleet, per_pep=run.per_pep)
