"""Closed-loop high-load driving of the batched decision fabric.

The request streams of :mod:`repro.workloads.generator` are *open loop*:
experiments decide when each event fires.  Saturation experiments need
the opposite — a fixed population of clients that each keep exactly one
request outstanding and submit the next the moment the previous one
completes.  Offered load is then set by the population size
(``concurrency``), and the measured decisions/second is the system's
actual capacity at that load, with queueing delay showing up as
submit→completion latency (experiment E16's three reported axes).

The driver is fully event-driven on top of
:meth:`~repro.components.pep.PolicyEnforcementPoint.submit` (the
coalescing queue), so a single ``network.run`` carries the whole run
without growing the Python stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..components.fabric import QUEUE_LATENCY_SERIES
from ..simnet.metrics import LatencyStats
from ..xacml.context import RequestContext
from .generator import AccessEvent


def access_requests(events: Sequence[AccessEvent]) -> list[RequestContext]:
    """Convert generated access events into XACML request contexts."""
    return [
        RequestContext.simple(e.subject_id, e.resource_id, e.action_id)
        for e in events
    ]


@dataclass(frozen=True)
class ClosedLoopStats:
    """What one closed-loop run measured."""

    offered_concurrency: int
    submitted: int
    completed: int
    granted: int
    denied: int
    #: Simulated seconds from first submit to last completion.
    duration: float
    decisions_per_sec: float
    #: Every message the run put on the wire (queries, replies, policy
    #: fetches, PIP traffic) divided by completed decisions.
    messages_total: int
    messages_per_decision: float
    #: Submit→completion delay of requests that crossed the wire
    #: (cache/guard hits complete synchronously and are not sampled).
    queue_latency: LatencyStats


def run_closed_loop(
    pep,
    requests: Sequence[RequestContext],
    concurrency: int,
    horizon: float = 300.0,
) -> ClosedLoopStats:
    """Drive ``requests`` through ``pep`` with a fixed outstanding window.

    Args:
        pep: a PEP with batching enabled (:meth:`enable_batching`).
        requests: the request sequence, submitted in order.
        concurrency: how many requests are kept outstanding — the closed
            loop's offered load.
        horizon: simulated-seconds safety stop; a healthy run finishes
            long before this.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    network = pep.network
    metrics = network.metrics
    started_at = network.now
    messages_before = metrics.messages_sent
    samples_before = len(metrics.samples.get(QUEUE_LATENCY_SERIES, ()))
    total = len(requests)
    state = {
        "next": 0,
        "completed": 0,
        "granted": 0,
        "pumping": False,
        "last_completion_at": started_at,
    }

    def on_complete(result) -> None:
        state["completed"] += 1
        if result.granted:
            state["granted"] += 1
        state["last_completion_at"] = network.now
        pump()

    def pump() -> None:
        # Re-entrancy guard: a submission that completes synchronously
        # (guard denial, cache hit) calls on_complete -> pump inside
        # submit; the outer loop is already refilling the window.
        if state["pumping"]:
            return
        state["pumping"] = True
        try:
            while (
                state["next"] < total
                and state["next"] - state["completed"] < concurrency
            ):
                request = requests[state["next"]]
                state["next"] += 1
                pep.submit(request, on_complete)
        finally:
            state["pumping"] = False

    pump()
    network.run(until=started_at + horizon)
    completed = state["completed"]
    duration = max(state["last_completion_at"] - started_at, 1e-9)
    messages_total = metrics.messages_sent - messages_before
    latency = LatencyStats.from_samples(
        metrics.samples.get(QUEUE_LATENCY_SERIES, [])[samples_before:]
    )
    return ClosedLoopStats(
        offered_concurrency=concurrency,
        submitted=state["next"],
        completed=completed,
        granted=state["granted"],
        denied=completed - state["granted"],
        duration=duration,
        decisions_per_sec=completed / duration if completed else 0.0,
        messages_total=messages_total,
        messages_per_decision=(
            messages_total / completed if completed else float("inf")
        ),
        queue_latency=latency,
    )
