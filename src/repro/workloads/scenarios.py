"""Named end-to-end scenarios used by examples and integration tests.

Each scenario assembles a realistic multi-domain environment of the kind
the paper's introduction motivates: a science grid VO (CAS/VOMS
territory), a healthcare federation (the XSPA profile's setting) and an
enterprise SOA with business partners.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..capability.cas import CommunityAuthorizationService
from ..components.pep import PepConfig
from ..domain.federation import build_federation
from ..domain.trust import TrustKind
from ..domain.virtual_org import VirtualOrganization
from ..models.abac import AbacPolicyBuilder, AbacRuleBuilder
from ..models.rbac import RbacModel
from ..revocation.authority import RevocationAuthority
from ..revocation.bus import InvalidationBus
from ..revocation.coherence import CoherenceAgent
from ..revocation.strategies import PushStrategy
from ..simnet.network import Network
from ..wss.keys import KeyStore
from ..xacml import combining
from ..xacml.attributes import SUBJECT_ROLE
from ..xacml.context import Decision, Obligation, ObligationAssignment
from ..xacml.policy import Policy
from ..xacml.rules import deny_rule, permit_rule
from ..xacml.targets import subject_resource_action_target
from ..xacml.attributes import string


@dataclass
class Scenario:
    """A ready-to-run environment plus the handles experiments need."""

    name: str
    network: Network
    keystore: KeyStore
    vo: VirtualOrganization
    notes: dict[str, object] = field(default_factory=dict)


def grid_vo(seed: int = 0) -> Scenario:
    """A science grid: 3 sites, a VO-level CAS, shared datasets.

    Mirrors the CAS/VOMS deployments the paper cites: site PEPs accept
    VO capabilities but keep local deny authority.
    """
    network = Network(seed=seed)
    keystore = KeyStore(seed=seed)
    vo, _ = build_federation(
        "earth-science-vo",
        ["site-compute", "site-archive", "site-viz"],
        network,
        keystore,
        kinds=(TrustKind.IDENTITY, TrustKind.CAPABILITY),
    )
    compute = vo.domain("site-compute")
    archive = vo.domain("site-archive")
    viz = vo.domain("site-viz")

    cas_identity = compute.component_identity("cas.earth-science-vo")
    cas = CommunityAuthorizationService(
        "cas.earth-science-vo",
        network,
        "site-compute",
        cas_identity,
        vo_name="earth-science-vo",
    )
    cas.add_policy(
        Policy(
            policy_id="vo-capability-policy",
            rules=(
                permit_rule(
                    "analysts-read",
                    target=subject_resource_action_target(action_id="read"),
                ),
                deny_rule("refuse-rest"),
            ),
            rule_combining=combining.RULE_FIRST_APPLICABLE,
        )
    )

    datasets = []
    for site, names in (
        (archive, ["climate-1990s", "climate-2000s"]),
        (viz, ["render-farm"]),
        (compute, ["batch-queue"]),
    ):
        for name in names:
            datasets.append(site.expose_resource(name))

    for index, (domain, user) in enumerate(
        ((compute, "ana"), (archive, "ben"), (viz, "carol"))
    ):
        subject = domain.new_subject(user, role=["analyst"])
        vo.grant_membership(subject)
        cas.set_subject_attribute(user, SUBJECT_ROLE, ["analyst"])

    return Scenario(
        name="grid-vo",
        network=network,
        keystore=keystore,
        vo=vo,
        notes={"cas": cas, "datasets": [d.resource_id for d in datasets]},
    )


def healthcare_federation(seed: int = 0) -> Scenario:
    """Hospital + clinic + research institute sharing patient records.

    The XSPA-flavoured scenario: role- and purpose-constrained access to
    records, emergency override via obligation (break-glass audit).
    """
    network = Network(seed=seed)
    keystore = KeyStore(seed=seed)
    vo, _ = build_federation(
        "health-info-exchange",
        ["hospital", "clinic", "research"],
        network,
        keystore,
    )
    hospital = vo.domain("hospital")
    clinic = vo.domain("clinic")
    research = vo.domain("research")

    hospital.expose_resource(
        "patient-records", description="longitudinal patient records"
    )
    clinic.expose_resource("lab-results")
    research.expose_resource("anonymised-cohort")

    #: Physicians read records; researchers only the anonymised cohort;
    #: break-glass: emergency access permitted with a mandatory audit
    #: obligation (the paper's parameterised-enforcement example).
    audit_obligation = Obligation(
        obligation_id="urn:repro:obligation:break-glass-audit",
        fulfill_on=Decision.PERMIT,
        assignments=(
            ObligationAssignment("reason", string("emergency-access")),
        ),
    )
    record_policy = (
        AbacPolicyBuilder(
            "hospital-records-policy",
            rule_combining=combining.RULE_FIRST_APPLICABLE,
        )
        .for_resource("patient-records")
        .rule(
            AbacRuleBuilder("physicians-read")
            .permit()
            .when_subject(SUBJECT_ROLE, "physician")
            .when_action("read")
            .build()
        )
        .rule(
            AbacRuleBuilder("emergency-break-glass")
            .permit()
            .when_subject(SUBJECT_ROLE, "emergency-responder")
            .when_action("read")
            .build()
        )
        .default_deny()
        .build()
    )
    # Attach the break-glass obligation at policy level (fires on Permit;
    # physicians' reads also audit, which XSPA deployments do in practice).
    record_policy = Policy(
        policy_id=record_policy.policy_id,
        rules=record_policy.rules,
        rule_combining=record_policy.rule_combining,
        target=record_policy.target,
        obligations=(audit_obligation,),
        description=record_policy.description,
    )
    hospital.pap.publish(record_policy)

    clinic.pap.publish(
        AbacPolicyBuilder(
            "clinic-labs-policy", rule_combining=combining.RULE_FIRST_APPLICABLE
        )
        .for_resource("lab-results")
        .rule(
            AbacRuleBuilder("clinicians-read")
            .permit()
            .when_subject(SUBJECT_ROLE, "physician", "nurse")
            .when_action("read")
            .build()
        )
        .default_deny()
        .build()
    )
    research.pap.publish(
        AbacPolicyBuilder(
            "research-cohort-policy",
            rule_combining=combining.RULE_FIRST_APPLICABLE,
        )
        .for_resource("anonymised-cohort")
        .rule(
            AbacRuleBuilder("researchers-read")
            .permit()
            .when_subject(SUBJECT_ROLE, "researcher")
            .when_action("read")
            .build()
        )
        .default_deny()
        .build()
    )

    dr_adams = hospital.new_subject("dr-adams", role=["physician"])
    nurse_brown = clinic.new_subject("nurse-brown", role=["nurse"])
    prof_chen = research.new_subject("prof-chen", role=["researcher"])
    medic_diaz = hospital.new_subject("medic-diaz", role=["emergency-responder"])
    for subject in (dr_adams, nurse_brown, prof_chen, medic_diaz):
        vo.grant_membership(subject)

    # Cross-domain attribute authority: every PDP may consult every PIP.
    for name_a in vo.domains:
        for name_b in vo.domains:
            if name_a != name_b:
                vo.domain(name_a).pdp.pip_addresses.append(
                    vo.domain(name_b).pip.name
                )

    return Scenario(
        name="healthcare-federation",
        network=network,
        keystore=keystore,
        vo=vo,
        notes={
            "resources": ["patient-records", "lab-results", "anonymised-cohort"],
            "break_glass_obligation": "urn:repro:obligation:break-glass-audit",
        },
    )


def enterprise_soa(seed: int = 0) -> Scenario:
    """An enterprise and two partners exposing business services.

    RBAC inside the enterprise, partner access constrained to specific
    service operations — the intra/inter-organisational SOA setting of
    the paper's introduction.
    """
    network = Network(seed=seed)
    keystore = KeyStore(seed=seed)
    vo, _ = build_federation(
        "supply-chain",
        ["enterprise", "partner-logistics", "partner-billing"],
        network,
        keystore,
    )
    enterprise = vo.domain("enterprise")
    logistics = vo.domain("partner-logistics")
    billing = vo.domain("partner-billing")

    for service in ("order-service", "inventory-service", "invoice-service"):
        enterprise.expose_resource(service)

    rbac = RbacModel("enterprise")
    for role in ("clerk", "supervisor", "partner-logistics", "partner-billing"):
        rbac.add_role(role)
    rbac.add_inheritance("supervisor", "clerk")
    rbac.grant_permission("clerk", "order-service", "read")
    rbac.grant_permission("supervisor", "order-service", "write")
    rbac.grant_permission("supervisor", "inventory-service", "write")
    rbac.grant_permission("partner-logistics", "inventory-service", "read")
    rbac.grant_permission("partner-billing", "invoice-service", "read")
    rbac.grant_permission("partner-billing", "invoice-service", "write")
    enterprise.pap.publish(rbac.compile_policy_set())

    emma = enterprise.new_subject("emma", role=["supervisor"])
    carl = enterprise.new_subject("carl", role=["clerk"])
    lars = logistics.new_subject("lars", role=["partner-logistics"])
    bill = billing.new_subject("bill", role=["partner-billing"])
    for user, role in (
        ("emma", "supervisor"),
        ("carl", "clerk"),
        ("lars", "partner-logistics"),
        ("bill", "partner-billing"),
    ):
        rbac.assign_user(user, role)
    for subject in (emma, carl, lars, bill):
        vo.grant_membership(subject)
    rbac.populate_pip(enterprise.pip.store)
    # Partners' PDP is irrelevant here: services live in the enterprise;
    # its PDP must resolve partner subjects, so it may consult their PIPs.
    enterprise.pdp.pip_addresses.extend(
        [logistics.pip.name, billing.pip.name]
    )
    rbac.populate_pip(logistics.pip.store)
    rbac.populate_pip(billing.pip.store)

    return Scenario(
        name="enterprise-soa",
        network=network,
        keystore=keystore,
        vo=vo,
        notes={"rbac": rbac},
    )


def revocation_churn(
    seed: int = 0,
    member_count: int = 8,
    decision_cache_ttl: float = 30.0,
    strategy_factory=None,
    push_window: float = 0.0,
):
    """Membership churn with unified revocation (experiment E15's setting).

    A registrar domain admits analysts to a shared archive hosted by a
    second domain; members leave over time and their access must stop
    *before* caches age out.  The environment wires the full coherence
    substrate: a signed :class:`RevocationRegistry` fronted by a
    :class:`RevocationAuthority`, an :class:`InvalidationBus`, and a
    :class:`CoherenceAgent` guarding the archive PEP (push strategy by
    default; ``strategy_factory(bus)`` swaps it).

    ``notes["revoke_member"]`` performs one authoritative revocation:
    the registrar strips the member's role (PIP truth) *and* issues the
    registry record that propagation strategies carry to the archive.

    ``push_window`` > 0 makes the authority coalesce revocation bursts
    into batched bus publications (one message per subscriber per
    window) — E15's message-overhead-saving variant.
    """
    network = Network(seed=seed)
    keystore = KeyStore(seed=seed)
    vo, _ = build_federation(
        "churn-vo", ["registrar", "archive"], network, keystore
    )
    registrar = vo.domain("registrar")
    archive = vo.domain("archive")

    resource = archive.expose_resource(
        "shared-archive",
        description="community data archive",
        pep_config=PepConfig(decision_cache_ttl=decision_cache_ttl),
    )
    archive.pap.publish(
        AbacPolicyBuilder(
            "archive-policy", rule_combining=combining.RULE_FIRST_APPLICABLE
        )
        .for_resource("shared-archive")
        .rule(
            AbacRuleBuilder("analysts-read")
            .permit()
            .when_subject(SUBJECT_ROLE, "analyst")
            .when_action("read")
            .build()
        )
        .default_deny()
        .build()
    )
    # The archive PDP resolves registrar-homed subjects via their PIP.
    archive.pdp.pip_addresses.append(registrar.pip.name)

    members = []
    for index in range(member_count):
        subject = registrar.new_subject(f"member-{index}", role=["analyst"])
        vo.grant_membership(subject)
        members.append(subject.subject_id)

    authority_identity = registrar.component_identity("revocation.churn-vo")
    bus = InvalidationBus(network)
    authority = RevocationAuthority(
        "revocation.churn-vo",
        network,
        domain="registrar",
        identity=authority_identity,
        bus=bus,
        push_window=push_window,
    )
    # One source of revocation truth: legacy revocation owners delegate
    # to the authority's registry.
    vo.trust.bind_revocation_registry(authority.registry)
    for domain in (registrar, archive):
        domain.ca.bind_revocation_registry(authority.registry)

    strategy = (
        strategy_factory(bus) if strategy_factory else PushStrategy(bus)
    )
    agent = CoherenceAgent(
        "coherence.archive",
        network,
        authority.name,
        strategy,
        domain="archive",
        identity=archive.component_identity("coherence.archive"),
        # Pushed/pulled records must verify against the authority key —
        # a forged bus publication must not deny members or flush caches.
        authority_key=authority_identity.keypair.public,
    )
    agent.protect_pep(resource.pep)
    agent.protect_pdp(archive.pdp)

    def revoke_member(subject_id: str, reason: str = "membership ended"):
        registrar.pip.store.set_subject_attribute(subject_id, SUBJECT_ROLE, [])
        return authority.registry.revoke_subject_access(
            subject_id, reason=reason
        )

    return Scenario(
        name="revocation-churn",
        network=network,
        keystore=keystore,
        vo=vo,
        notes={
            "authority": authority,
            "bus": bus,
            "coherence": agent,
            "strategy": strategy,
            "members": members,
            "resource": resource.resource_id,
            "revoke_member": revoke_member,
        },
    )
