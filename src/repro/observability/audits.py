"""Trace-query audits: re-derive dependability evidence from spans.

The point of per-request causal records is that aggregate claims stop
being trusted outputs and become *checkable* ones.  Each audit here
recomputes, purely from the span store, a number the system already
tracks through an independent mechanism — the closed-loop observer's
:class:`~repro.workloads.multidomain.StalenessAudit`, the
``federation.misroute`` / ``federation.ttl_expired`` counters — so E24
can cross-check them exactly.  Disagreement means either the
instrumentation or the counter is lying; agreement is the evidence the
E23 chaos campaign will lean on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .tracing import Span


@dataclass
class StalenessFromSpans:
    """Span-derived twin of ``StalenessAudit``'s counters.

    One decision root span with ``waiters=n`` corresponds to ``n``
    observer callbacks (the coalescing queue completes every
    deduplicated waiter at the same instant), so each root contributes
    its waiter count.
    """

    subject_id: str
    revoked_at: float | None
    coherence_window: float
    grants_before: int = 0
    denials_after: int = 0
    stale_grants_in_window: int = 0
    violations: list[float] = field(default_factory=list)

    @property
    def violation_count(self) -> int:
        return len(self.violations)


def rederive_staleness(
    spans: Sequence[Span],
    subject_id: str,
    revoked_at: float | None,
    coherence_window: float,
) -> StalenessFromSpans:
    """Reclassify every completion for ``subject_id`` from decision
    roots, using the same boundaries as ``StalenessAudit.__call__``."""
    audit = StalenessFromSpans(
        subject_id=subject_id,
        revoked_at=revoked_at,
        coherence_window=coherence_window,
    )
    for span in spans:
        if span.name != "decision":
            continue
        if span.attrs.get("subject") != subject_id:
            continue
        now = span.end
        granted = bool(span.attrs.get("granted", False))
        waiters = int(span.attrs.get("waiters", 1))
        if revoked_at is None or now < revoked_at:
            if granted:
                audit.grants_before += waiters
            continue
        if not granted:
            audit.denials_after += waiters
        elif now <= revoked_at + coherence_window:
            audit.stale_grants_in_window += waiters
        else:
            audit.violations.extend([now] * waiters)
    return audit


def misroute_accounting(spans: Sequence[Span]) -> dict[str, int]:
    """Total the per-serving-hop routing outcomes recorded on
    ``federation.serve`` spans.

    Keys mirror the ``federation.*`` counters they must equal:
    ``misroute`` ↔ ``federation.misroute``, ``ttl_expired`` ↔
    ``federation.ttl_expired``, ``unknown_domain`` ↔ the serving side's
    share of ``federation.unknown_domain``.
    """
    totals = {
        "serves": 0,
        "misroute": 0,
        "reforwarded": 0,
        "ttl_expired": 0,
        "unknown_domain": 0,
        "recheck_failed": 0,
        "local_decisions": 0,
    }
    for span in spans:
        if span.name != "federation.serve":
            continue
        totals["serves"] += 1
        totals["misroute"] += int(span.attrs.get("misroutes", 0))
        totals["reforwarded"] += int(span.attrs.get("reforwarded", 0))
        totals["ttl_expired"] += int(span.attrs.get("ttl_expired", 0))
        totals["unknown_domain"] += int(span.attrs.get("unknown_domain", 0))
        totals["recheck_failed"] += int(span.attrs.get("recheck_failed", 0))
        totals["local_decisions"] += int(span.attrs.get("local", 0))
    return totals


@dataclass(frozen=True)
class ForwardingReport:
    """Shape of the forwarding fabric as seen from serve spans."""

    serves: int
    max_hops: int
    #: Traces whose serving-hop chain revisited a domain — a forwarding
    #: loop the TTL is supposed to make impossible.
    loops: tuple[str, ...]
    ttl_expired: int


def forwarding_report(spans: Sequence[Span]) -> ForwardingReport:
    """Detect forwarding loops and measure chain depth.

    Serving hops of one forward share the originating envelope's trace
    (the onward envelope joins the serving context's trace), so a chain
    is simply the serve spans of one trace in time order; a repeated
    serving domain inside one chain is a loop.
    """
    chains: dict[str, list[Span]] = {}
    ttl_expired = 0
    for span in spans:
        if span.name != "federation.serve":
            continue
        chains.setdefault(span.trace_id, []).append(span)
        ttl_expired += int(span.attrs.get("ttl_expired", 0))
    loops: list[str] = []
    max_hops = 0
    serves = 0
    for trace_id, chain in chains.items():
        chain.sort(key=lambda s: (s.start, s.span_id))
        serves += len(chain)
        seen_domains: set[str] = set()
        for span in chain:
            max_hops = max(max_hops, int(span.attrs.get("hops", 0)))
            if span.domain in seen_domains:
                loops.append(trace_id)
                break
            seen_domains.add(span.domain)
    return ForwardingReport(
        serves=serves,
        max_hops=max_hops,
        loops=tuple(loops),
        ttl_expired=ttl_expired,
    )
