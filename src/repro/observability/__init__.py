"""Decision-path observability: causal spans, latency decomposition, audits.

The metrics registry (:mod:`repro.simnet.metrics`) answers *how much* —
message counts, byte totals, latency distributions.  This package answers
*why* and *where*: every sampled decision carries a trace context from
``Pep.authorize``/``submit`` through the coalescing queue, the domain
gateway's super-batches, federated forwards, the PDP service model and
back out through demux, producing a causal :class:`~repro.observability.
tracing.Span` tree in simulated time.

Design constraint (enforced by E24): tracing is *metadata only*.  The
trace context rides :attr:`repro.simnet.message.Message.headers`, which
the size model deliberately excludes — like a ``traceparent`` HTTP header
riding an existing request — so enabling 100% sampling changes neither
message counts nor bytes nor any timing.  With sampling off (the
default) no instrumentation path allocates anything.

Modules:

- :mod:`.tracing` — ``TraceContext``, ``Span``, ``Tracer``, the
  per-decision stamp-then-emit recorder.
- :mod:`.latency` — the per-tier latency-decomposition report and
  critical-path extraction for batched fan-in.
- :mod:`.audits` — trace-query audits that re-derive staleness,
  misroute accounting and forwarding-loop checks from spans.
- :mod:`.export` — JSONL and Chrome-trace (Perfetto) exporters.
- :mod:`.catalog` — the central registry of counter / series names the
  lint test holds ``src/`` against.
"""

from .audits import (
    StalenessFromSpans,
    forwarding_report,
    misroute_accounting,
    rederive_staleness,
)
from .catalog import COUNTERS, SERIES, SERIES_PREFIXES
from .export import (
    chrome_trace,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .latency import (
    DecompositionRow,
    critical_path,
    decompose,
    decomposition_table,
)
from .tracing import DecisionTrace, Span, TraceContext, Tracer

__all__ = [
    "COUNTERS",
    "SERIES",
    "SERIES_PREFIXES",
    "DecisionTrace",
    "DecompositionRow",
    "Span",
    "StalenessFromSpans",
    "TraceContext",
    "Tracer",
    "chrome_trace",
    "critical_path",
    "decompose",
    "decomposition_table",
    "forwarding_report",
    "misroute_accounting",
    "rederive_staleness",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
