"""Causal span trees over the decision path, in simulated time.

The tracer is *stamp-then-emit*: while a decision is in flight the only
work done is writing floats into a small per-decision recorder
(:class:`DecisionTrace`) hung off the coalescing queue's pending entry;
the :class:`Span` tree is materialised once, at completion.  Envelope
(wire) spans, PDP service spans and federated serving spans are emitted
by their owning component and joined to decision spans through
``batch_id`` / trace-context attributes rather than shared objects, so
no component needs to know any other component's internals.

Propagation is header-borne: :meth:`TraceContext.header` renders the
context as a compact string carried in ``Message.headers`` — which the
simnet size model excludes from byte accounting, exactly like a W3C
``traceparent`` header riding an already-priced request.  Tracing
therefore never adds wire traffic; E24 pins msgs/decision bit-identical
at 100% sampling.

Everything is guarded by :attr:`Tracer.enabled` (sampling rate > 0,
default 0): with tracing off the instrumentation seams cost one
attribute check and allocate nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

#: Message-header key the trace context travels under.  Headers are
#: metadata outside the size model (see ``repro.simnet.message``), so
#: this never changes message sizes, counts or timing.
TRACE_HEADER = "trace"


@dataclass(frozen=True)
class TraceContext:
    """Propagated identity of one causal tree: ids plus hop count.

    ``hops`` counts gateway-to-gateway serving hops so forwarding chains
    (and would-be loops) are visible without reconstructing topology.
    """

    trace_id: str
    span_id: str
    hops: int = 0

    def header(self) -> str:
        """Render for ``Message.headers`` carriage."""
        return f"{self.trace_id};{self.span_id};{self.hops}"

    @classmethod
    def parse(cls, header: object) -> Optional["TraceContext"]:
        """Inverse of :meth:`header`; ``None`` on anything malformed."""
        if not isinstance(header, str):
            return None
        parts = header.split(";")
        if len(parts) != 3:
            return None
        try:
            hops = int(parts[2])
        except ValueError:
            return None
        return cls(trace_id=parts[0], span_id=parts[1], hops=hops)


@dataclass(frozen=True)
class Span:
    """One completed operation on the decision path.

    ``start``/``end`` are simulated seconds; ``component`` and
    ``domain`` attribute the work to a network node and its owning
    domain (per-domain attribution is first-class in a multi-tenant
    VO).  ``attrs`` carries joins (``batch_id``, ``envelope_trace``)
    and outcome detail.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    component: str
    domain: str
    start: float
    end: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class DecisionTrace:
    """Mutable in-flight recorder for one coalescing-queue entry.

    Holds the minted context, the submit timestamp, named timestamps
    (``flush``, ``sent``, ``reply``) stamped by the layers the entry
    passes through, and join attributes.  Turned into a span tree by
    :meth:`Tracer.finish_decision`.
    """

    __slots__ = ("context", "started_at", "marks", "attrs", "waiters")

    def __init__(self, context: TraceContext, started_at: float) -> None:
        self.context = context
        self.started_at = started_at
        self.marks: dict[str, float] = {}
        self.attrs: dict[str, Any] = {}
        self.waiters = 1

    def mark(self, name: str, at: float) -> None:
        self.marks[name] = at

    def mark_first(self, name: str, at: float) -> None:
        """Stamp only if not already stamped (failover retransmits keep
        the first send time; the wire phase covers every attempt)."""
        self.marks.setdefault(name, at)

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value


class _EnvelopeTrace:
    """In-flight recorder for one wire envelope (one transmit attempt)."""

    __slots__ = ("context", "sent_at", "attrs", "parent_id")

    def __init__(
        self,
        context: TraceContext,
        sent_at: float,
        attrs: dict[str, Any],
        parent_id: Optional[str],
    ) -> None:
        self.context = context
        self.sent_at = sent_at
        self.attrs = attrs
        self.parent_id = parent_id


def _decision_traces(items: Iterable[Any]) -> Iterable[DecisionTrace]:
    """Duck-typed walk: pending entries carry ``.trace`` directly, wire
    slots carry ``.entries`` of pending entries; anything else (e.g. a
    serving-side part) contributes no decision trace."""
    for item in items:
        trace = getattr(item, "trace", None)
        if trace is not None:
            yield trace
            continue
        for entry in getattr(item, "entries", ()) or ():
            trace = getattr(entry, "trace", None)
            if trace is not None:
                yield trace


class Tracer:
    """Span recorder shared by every component on one network.

    Args:
        now: zero-argument callable returning simulated time (the
            network's clock) — the tracer never touches the scheduler.
        sample_rate: fraction of decisions that get a trace; ``0.0``
            (the default) disables every instrumentation path.

    Sampling is a deterministic accumulator (no RNG), so enabling it
    cannot perturb the seeded random streams the simulation draws from.
    """

    def __init__(
        self, now: Callable[[], float], sample_rate: float = 0.0
    ) -> None:
        self._now = now
        self.sample_rate = sample_rate
        self.spans: list[Span] = []
        self._ids = 0
        self._accum = 0.0

    # -- lifecycle -----------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    def reset(self) -> None:
        self.spans.clear()
        self._accum = 0.0

    def _next_id(self, prefix: str) -> str:
        self._ids += 1
        return f"{prefix}{self._ids}"

    def _sample(self) -> bool:
        self._accum += self.sample_rate
        if self._accum >= 1.0 - 1e-12:
            self._accum -= 1.0
            return True
        return False

    def child_context(self, parent: TraceContext) -> TraceContext:
        """A context one hop deeper in ``parent``'s trace, with a fresh
        span id (serving-side hops of a federated forward)."""
        return TraceContext(
            trace_id=parent.trace_id,
            span_id=self._next_id("s"),
            hops=parent.hops + 1,
        )

    def emit(
        self,
        name: str,
        component: str,
        domain: str,
        start: float,
        end: float,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Record one finished span; mint ids when the caller has none."""
        if span_id is None:
            span_id = self._next_id("s")
        if trace_id is None:
            trace_id = self._next_id("t")
        span = Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            component=component,
            domain=domain,
            start=start,
            end=end,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    # -- decision path -------------------------------------------------

    def begin_decision(self, component: Any, request: Any) -> Optional[
        DecisionTrace
    ]:
        """Mint a trace for a newly queued decision, or ``None`` if this
        decision falls outside the sampling rate."""
        if not self._sample():
            return None
        context = TraceContext(
            trace_id=self._next_id("t"), span_id=self._next_id("s"), hops=0
        )
        trace = DecisionTrace(context=context, started_at=self._now())
        trace.set("pep", getattr(component, "name", ""))
        trace.set("subject", getattr(request, "subject_id", ""))
        trace.set("resource", getattr(request, "resource_id", ""))
        trace.set("action", getattr(request, "action_id", ""))
        return trace

    def join_decision(self, trace: Optional[DecisionTrace]) -> None:
        """A deduplicated waiter attached to an already-pending entry."""
        if trace is not None:
            trace.waiters += 1

    def sync_decision(
        self, component: Any, request: Any, result: Any, path: str = "submit"
    ) -> None:
        """A decision that completed without queueing (decision-cache
        hit or revocation-guard denial): a single leaf span."""
        trace = self.begin_decision(component, request)
        if trace is None:
            return
        trace.set("sync", True)
        trace.set("path", path)
        self.finish_decision(
            trace,
            component,
            granted=getattr(result, "granted", False),
            decision=str(getattr(result, "decision", "")),
            source=getattr(result, "source", ""),
        )

    def finish_decision(
        self,
        trace: Optional[DecisionTrace],
        component: Any,
        granted: bool = False,
        decision: str = "",
        source: str = "",
        error: str = "",
    ) -> None:
        """Emit the decision's span tree: a root covering submit →
        completion plus four child phases that partition it exactly
        (queue → batch → wire → demux), so per-decision sums reconcile
        with end-to-end latency by construction."""
        if trace is None:
            return
        now = self._now()
        ctx = trace.context
        name = getattr(component, "name", "")
        domain = getattr(component, "domain", "")
        attrs = dict(trace.attrs)
        attrs.update(
            granted=granted,
            decision=decision,
            source=source,
            waiters=trace.waiters,
        )
        if error:
            attrs["error"] = error
        self.spans.append(
            Span(
                trace_id=ctx.trace_id,
                span_id=ctx.span_id,
                parent_id=None,
                name="decision",
                component=name,
                domain=domain,
                start=trace.started_at,
                end=now,
                attrs=attrs,
            )
        )
        if attrs.get("sync"):
            return
        # Phase boundaries, clamped monotonic so missing marks (e.g. a
        # failure before any reply) collapse the later phases to zero
        # rather than breaking the partition.
        t0 = trace.started_at
        t1 = min(max(trace.marks.get("flush", now), t0), now)
        t2 = min(max(trace.marks.get("sent", t1), t1), now)
        t3 = min(max(trace.marks.get("reply", now), t2), now)
        wire_attrs: dict[str, Any] = {}
        for key in ("batch_id", "envelope_trace", "kind", "replica",
                    "attempts", "joined_in_flight", "cache"):
            if key in trace.attrs:
                wire_attrs[key] = trace.attrs[key]
        for phase, start, end, extra in (
            ("queue", t0, t1, None),
            ("batch", t1, t2, None),
            ("wire", t2, t3, wire_attrs),
            ("demux", t3, now, None),
        ):
            self.spans.append(
                Span(
                    trace_id=ctx.trace_id,
                    span_id=self._next_id("s"),
                    parent_id=ctx.span_id,
                    name=phase,
                    component=name,
                    domain=domain,
                    start=start,
                    end=end,
                    attrs=extra or {},
                )
            )

    # -- wire envelopes ------------------------------------------------

    def envelope_sent(
        self,
        component: Any,
        items: Iterable[Any],
        batch_id: str,
        kind: str,
        replica: str,
        attempt: int,
    ) -> _EnvelopeTrace:
        """One transmit attempt left a wire core: stamp every sampled
        decision riding it and open an envelope span.

        The envelope joins a serving context's trace when the items
        carry one (onward hops of a federated forward), else roots a
        fresh envelope trace; either way the returned context's header
        rides the message so the receiving side parents under it.
        """
        now = self._now()
        parent_ctx: Optional[TraceContext] = None
        for item in items:
            parent_ctx = getattr(
                getattr(item, "context", None), "serve_ctx", None
            )
            break
        span_id = self._next_id("s")
        if parent_ctx is not None:
            context = TraceContext(
                trace_id=parent_ctx.trace_id,
                span_id=span_id,
                hops=parent_ctx.hops,
            )
            parent_id: Optional[str] = parent_ctx.span_id
        else:
            context = TraceContext(
                trace_id=self._next_id("t"), span_id=span_id, hops=0
            )
            parent_id = None
        count = 0
        for trace in _decision_traces(items):
            count += 1
            trace.mark_first("sent", now)
            trace.set("batch_id", batch_id)
            trace.set("envelope_trace", context.trace_id)
            trace.set("kind", kind)
            trace.set("replica", replica)
            trace.set("attempts", attempt)
        attrs = {
            "batch_id": batch_id,
            "kind": kind,
            "replica": replica,
            "attempt": attempt,
            "decisions": count,
            "_component": getattr(component, "name", ""),
            "_domain": getattr(component, "domain", ""),
        }
        return _EnvelopeTrace(
            context=context,
            sent_at=now,
            attrs=attrs,
            parent_id=parent_id,
        )

    def envelope_done(
        self,
        envelope: Optional[_EnvelopeTrace],
        items: Iterable[Any],
        outcome: str,
    ) -> None:
        """Close an envelope span (reply, fault, timeout or exhaustion)
        and stamp the riding decisions' reply time."""
        if envelope is None:
            return
        now = self._now()
        if outcome == "ok":
            for trace in _decision_traces(items):
                trace.mark_first("reply", now)
        ctx = envelope.context
        self.spans.append(
            Span(
                trace_id=ctx.trace_id,
                span_id=ctx.span_id,
                parent_id=envelope.parent_id,
                name="wire.envelope",
                component=envelope.attrs.get("_component", ""),
                domain=envelope.attrs.get("_domain", ""),
                start=envelope.sent_at,
                end=now,
                attrs={
                    k: v
                    for k, v in envelope.attrs.items()
                    if not k.startswith("_")
                }
                | {"outcome": outcome},
            )
        )

    # -- cache hits ----------------------------------------------------

    def cache_hit(
        self, component: Any, items: Iterable[Any], cache: str
    ) -> None:
        """A tier served these decisions from cache instead of the wire:
        collapse their wire phase to zero-at-now with a cache label."""
        now = self._now()
        for trace in _decision_traces(items):
            trace.mark_first("sent", now)
            trace.mark_first("reply", now)
            trace.set("cache", cache)
