"""Latency decomposition: where each decision's time went.

Consumes the span store of :class:`~repro.observability.tracing.Tracer`
and answers "where does the millisecond go" per decision and per tier:

- :func:`decompose` — one :class:`DecompositionRow` per traced decision,
  splitting submit→completion into queue wait, batch wait, wire,
  PDP queueing, signature/envelope work, PDP evaluation and demux.  The
  four phase spans partition the root exactly; the wire phase is
  further split by joining the PDP service span through the envelope
  trace, with clamping so the row still sums to the end-to-end latency.
- :func:`critical_path` — the time-dominant causal chain for one trace,
  descending through the shared envelope of a batched fan-in (and any
  federated serving hops) to the PDP service leaf.
- :func:`decomposition_table` — per-tier aggregate means, ready for a
  benchmark table row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .tracing import Span


@dataclass(frozen=True)
class DecompositionRow:
    """One decision's latency split (all figures simulated seconds).

    ``queue + batch + wire + pdp_wait + signature + pdp_eval + demux``
    equals ``e2e`` by construction (the wire phase is reduced by the
    joined PDP time).  ``cache`` names the tier that short-circuited
    the wire, if any.
    """

    trace_id: str
    component: str
    domain: str
    source: str
    cache: str
    granted: bool
    waiters: int
    e2e: float
    queue: float
    batch: float
    wire: float
    pdp_wait: float
    signature: float
    pdp_eval: float
    demux: float

    @property
    def phase_sum(self) -> float:
        return (
            self.queue
            + self.batch
            + self.wire
            + self.pdp_wait
            + self.signature
            + self.pdp_eval
            + self.demux
        )


def _index(spans: Iterable[Span]):
    roots: list[Span] = []
    children: dict[tuple[str, str], list[Span]] = {}
    pdp_by_trace: dict[str, list[Span]] = {}
    for span in spans:
        if span.name == "decision":
            roots.append(span)
        if span.parent_id is not None:
            children.setdefault((span.trace_id, span.parent_id), []).append(
                span
            )
        if span.name == "pdp.service":
            pdp_by_trace.setdefault(span.trace_id, []).append(span)
    return roots, children, pdp_by_trace


def decompose(
    spans: Sequence[Span], include_sync: bool = False
) -> list[DecompositionRow]:
    """Per-decision latency rows; synchronous completions (cache /
    revocation-guard hits, zero latency by definition) are skipped
    unless asked for."""
    roots, children, pdp_by_trace = _index(spans)
    rows: list[DecompositionRow] = []
    for root in roots:
        sync = bool(root.attrs.get("sync"))
        if sync and not include_sync:
            continue
        phases = {
            span.name: span
            for span in children.get((root.trace_id, root.span_id), [])
        }
        queue = phases["queue"].duration if "queue" in phases else 0.0
        batch = phases["batch"].duration if "batch" in phases else 0.0
        wire_span = phases.get("wire")
        wire = wire_span.duration if wire_span is not None else 0.0
        demux = phases["demux"].duration if "demux" in phases else 0.0
        pdp_wait = signature = pdp_eval = 0.0
        if wire_span is not None:
            envelope_trace = wire_span.attrs.get("envelope_trace")
            candidates = pdp_by_trace.get(envelope_trace, ())
            if candidates:
                # Critical-path PDP leg: the longest service span the
                # envelope (or its federated serving hops) touched.
                pdp = max(candidates, key=lambda s: s.duration)
                pdp_wait = float(pdp.attrs.get("queued", 0.0))
                signature = float(pdp.attrs.get("overhead", 0.0))
                pdp_eval = float(pdp.attrs.get("eval", 0.0))
                total = pdp_wait + signature + pdp_eval
                if total > wire > 0.0:
                    # A late joiner's wire window can be shorter than
                    # the envelope's full service time: scale the PDP
                    # legs down so the row still sums to e2e.
                    scale = wire / total
                    pdp_wait *= scale
                    signature *= scale
                    pdp_eval *= scale
                    total = wire
                wire -= min(total, wire)
        rows.append(
            DecompositionRow(
                trace_id=root.trace_id,
                component=root.component,
                domain=root.domain,
                source=str(root.attrs.get("source", "")),
                cache=str(root.attrs.get("cache", "")),
                granted=bool(root.attrs.get("granted", False)),
                waiters=int(root.attrs.get("waiters", 1)),
                e2e=root.duration,
                queue=queue,
                batch=batch,
                wire=wire,
                pdp_wait=pdp_wait,
                signature=signature,
                pdp_eval=pdp_eval,
                demux=demux,
            )
        )
    return rows


def critical_path(spans: Sequence[Span], trace_id: str) -> list[Span]:
    """The time-dominant causal chain of one decision trace.

    Walks the root's phase children in time order; at the wire phase it
    jumps into the envelope trace (the shared object of a batched
    fan-in) and descends through the longest child at each level —
    across federated serving hops — down to the PDP service leaf.
    """
    own = [span for span in spans if span.trace_id == trace_id]
    root = next((s for s in own if s.name == "decision"), None)
    if root is None:
        raise KeyError(f"no decision root for trace {trace_id!r}")
    path = [root]
    phases = sorted(
        (s for s in own if s.parent_id == root.span_id),
        key=lambda s: (s.start, s.end),
    )
    for phase in phases:
        path.append(phase)
        envelope_trace = phase.attrs.get("envelope_trace")
        if phase.name != "wire" or not envelope_trace:
            continue
        env = [s for s in spans if s.trace_id == envelope_trace]
        node: Optional[Span] = max(
            (s for s in env if s.parent_id is None),
            key=lambda s: s.duration,
            default=None,
        )
        while node is not None:
            path.append(node)
            node = max(
                (s for s in env if s.parent_id == node.span_id),
                key=lambda s: s.duration,
                default=None,
            )
    return path


def decomposition_table(
    spans: Sequence[Span], tier: str = ""
) -> dict[str, object]:
    """Aggregate the per-decision rows into one benchmark-table row
    (means in milliseconds)."""
    rows = decompose(spans)
    count = len(rows)

    def mean_ms(getter) -> float:
        if not count:
            return 0.0
        return round(sum(getter(r) for r in rows) / count * 1000, 4)

    return {
        "tier": tier,
        "decisions": count,
        "e2e_ms": mean_ms(lambda r: r.e2e),
        "queue_ms": mean_ms(lambda r: r.queue),
        "batch_ms": mean_ms(lambda r: r.batch),
        "wire_ms": mean_ms(lambda r: r.wire),
        "pdp_wait_ms": mean_ms(lambda r: r.pdp_wait),
        "signature_ms": mean_ms(lambda r: r.signature),
        "pdp_eval_ms": mean_ms(lambda r: r.pdp_eval),
        "demux_ms": mean_ms(lambda r: r.demux),
    }
