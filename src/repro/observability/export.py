"""Span exporters: JSONL event log and Chrome-trace (Perfetto) format.

Both exporters are keyed to *virtual* time: simulated seconds map to
trace microseconds, so a Perfetto timeline of a run shows queueing,
batching and service exactly as the simulation scheduled them.

- :func:`write_jsonl` — one JSON object per span, stable key order;
  greppable, diffable, and the durable form for offline trace queries.
- :func:`write_chrome_trace` — the Chrome ``trace_event`` JSON format:
  open the file at ``chrome://tracing`` or https://ui.perfetto.dev.
  Components become threads, domains become processes, so per-domain
  attribution survives the visualisation.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from .tracing import Span


def _span_dict(span: Span) -> dict[str, object]:
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "component": span.component,
        "domain": span.domain,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "attrs": dict(span.attrs),
    }


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Render spans as newline-delimited JSON (one event per line)."""
    return "".join(
        json.dumps(_span_dict(span), sort_keys=True, default=str) + "\n"
        for span in spans
    )


def write_jsonl(spans: Iterable[Span], path) -> None:
    """Write the JSONL event log to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(spans_to_jsonl(spans))


def chrome_trace(spans: Sequence[Span]) -> dict[str, object]:
    """Build a Chrome ``trace_event`` document from the span store.

    Each span becomes a complete ("X") duration event; ``pid`` is the
    owning domain, ``tid`` the component, ``ts``/``dur`` are simulated
    microseconds.  Span attributes ride along under ``args`` so the
    Perfetto detail pane shows batch ids, sources and outcomes.
    """
    domains = sorted({span.domain or "-" for span in spans})
    components = sorted({span.component or "-" for span in spans})
    pid_of = {domain: index + 1 for index, domain in enumerate(domains)}
    tid_of = {name: index + 1 for index, name in enumerate(components)}
    events: list[dict[str, object]] = []
    for domain in domains:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid_of[domain],
                "tid": 0,
                "args": {"name": f"domain:{domain}"},
            }
        )
    for span in spans:
        pid = pid_of[span.domain or "-"]
        tid = tid_of[span.component or "-"]
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".")[0],
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **{k: str(v) for k, v in span.attrs.items()},
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[Span], path) -> None:
    """Write the Chrome-trace JSON document to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans), handle, indent=1, default=str)
