"""Central catalog of metric names: every counter and sample series.

Counter names are stringly-typed at their ``bump()`` call sites, which
makes silent drift easy: rename a counter in one place and every
benchmark assertion and dashboard quietly reads zero.  This module is
the single source of truth; ``tests/observability/test_catalog_lint.py``
scans ``src/`` for ``bump(``/``record_sample(`` string literals and
fails on any name missing here (and on any cataloged literal that no
longer exists in the source).

The README's metrics reference table is generated from the same names —
see "Metrics & tracing reference".
"""

from __future__ import annotations

#: Every ``MetricsRegistry.bump()`` counter name in ``src/``.
#: value: (owning module, meaning).
COUNTERS: dict[str, tuple[str, str]] = {
    "federation.misroute": (
        "components.federation",
        "forwarded query whose resource this domain does not govern",
    ),
    "federation.recheck_failed": (
        "components.federation",
        "serving-side governing-domain recheck raised; fail-closed deny",
    ),
    "federation.ttl_expired": (
        "components.federation",
        "misrouted query dropped because the forward TTL ran out",
    ),
    "federation.unknown_domain": (
        "components.federation",
        "no gateway/route known for the governing domain; fail-closed",
    ),
    "federation.remote_cache_hit": (
        "components.federation",
        "remote-governed slot served from the gateway decision cache",
    ),
    "federation.peer_unreachable": (
        "components.federation",
        "forward exhausted its retries; riding decisions fail closed",
    ),
    "federation.origin_rejected": (
        "components.federation",
        "inbound forward refused: origin domain not on the allow list",
    ),
    "placement.misrouted": (
        "components.pdp",
        "batch slot that arrived at a replica not owning its key",
    ),
    "placement.reforwarded": (
        "components.pdp",
        "misrouted slot answered by its owner via replica reforward",
    ),
    "placement.reforward_fallback": (
        "components.pdp",
        "misrouted slot evaluated locally: owning replica unreachable",
    ),
    "placement.moved_keys": (
        "components.pdp",
        "partition entries evicted by a ring rebalance (join/leave)",
    ),
    "analysis.findings": (
        "xacml.analysis",
        "static-analysis finding reported (witness-verified where required)",
    ),
    "analysis.witness_failed": (
        "xacml.analysis",
        "candidate finding suppressed: witness replay contradicted the claim",
    ),
    "analysis.witness_unsynthesizable": (
        "xacml.analysis",
        "candidate finding suppressed: no concrete witness request derivable",
    ),
    "analysis.gate_rejections": (
        "xacml.engine",
        "policy element refused deployment by the store's analysis gate",
    ),
}

#: Every statically named ``record_sample()`` series.
SERIES: dict[str, tuple[str, str]] = {
    "fabric.queue_latency": (
        "components.fabric",
        "submit→completion delay of wire-crossing decisions (seconds)",
    ),
    "fabric.super_batch_size": (
        "components.fabric",
        "slots per gateway super-batch at dispatch",
    ),
    "pdp.candidate_set_size": (
        "components.pdp",
        "policy candidates per decision (target-index selectivity)",
    ),
    "pdp.shard_cardinality": (
        "components.pdp",
        "materialised partition keys per replica at each rebalance",
    ),
}

#: Dynamically named series: ``prefix + suffix`` (one per component).
SERIES_PREFIXES: dict[str, tuple[str, str]] = {
    "fabric.queue_latency.": (
        "components.fabric",
        "per-PEP submit→completion delay (one series per PEP name)",
    ),
}


def is_cataloged_series(name: str) -> bool:
    """True if ``name`` is a known series, static or prefix-derived."""
    return name in SERIES or any(
        name.startswith(prefix) for prefix in SERIES_PREFIXES
    )
