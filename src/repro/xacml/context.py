"""XACML request/response context: the decision request/response protocol.

The second half of what XACML standardises (besides the policy language)
is "an access control decision request/response protocol" — the messages
a PEP exchanges with a PDP.  :class:`RequestContext` and
:class:`ResponseContext` are those messages; the XML forms live in
:mod:`repro.xacml.serializer`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional

from .attributes import (
    ACTION_ID,
    Attribute,
    AttributeValue,
    Bag,
    Category,
    DataType,
    RESOURCE_ID,
    SUBJECT_ID,
    string,
)


class Decision(enum.Enum):
    """The four XACML decisions."""

    PERMIT = "Permit"
    DENY = "Deny"
    NOT_APPLICABLE = "NotApplicable"
    INDETERMINATE = "Indeterminate"

    @property
    def is_definitive(self) -> bool:
        return self in (Decision.PERMIT, Decision.DENY)


class StatusCode(enum.Enum):
    """Standard XACML status codes carried in responses."""

    OK = "urn:oasis:names:tc:xacml:1.0:status:ok"
    MISSING_ATTRIBUTE = "urn:oasis:names:tc:xacml:1.0:status:missing-attribute"
    SYNTAX_ERROR = "urn:oasis:names:tc:xacml:1.0:status:syntax-error"
    PROCESSING_ERROR = "urn:oasis:names:tc:xacml:1.0:status:processing-error"


@dataclass(frozen=True)
class Status:
    code: StatusCode = StatusCode.OK
    message: str = ""

    @property
    def is_ok(self) -> bool:
        return self.code is StatusCode.OK


OK_STATUS = Status()


@dataclass(frozen=True)
class ObligationAssignment:
    """One attribute assignment inside an obligation."""

    attribute_id: str
    value: AttributeValue


@dataclass(frozen=True)
class Obligation:
    """An action the PEP must perform when enforcing the decision.

    ``fulfill_on`` names the decision (Permit or Deny) to which this
    obligation attaches; a PEP that does not understand an obligation it
    receives MUST deny access (XACML §7.14), which
    :class:`repro.components.pep.PolicyEnforcementPoint` honours.
    """

    obligation_id: str
    fulfill_on: Decision
    assignments: tuple[ObligationAssignment, ...] = ()

    def __post_init__(self) -> None:
        if self.fulfill_on not in (Decision.PERMIT, Decision.DENY):
            raise ValueError(
                "obligations attach to Permit or Deny, "
                f"not {self.fulfill_on.value}"
            )

    def assignment(self, attribute_id: str) -> Optional[AttributeValue]:
        for item in self.assignments:
            if item.attribute_id == attribute_id:
                return item.value
        return None


class RequestContext:
    """An access request: attributes grouped by category.

    Build either directly from :class:`Attribute` lists or via
    :meth:`simple`, the common subject/resource/action shorthand.
    """

    def __init__(
        self, attributes: Optional[dict[Category, list[Attribute]]] = None
    ) -> None:
        self._attributes: dict[Category, list[Attribute]] = {
            category: [] for category in Category
        }
        if attributes:
            for category, attrs in attributes.items():
                self._attributes[category] = list(attrs)

    @classmethod
    def simple(
        cls,
        subject_id: str,
        resource_id: str,
        action_id: str,
        subject_attributes: Optional[dict[str, Iterable[AttributeValue]]] = None,
        resource_attributes: Optional[dict[str, Iterable[AttributeValue]]] = None,
        environment: Optional[dict[str, Iterable[AttributeValue]]] = None,
    ) -> "RequestContext":
        """Build the canonical {subject, resource, action} request."""
        request = cls()
        request.add(Category.SUBJECT, Attribute.of(SUBJECT_ID, string(subject_id)))
        request.add(Category.RESOURCE, Attribute.of(RESOURCE_ID, string(resource_id)))
        request.add(Category.ACTION, Attribute.of(ACTION_ID, string(action_id)))
        for attr_id, values in (subject_attributes or {}).items():
            request.add(Category.SUBJECT, Attribute(attr_id, tuple(values)))
        for attr_id, values in (resource_attributes or {}).items():
            request.add(Category.RESOURCE, Attribute(attr_id, tuple(values)))
        for attr_id, values in (environment or {}).items():
            request.add(Category.ENVIRONMENT, Attribute(attr_id, tuple(values)))
        return request

    def add(self, category: Category, attribute: Attribute) -> None:
        self._attributes[category].append(attribute)

    def attributes(self, category: Category) -> list[Attribute]:
        return list(self._attributes[category])

    def bag(
        self,
        category: Category,
        attribute_id: str,
        data_type: DataType,
        issuer: Optional[str] = None,
    ) -> Bag:
        """Resolve a designator against this request's attributes."""
        collected: list[AttributeValue] = []
        for attribute in self._attributes[category]:
            if attribute.attribute_id != attribute_id:
                continue
            if issuer is not None and attribute.issuer != issuer:
                continue
            collected.extend(
                v for v in attribute.values if v.data_type is data_type
            )
        return Bag(collected)

    def first_value(
        self, category: Category, attribute_id: str
    ) -> Optional[AttributeValue]:
        for attribute in self._attributes[category]:
            if attribute.attribute_id == attribute_id and attribute.values:
                return attribute.values[0]
        return None

    @property
    def subject_id(self) -> Optional[str]:
        value = self.first_value(Category.SUBJECT, SUBJECT_ID)
        return None if value is None else str(value.value)

    @property
    def resource_id(self) -> Optional[str]:
        value = self.first_value(Category.RESOURCE, RESOURCE_ID)
        return None if value is None else str(value.value)

    @property
    def action_id(self) -> Optional[str]:
        value = self.first_value(Category.ACTION, ACTION_ID)
        return None if value is None else str(value.value)

    def cache_key(self) -> tuple:
        """A hashable identity for decision caching (E6)."""
        parts = []
        for category in Category:
            for attribute in sorted(
                self._attributes[category], key=lambda a: a.attribute_id
            ):
                if category is Category.ENVIRONMENT:
                    # Environment attributes (e.g. current time) change per
                    # request and would defeat caching; the staleness risk
                    # this creates is exactly what experiment E6 measures.
                    continue
                for value in attribute.values:
                    parts.append(
                        (category.value, attribute.attribute_id, value.lexical())
                    )
        return tuple(sorted(parts))

    def __repr__(self) -> str:
        return (
            f"RequestContext(subject={self.subject_id!r}, "
            f"resource={self.resource_id!r}, action={self.action_id!r})"
        )


def cache_key_touches(
    key: tuple,
    subject_id: Optional[str] = None,
    resource_id: Optional[str] = None,
) -> bool:
    """Does a :meth:`RequestContext.cache_key` involve a subject/resource?

    The selective-invalidation predicate every decision-cache tier
    (PEP caches, the gateway-tier remote-decision cache) applies when a
    revocation names a subject and/or resource: entries matching
    *either* filter are coherence victims.  With neither filter given
    nothing matches (the caller should flush instead).
    """
    wanted = set()
    if subject_id is not None:
        wanted.add((Category.SUBJECT.value, SUBJECT_ID, subject_id))
    if resource_id is not None:
        wanted.add((Category.RESOURCE.value, RESOURCE_ID, resource_id))
    return any(part in wanted for part in key)


@dataclass(frozen=True)
class Result:
    """One result inside a response context."""

    decision: Decision
    status: Status = OK_STATUS
    obligations: tuple[Obligation, ...] = ()
    resource_id: Optional[str] = None


@dataclass(frozen=True)
class ResponseContext:
    """The PDP's answer to a request context."""

    results: tuple[Result, ...]

    @classmethod
    def single(
        cls,
        decision: Decision,
        status: Status = OK_STATUS,
        obligations: Iterable[Obligation] = (),
        resource_id: Optional[str] = None,
    ) -> "ResponseContext":
        return cls(
            results=(
                Result(
                    decision=decision,
                    status=status,
                    obligations=tuple(obligations),
                    resource_id=resource_id,
                ),
            )
        )

    @property
    def result(self) -> Result:
        if len(self.results) != 1:
            raise ValueError(f"response has {len(self.results)} results, expected 1")
        return self.results[0]

    @property
    def decision(self) -> Decision:
        return self.result.decision
