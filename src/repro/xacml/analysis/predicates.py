"""Normalization of XACML applicability predicates into a constraint algebra.

The analyzer never evaluates a live request; instead it rewrites each
``Target`` (a conjunction of AnyOf groups, each a disjunction of AllOf
conjunctions of ``Match`` elements) into disjunctive normal form over
per-attribute constraints:

* an equality match contributes a finite *allowed set*;
* an ordering match contributes a *bound* (XACML applies the function as
  ``f(literal, candidate)``, so ``greater-than`` means *literal >
  candidate* — an **upper** bound on the candidate);
* any other registered function becomes a residual :class:`Atom` that is
  still *concretely decidable*: it executes the real registered function
  against candidate values, so string predicates and regexps participate
  in emptiness and subsumption checks without bespoke theory.

Everything is three-valued (:class:`Tri`): the algebra answers YES only
when the claim holds under the analyzer's request model and NO only when
it provably fails; anything else is UNKNOWN and downstream checks skip
(or witness-verify) instead of guessing.

Request model
-------------
The algebra reasons about *single-valued* requests: one value per
(category, attribute-id, data-type) key.  Real XACML bags may hold
several values — ``equal "a"`` and ``equal "b"`` are simultaneously
satisfiable by the bag ``{a, b}`` — so conclusions here are relative to
that model.  The witness layer closes the gap: every finding that claims
concrete behaviour is replayed through the real engine before being
reported.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from .. import functions
from ..attributes import AttributeValue, Category, DataType
from ..expressions import (
    Apply,
    Condition,
    Designator,
    Expression,
    Literal,
)
from ..rules import Rule
from ..targets import AllOf, Match, Target

#: Upper limit on DNF clauses per normalized target.  Crossing it drops
#: clauses, turning the normal form into an *under*-approximation
#: (``exact=False``): the represented set is a subset of the true one,
#: which keeps overlap claims sound and forces subsumption/emptiness
#: claims about the truncated side to UNKNOWN.
MAX_CLAUSES = 64

ConstraintKey = tuple[Category, str, DataType]


class Tri(enum.Enum):
    """Three-valued verdict for static questions."""

    YES = "yes"
    NO = "no"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # guard against accidental truthiness
        raise TypeError("Tri verdicts must be compared explicitly")


def tri_all(verdicts: "list[Tri]") -> Tri:
    """Conjunction: YES iff all YES; NO if any NO; else UNKNOWN."""
    if any(v is Tri.NO for v in verdicts):
        return Tri.NO
    if any(v is Tri.UNKNOWN for v in verdicts):
        return Tri.UNKNOWN
    return Tri.YES


#: Probe values used to decide whether a match function can raise for
#: candidates of the designated type (a raise maps to Indeterminate at
#: evaluation time, which matters for redundancy soundness).
_PROBE_VALUES: dict[DataType, Any] = {
    DataType.STRING: "",
    DataType.BOOLEAN: False,
    DataType.INTEGER: 0,
    DataType.DOUBLE: 0.0,
    DataType.TIME: 0.0,
    DataType.DATE_TIME: 0.0,
    DataType.ANY_URI: "",
    DataType.RFC822_NAME: "",
    DataType.X500_NAME: "",
}

_EQUALITY_SHORT_NAMES = frozenset(
    f"{name}-equal"
    for name in (
        "string",
        "boolean",
        "integer",
        "double",
        "time",
        "dateTime",
        "anyURI",
        "rfc822Name",
        "x500Name",
    )
)


def _short_name(function_id: str) -> str:
    return function_id.rsplit(":", 1)[-1]


@dataclass(frozen=True)
class Atom:
    """A residual match predicate, decided by running the real function.

    ``holds_for`` returns True/False when the registered function decides
    the candidate, and None when the application raises (ill-typed match,
    bad regexp, ...) — the static mirror of Indeterminate.
    """

    function_id: str
    literal: AttributeValue

    def holds_for(self, candidate: AttributeValue) -> Optional[bool]:
        try:
            func = functions.lookup(self.function_id)
            result = func(self.literal, candidate)
        except functions.FunctionError:
            return None
        if isinstance(result, AttributeValue) and isinstance(result.value, bool):
            return bool(result.value)
        return None

    def describe(self) -> str:
        return f"{_short_name(self.function_id)}({self.literal.lexical()!r}, ·)"


@dataclass(frozen=True)
class AttributeConstraint:
    """Conjunction of requirements on one request attribute.

    ``allowed`` is a finite set of admissible raw values (None when the
    attribute is not equality-constrained); ``lower``/``upper`` are
    ``(value, inclusive)`` bounds on the candidate; ``atoms`` are residual
    predicates decided concretely.  A constraint always requires the
    attribute to be *present* — absence never satisfies a Match.
    """

    category: Category
    attribute_id: str
    data_type: DataType
    allowed: Optional[frozenset] = None
    lower: Optional[tuple[Any, bool]] = None
    upper: Optional[tuple[Any, bool]] = None
    atoms: tuple[Atom, ...] = ()

    @property
    def key(self) -> ConstraintKey:
        return (self.category, self.attribute_id, self.data_type)

    def conjoin(self, other: "AttributeConstraint") -> "AttributeConstraint":
        if self.key != other.key:
            raise ValueError("cannot conjoin constraints on different attributes")
        if self.allowed is None:
            allowed = other.allowed
        elif other.allowed is None:
            allowed = self.allowed
        else:
            allowed = self.allowed & other.allowed
        lower = _tighter_bound(self.lower, other.lower, prefer_max=True)
        upper = _tighter_bound(self.upper, other.upper, prefer_max=False)
        return AttributeConstraint(
            category=self.category,
            attribute_id=self.attribute_id,
            data_type=self.data_type,
            allowed=allowed,
            lower=lower,
            upper=upper,
            atoms=self.atoms + other.atoms,
        )

    def admits(self, value: Any) -> Optional[bool]:
        """Does a concrete raw value satisfy this constraint?

        None means a residual atom could not decide (its function raised).
        """
        if self.allowed is not None and value not in self.allowed:
            return False
        try:
            if self.lower is not None:
                bound, inclusive = self.lower
                if value < bound or (value == bound and not inclusive):
                    return False
            if self.upper is not None:
                bound, inclusive = self.upper
                if value > bound or (value == bound and not inclusive):
                    return False
        except TypeError:
            return None
        unknown = False
        for atom in self.atoms:
            held = atom.holds_for(AttributeValue(self.data_type, value))
            if held is False:
                return False
            if held is None:
                unknown = True
        return None if unknown else True

    def is_empty(self) -> Tri:
        if self.allowed is not None:
            verdicts = [self.admits(value) for value in self.allowed]
            if any(v is True for v in verdicts):
                return Tri.NO
            if all(v is False for v in verdicts):
                return Tri.YES
            return Tri.UNKNOWN
        if self._bounds_contradict():
            return Tri.YES
        sample = self.sample()
        if sample is not None:
            return Tri.NO
        if self.atoms:
            return Tri.UNKNOWN
        return Tri.NO

    def _bounds_contradict(self) -> bool:
        if self.lower is None or self.upper is None:
            return False
        lo, lo_inc = self.lower
        hi, hi_inc = self.upper
        try:
            if lo > hi:
                return True
            if lo == hi and not (lo_inc and hi_inc):
                return True
            if (
                self.data_type is DataType.INTEGER
                and not lo_inc
                and not hi_inc
                and hi - lo <= 1
            ):
                return True
        except TypeError:
            return False
        return False

    def sample(self) -> Optional[AttributeValue]:
        """A concrete value satisfying the constraint, if one is found."""
        for candidate in self._candidate_values():
            try:
                if self.admits(candidate) is True:
                    return AttributeValue(self.data_type, candidate)
            except TypeError:
                continue
        return None

    def _candidate_values(self) -> list:
        if self.allowed is not None:
            return sorted(self.allowed, key=repr)
        out: list = []
        numeric = self.data_type in (
            DataType.INTEGER,
            DataType.DOUBLE,
            DataType.TIME,
            DataType.DATE_TIME,
        )
        if numeric:
            step: Any = 1 if self.data_type is DataType.INTEGER else 0.5
            if self.lower is not None:
                lo, lo_inc = self.lower
                out.append(lo if lo_inc else lo + step)
            if self.upper is not None:
                hi, hi_inc = self.upper
                out.append(hi if hi_inc else hi - step)
            if self.lower is not None and self.upper is not None:
                lo, hi = self.lower[0], self.upper[0]
                mid = (lo + hi) // 2 if self.data_type is DataType.INTEGER else (
                    (lo + hi) / 2
                )
                out.append(mid)
            if not out:
                out.append(0 if self.data_type is DataType.INTEGER else 0.0)
        elif self.data_type is DataType.BOOLEAN:
            out.extend([True, False])
        else:
            # String-family: seed guesses from atom literals so concrete
            # predicates (starts-with, contains, regexp) have a chance.
            for atom in self.atoms:
                lex = atom.literal.lexical()
                out.extend([lex, lex + "x", "x" + lex])
            if self.lower is not None:
                out.append(self.lower[0])
            if self.upper is not None:
                out.append(self.upper[0])
            out.append("witness")
        return out

    def subsumes(self, other: "AttributeConstraint") -> Tri:
        """YES iff every value ``other`` admits is admitted by ``self``."""
        if self.key != other.key:
            return Tri.NO
        if other.allowed is not None:
            verdicts: list[Tri] = []
            for value in other.allowed:
                other_admits = other.admits(value)
                if other_admits is False:
                    continue  # not actually in other's set
                self_admits = self.admits(value)
                if other_admits is None or self_admits is None:
                    verdicts.append(Tri.UNKNOWN)
                elif self_admits:
                    verdicts.append(Tri.YES)
                else:
                    verdicts.append(Tri.NO)
            return tri_all(verdicts)
        if self.allowed is not None or self.atoms:
            # self is strictly narrower in form than a bounds-only other;
            # deciding coverage would need value enumeration we don't have.
            return Tri.UNKNOWN
        if other.atoms:
            # other's true set is a subset of its bounds; if our bounds
            # cover other's bounds, coverage follows.
            pass
        lower_ok = _bound_covers(self.lower, other.lower, is_lower=True)
        upper_ok = _bound_covers(self.upper, other.upper, is_lower=False)
        return tri_all([lower_ok, upper_ok])

    def describe(self) -> str:
        parts: list[str] = []
        if self.allowed is not None:
            values = ", ".join(sorted(repr(v) for v in self.allowed))
            parts.append(f"in {{{values}}}")
        if self.lower is not None:
            parts.append((">= " if self.lower[1] else "> ") + repr(self.lower[0]))
        if self.upper is not None:
            parts.append(("<= " if self.upper[1] else "< ") + repr(self.upper[0]))
        parts.extend(atom.describe() for atom in self.atoms)
        label = f"{self.category.short_name}:{self.attribute_id}"
        return f"{label} {' and '.join(parts) if parts else 'present'}"


def _tighter_bound(
    a: Optional[tuple[Any, bool]],
    b: Optional[tuple[Any, bool]],
    prefer_max: bool,
) -> Optional[tuple[Any, bool]]:
    if a is None:
        return b
    if b is None:
        return a
    try:
        if a[0] == b[0]:
            return (a[0], a[1] and b[1])
        if (a[0] > b[0]) == prefer_max:
            return a
        return b
    except TypeError:
        return a


def _bound_covers(
    ours: Optional[tuple[Any, bool]],
    theirs: Optional[tuple[Any, bool]],
    is_lower: bool,
) -> Tri:
    """Does our bound admit at least everything theirs admits?"""
    if ours is None:
        return Tri.YES
    if theirs is None:
        return Tri.NO  # we constrain a side they leave open
    try:
        if ours[0] == theirs[0]:
            return Tri.YES if (ours[1] or not theirs[1]) else Tri.NO
        looser = (ours[0] < theirs[0]) if is_lower else (ours[0] > theirs[0])
        return Tri.YES if looser else Tri.NO
    except TypeError:
        return Tri.UNKNOWN


@dataclass(frozen=True)
class Clause:
    """One DNF clause: a conjunction of per-attribute constraints.

    ``opaque`` marks a clause that also carries conditions the normalizer
    could not interpret: its true admitted set is a *subset* of what the
    listed constraints describe, so only claims that survive shrinking
    (emptiness stays empty; being subsumed stays subsumed) remain YES.
    """

    constraints: tuple[AttributeConstraint, ...] = ()
    opaque: bool = False

    def constraint(self, key: ConstraintKey) -> Optional[AttributeConstraint]:
        for constraint in self.constraints:
            if constraint.key == key:
                return constraint
        return None

    def conjoin(self, other: "Clause") -> "Clause":
        merged: dict[ConstraintKey, AttributeConstraint] = {
            c.key: c for c in self.constraints
        }
        for constraint in other.constraints:
            existing = merged.get(constraint.key)
            merged[constraint.key] = (
                constraint if existing is None else existing.conjoin(constraint)
            )
        ordered = tuple(
            merged[key] for key in sorted(merged, key=_key_sort)
        )
        return Clause(constraints=ordered, opaque=self.opaque or other.opaque)

    def is_empty(self) -> Tri:
        verdicts = [c.is_empty() for c in self.constraints]
        if any(v is Tri.YES for v in verdicts):
            return Tri.YES  # empty even under opaque shrinking
        if self.opaque or any(v is Tri.UNKNOWN for v in verdicts):
            return Tri.UNKNOWN
        return Tri.NO

    def subsumes(self, other: "Clause") -> Tri:
        """YES iff every request admitted by ``other`` is admitted by us.

        A constraint always demands attribute *presence*, so if we
        constrain a key ``other`` leaves free, ``other`` admits requests
        we reject — the answer is NO, not UNKNOWN.
        """
        if self.opaque:
            return Tri.UNKNOWN  # our true set may be smaller than described
        verdicts: list[Tri] = []
        for constraint in self.constraints:
            theirs = other.constraint(constraint.key)
            if theirs is None:
                return Tri.NO
            verdicts.append(constraint.subsumes(theirs))
        return tri_all(verdicts)

    def sample(self) -> Optional[dict[ConstraintKey, AttributeValue]]:
        """Concrete attribute values jointly satisfying every constraint."""
        out: dict[ConstraintKey, AttributeValue] = {}
        for constraint in self.constraints:
            value = constraint.sample()
            if value is None:
                return None
            out[constraint.key] = value
        return out

    def describe(self) -> str:
        if not self.constraints:
            return "any request" + (" (opaque condition)" if self.opaque else "")
        text = " AND ".join(c.describe() for c in self.constraints)
        return text + (" (opaque condition)" if self.opaque else "")


def _key_sort(key: ConstraintKey) -> tuple[str, str, str]:
    return (key[0].value, key[1], key[2].value)


#: The clause admitting every request.
ANY_CLAUSE = Clause()


@dataclass(frozen=True)
class NormalizedTarget:
    """A target in disjunctive normal form over attribute constraints.

    ``exact=False`` marks an *under*-approximation (clauses were dropped
    at :data:`MAX_CLAUSES`): the represented set is a subset of the true
    one.  Overlap claims built on the represented set stay sound; claims
    that need the *whole* set (being subsumed, being unsatisfiable)
    require ``exact=True``.
    """

    clauses: tuple[Clause, ...] = (ANY_CLAUSE,)
    exact: bool = True

    def conjoin(self, other: "NormalizedTarget") -> "NormalizedTarget":
        products: list[Clause] = []
        truncated = False
        for mine in self.clauses:
            for theirs in other.clauses:
                if len(products) >= MAX_CLAUSES:
                    truncated = True
                    break
                combined = mine.conjoin(theirs)
                if combined.is_empty() is not Tri.YES:
                    products.append(combined)
            if truncated:
                break
        return NormalizedTarget(
            clauses=tuple(products),
            exact=self.exact and other.exact and not truncated,
        )

    def is_unsatisfiable(self) -> Tri:
        if not self.clauses:
            return Tri.YES if self.exact else Tri.UNKNOWN
        verdicts = [clause.is_empty() for clause in self.clauses]
        if any(v is Tri.NO for v in verdicts):
            return Tri.NO
        if all(v is Tri.YES for v in verdicts):
            return Tri.YES if self.exact else Tri.UNKNOWN
        return Tri.UNKNOWN

    def subsumes(self, other: "NormalizedTarget") -> Tri:
        """YES iff every request ``other`` admits is admitted by us.

        ``other`` must be exact (an under-approximated other could admit
        requests we never saw); our own truncation is harmless — covering
        our represented subset already implies covering it.
        """
        if not other.exact:
            return Tri.UNKNOWN
        verdicts: list[Tri] = []
        for their_clause in other.clauses:
            if their_clause.is_empty() is Tri.YES:
                continue
            best = Tri.NO
            for my_clause in self.clauses:
                verdict = my_clause.subsumes(their_clause)
                if verdict is Tri.YES:
                    best = Tri.YES
                    break
                if verdict is Tri.UNKNOWN:
                    best = Tri.UNKNOWN
            verdicts.append(best)
        return tri_all(verdicts)

    def overlap_clause(
        self, other: "NormalizedTarget"
    ) -> tuple[Tri, Optional[Clause]]:
        """Is the intersection non-empty?  Returns a witnessing clause.

        YES needs a provably non-empty conjunction of non-opaque clauses
        (sound even under truncation — representing fewer requests only
        removes overlaps).  NO needs both sides exact.
        """
        unknown = False
        for mine in self.clauses:
            for theirs in other.clauses:
                combined = mine.conjoin(theirs)
                verdict = combined.is_empty()
                if verdict is Tri.NO:
                    return Tri.YES, combined
                if verdict is Tri.UNKNOWN:
                    unknown = True
        if unknown or not (self.exact and other.exact):
            return Tri.UNKNOWN, None
        return Tri.NO, None

    def sample(self) -> Optional[dict[ConstraintKey, AttributeValue]]:
        for clause in self.clauses:
            values = clause.sample()
            if values is not None:
                return values
        return None

    def describe(self) -> str:
        if not self.clauses:
            return "no request (unsatisfiable)"
        return " OR ".join(clause.describe() for clause in self.clauses)


#: The normalized form of the empty target.
UNCONSTRAINED = NormalizedTarget()
UNSATISFIABLE = NormalizedTarget(clauses=())


def match_constraint(match: Match) -> Optional[AttributeConstraint]:
    """Translate one Match into a constraint; None if the function is
    unregistered (the enclosing clause goes opaque)."""
    function_id = match.match_function
    if function_id not in functions.known_functions():
        return None
    designator = match.designator
    base = dict(
        category=designator.category,
        attribute_id=designator.attribute_id,
        data_type=designator.data_type,
    )
    short = _short_name(function_id)
    typed_ok = match.value.data_type is designator.data_type
    if short in _EQUALITY_SHORT_NAMES and typed_ok:
        return AttributeConstraint(allowed=frozenset([match.value.value]), **base)
    if typed_ok:
        literal_value = match.value.value
        # XACML applies f(literal, candidate): "greater-than" bounds the
        # candidate from ABOVE (literal > candidate), and symmetrically.
        if short.endswith("-greater-than-or-equal"):
            return AttributeConstraint(upper=(literal_value, True), **base)
        if short.endswith("-greater-than"):
            return AttributeConstraint(upper=(literal_value, False), **base)
        if short.endswith("-less-than-or-equal"):
            return AttributeConstraint(lower=(literal_value, True), **base)
        if short.endswith("-less-than"):
            return AttributeConstraint(lower=(literal_value, False), **base)
    return AttributeConstraint(
        atoms=(Atom(function_id=function_id, literal=match.value),), **base
    )


def match_may_error(match: Match) -> bool:
    """Can this match yield Indeterminate on *some* request?

    True when the designator is required-present (absence raises) or when
    the function application raises on a probe candidate of the
    designated type (ill-typed match, bad regexp, ...).
    """
    if match.designator.must_be_present:
        return True
    if match.match_function not in functions.known_functions():
        return True
    probe = AttributeValue(
        match.designator.data_type, _PROBE_VALUES[match.designator.data_type]
    )
    try:
        functions.lookup(match.match_function)(match.value, probe)
    except functions.FunctionError:
        return True
    return False


def _clause_from_all_of(all_of: AllOf) -> Clause:
    clause = ANY_CLAUSE
    for match in all_of.matches:
        constraint = match_constraint(match)
        clause = (
            Clause(constraints=clause.constraints, opaque=True)
            if constraint is None
            else clause.conjoin(Clause(constraints=(constraint,)))
        )
    return clause


def normalize_target(target: Target) -> NormalizedTarget:
    """Rewrite a Target into DNF over attribute constraints."""
    normalized = UNCONSTRAINED
    for any_of in target.any_ofs:
        alternatives = tuple(
            _clause_from_all_of(all_of) for all_of in any_of.all_ofs
        )
        normalized = normalized.conjoin(
            NormalizedTarget(clauses=alternatives)
        )
    return normalized


def target_may_error(target: Target) -> bool:
    return any(
        match_may_error(match)
        for any_of in target.any_ofs
        for all_of in any_of.all_ofs
        for match in all_of.matches
    )


def interpret_condition(
    condition: Condition,
) -> Optional[tuple[NormalizedTarget, bool]]:
    """Fold a recognized condition shape into the constraint algebra.

    Handles the idioms policies in this repo actually use — ``<type>-is-in
    (literal, designator)`` (the :func:`attribute_equals` builder),
    conjunctions of those via ``and``, and ``<type>-equal`` over a
    ``one-and-only`` designator.  Returns ``(normalized, may_error)`` or
    None when the expression is anything richer (the rule's condition is
    then treated as opaque).
    """
    return _interpret_boolean(condition.expression)


def _interpret_boolean(
    expression: Expression,
) -> Optional[tuple[NormalizedTarget, bool]]:
    if not isinstance(expression, Apply):
        return None
    short = _short_name(expression.function_id)
    if short == "and":
        combined = UNCONSTRAINED
        may_error = False
        for argument in expression.arguments:
            interpreted = _interpret_boolean(argument)
            if interpreted is None:
                return None
            normalized, argument_errors = interpreted
            combined = combined.conjoin(normalized)
            may_error = may_error or argument_errors
        return combined, may_error
    if short.endswith("-is-in") and len(expression.arguments) == 2:
        literal_node, designator_node = expression.arguments
        if isinstance(literal_node, Literal) and isinstance(
            designator_node, Designator
        ):
            designator = designator_node.designator
            if literal_node.value.data_type is not designator.data_type:
                return None
            constraint = AttributeConstraint(
                category=designator.category,
                attribute_id=designator.attribute_id,
                data_type=designator.data_type,
                allowed=frozenset([literal_node.value.value]),
            )
            return (
                NormalizedTarget(clauses=(Clause(constraints=(constraint,)),)),
                designator.must_be_present,
            )
    if short in _EQUALITY_SHORT_NAMES and len(expression.arguments) == 2:
        pairs = [
            (expression.arguments[0], expression.arguments[1]),
            (expression.arguments[1], expression.arguments[0]),
        ]
        for maybe_one_and_only, maybe_literal in pairs:
            if not isinstance(maybe_literal, Literal):
                continue
            if not isinstance(maybe_one_and_only, Apply):
                continue
            if not _short_name(maybe_one_and_only.function_id).endswith(
                "-one-and-only"
            ):
                continue
            if len(maybe_one_and_only.arguments) != 1:
                continue
            inner = maybe_one_and_only.arguments[0]
            if not isinstance(inner, Designator):
                continue
            designator = inner.designator
            if maybe_literal.value.data_type is not designator.data_type:
                return None
            constraint = AttributeConstraint(
                category=designator.category,
                attribute_id=designator.attribute_id,
                data_type=designator.data_type,
                allowed=frozenset([maybe_literal.value.value]),
            )
            # one-and-only raises whenever the bag size is not exactly 1.
            return (
                NormalizedTarget(clauses=(Clause(constraints=(constraint,)),)),
                True,
            )
    return None


@dataclass(frozen=True)
class RuleView:
    """A rule with its statically derived applicability.

    ``applicability`` folds the rule's target together with its condition
    when the condition is interpretable; ``opaque_condition`` records
    that an uninterpretable condition further restricts the true set
    (every clause is then marked opaque).  ``may_error`` is True when any
    part of the rule can evaluate Indeterminate on some request.
    """

    rule: Rule
    applicability: NormalizedTarget
    opaque_condition: bool = False
    may_error: bool = False

    @property
    def cannot_error(self) -> bool:
        return not self.may_error


def rule_view(rule: Rule) -> RuleView:
    normalized = normalize_target(rule.target)
    may_error = target_may_error(rule.target)
    opaque = False
    if rule.condition is not None:
        interpreted = interpret_condition(rule.condition)
        if interpreted is None:
            opaque = True
            may_error = True  # an arbitrary expression may raise
            normalized = NormalizedTarget(
                clauses=tuple(
                    Clause(constraints=clause.constraints, opaque=True)
                    for clause in normalized.clauses
                ),
                exact=normalized.exact,
            )
        else:
            condition_normalized, condition_errors = interpreted
            normalized = normalized.conjoin(condition_normalized)
            may_error = may_error or condition_errors
    return RuleView(
        rule=rule,
        applicability=normalized,
        opaque_condition=opaque,
        may_error=may_error,
    )
