"""Static checks over policies, policy sets and whole stores.

The detection strategy is *concolic*: the constraint algebra of
:mod:`.predicates` narrows the quadratic pair space down to statically
suspicious candidates, and every candidate that claims concrete runtime
behaviour must then reproduce through the real evaluation machinery
(:mod:`.witness`) before it is reported.  Candidates whose witness fails
are suppressed and counted — the analyzer trades recall for a zero
false-positive guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from .. import combining, validation
from ..attributes import (
    ACTION_ID,
    Category,
    DataType,
    RESOURCE_ID,
    SUBJECT_ID,
)
from ..context import Decision
from ..policy import (
    Policy,
    PolicyChild,
    PolicyReference,
    PolicySet,
    child_identifier,
)
from .findings import AnalysisReport, Finding, FindingKind
from .predicates import (
    ConstraintKey,
    NormalizedTarget,
    RuleView,
    Tri,
    UNCONSTRAINED,
    normalize_target,
    rule_view,
)
from .witness import (
    Resolver,
    WitnessOutcome,
    verify_cross_conflict,
    verify_only_one_overlap,
    verify_rule_masked,
    verify_rule_redundant,
    verify_rule_shadowed,
    verify_store_only_one_overlap,
)

Severity = validation.Severity

#: How many candidate clauses to try when synthesizing one witness.
MAX_WITNESS_ATTEMPTS = 4
#: How many per-effect applicability forms to keep per policy-set child.
MAX_EFFECT_FORMS = 8

_FIRST_APPLICABLE = frozenset(
    {combining.RULE_FIRST_APPLICABLE, combining.POLICY_FIRST_APPLICABLE}
)
_DENY_OVERRIDES = frozenset(
    {
        combining.RULE_DENY_OVERRIDES,
        combining.RULE_ORDERED_DENY_OVERRIDES,
        combining.POLICY_DENY_OVERRIDES,
    }
)
_PERMIT_OVERRIDES = frozenset(
    {
        combining.RULE_PERMIT_OVERRIDES,
        combining.RULE_ORDERED_PERMIT_OVERRIDES,
        combining.POLICY_PERMIT_OVERRIDES,
    }
)

#: Keys the pairwise scan may bucket children by (cheapest first).
_BUCKET_KEYS: tuple[ConstraintKey, ...] = (
    (Category.RESOURCE, RESOURCE_ID, DataType.STRING),
    (Category.ACTION, ACTION_ID, DataType.STRING),
    (Category.SUBJECT, SUBJECT_ID, DataType.STRING),
)


@dataclass
class _ChildProfile:
    """What the pairwise scan knows about one policy-set child."""

    child: PolicyChild
    identifier: str
    #: Normalized own target; None when the child is an unresolvable
    #: reference (excluded from pairwise reasoning).
    target_nt: Optional[NormalizedTarget]
    #: Applicability forms under which the child can permit / deny
    #: (target conjoined with leaf-rule applicability), capped.
    permit_forms: list[NormalizedTarget] = field(default_factory=list)
    deny_forms: list[NormalizedTarget] = field(default_factory=list)

    @property
    def any_forms(self) -> list[NormalizedTarget]:
        return self.permit_forms + self.deny_forms


class Analyzer:
    """One analysis run; accumulates findings into a report."""

    def __init__(
        self,
        resolver: Optional[Resolver] = None,
        metrics: Optional[object] = None,
    ) -> None:
        self.report = AnalysisReport()
        self.resolver = resolver
        self.metrics = metrics

    # -- bookkeeping -------------------------------------------------------

    def _emit(self, finding: Finding) -> None:
        self.report.findings.append(finding)
        if self.metrics is not None:
            self.metrics.bump("analysis.findings")

    def _witness_failed(self) -> None:
        self.report.stats.witnesses_failed += 1
        if self.metrics is not None:
            self.metrics.bump("analysis.witness_failed")

    def _witness_unsynthesizable(self) -> None:
        self.report.stats.witnesses_unsynthesizable += 1
        if self.metrics is not None:
            self.metrics.bump("analysis.witness_unsynthesizable")

    def _record_outcome(self, outcome: Optional[WitnessOutcome]) -> None:
        if outcome is None:
            self._witness_unsynthesizable()
        elif not outcome.ok:
            self._witness_failed()

    # -- entry points ------------------------------------------------------

    def analyze_element(
        self,
        element: Union[Policy, PolicySet],
        parent_nt: NormalizedTarget = UNCONSTRAINED,
    ) -> None:
        if isinstance(element, Policy):
            self._analyze_policy(element, parent_nt)
        else:
            self._analyze_set(element, parent_nt)

    def analyze_store_elements(
        self,
        elements: Sequence[Union[Policy, PolicySet]],
        policy_combining: str,
    ) -> None:
        """Treat a store's top-level elements as siblings combined by the
        engine's policy-combining algorithm."""
        for element in elements:
            self.analyze_element(element)
        profiles = [self._profile_child(child, UNCONSTRAINED) for child in elements]
        self._pairwise_checks(
            profiles,
            ctx_nt=UNCONSTRAINED,
            algorithm=policy_combining,
            location="store",
            enclosing_set=None,
            elements=list(elements),
        )

    # -- per-policy checks -------------------------------------------------

    def _analyze_policy(
        self, policy: Policy, parent_nt: NormalizedTarget
    ) -> None:
        self.report.stats.elements_analyzed += 1
        location = f"policy[{policy.policy_id}]"
        own_nt = normalize_target(policy.target)
        if own_nt.is_unsatisfiable() is Tri.YES:
            self._emit(
                Finding(
                    kind=FindingKind.DEAD_POLICY,
                    severity=Severity.WARNING,
                    location=location,
                    message="policy target is unsatisfiable; "
                    "no request can ever reach its rules",
                )
            )
            return
        ctx_nt = parent_nt.conjoin(own_nt)
        views = [rule_view(rule) for rule in policy.rules]
        self.report.stats.rules_analyzed += len(views)
        for view in views:
            if view.applicability.is_unsatisfiable() is Tri.YES:
                self._emit(
                    Finding(
                        kind=FindingKind.UNSATISFIABLE_TARGET,
                        severity=Severity.WARNING,
                        location=f"{location}/rule[{view.rule.rule_id}]",
                        message="rule target/condition is unsatisfiable; "
                        "the rule can never apply",
                    )
                )
        algorithm = policy.rule_combining
        if algorithm in _FIRST_APPLICABLE:
            self._check_first_applicable(policy, views, ctx_nt, location)
        elif algorithm in _DENY_OVERRIDES or algorithm in _PERMIT_OVERRIDES:
            winning = (
                Decision.DENY
                if algorithm in _DENY_OVERRIDES
                else Decision.PERMIT
            )
            self._check_overrides(policy, views, ctx_nt, location, winning)

    def _check_first_applicable(
        self,
        policy: Policy,
        views: list[RuleView],
        ctx_nt: NormalizedTarget,
        location: str,
    ) -> None:
        """Under first-applicable, an earlier rule whose applicability
        covers a later rule's means the later rule never decides: a
        MATCH stops iteration, and so does an Indeterminate."""
        flagged: set[str] = set()
        for j in range(1, len(views)):
            later = views[j]
            if later.rule.rule_id in flagged:
                continue
            for i in range(j):
                earlier = views[i]
                self.report.stats.pairs_considered += 1
                if (
                    earlier.applicability.subsumes(later.applicability)
                    is not Tri.YES
                ):
                    continue
                witness_nt = ctx_nt.conjoin(later.applicability)
                rule_location = f"{location}/rule[{later.rule.rule_id}]"
                if earlier.rule.effect is not later.rule.effect:
                    outcome = self._verify(
                        witness_nt,
                        lambda clause, rule=later.rule: verify_rule_shadowed(
                            policy, rule, clause
                        ),
                    )
                    if outcome is not None and outcome.ok:
                        self._emit(
                            Finding(
                                kind=FindingKind.SHADOWED_RULE,
                                severity=Severity.ERROR,
                                location=rule_location,
                                message=(
                                    f"always shadowed by earlier rule "
                                    f"{earlier.rule.rule_id!r} under "
                                    f"first-applicable; its "
                                    f"{later.rule.effect.value} can never "
                                    f"be produced"
                                ),
                                witness=outcome.request,
                                witness_decision=outcome.decision,
                            )
                        )
                        flagged.add(later.rule.rule_id)
                        break
                    self._record_outcome(outcome)
                else:
                    outcome = self._verify(
                        witness_nt,
                        lambda clause, rule=later.rule: verify_rule_redundant(
                            policy, rule, clause
                        ),
                    )
                    if outcome is not None and outcome.ok:
                        self._emit(
                            Finding(
                                kind=FindingKind.REDUNDANT_RULE,
                                severity=Severity.WARNING,
                                location=rule_location,
                                message=(
                                    f"never reached: earlier same-effect "
                                    f"rule {earlier.rule.rule_id!r} covers "
                                    f"it under first-applicable"
                                ),
                                witness=outcome.request,
                                witness_decision=outcome.decision,
                            )
                        )
                        flagged.add(later.rule.rule_id)
                        break
                    self._record_outcome(outcome)

    def _check_overrides(
        self,
        policy: Policy,
        views: list[RuleView],
        ctx_nt: NormalizedTarget,
        location: str,
        winning: Decision,
    ) -> None:
        masked_flagged: set[str] = set()
        redundant_flagged: set[str] = set()
        for j, view in enumerate(views):
            rule_location = f"{location}/rule[{view.rule.rule_id}]"
            for i, other in enumerate(views):
                if i == j:
                    continue
                # Masking: an overriding-effect rule covers this rule's
                # whole applicability, so its weaker effect never wins.
                # The masker may be error-prone — an Indeterminate still
                # beats the weaker effect under the overrides bias.
                if (
                    view.rule.effect is not winning
                    and other.rule.effect is winning
                    and view.rule.rule_id not in masked_flagged
                ):
                    self.report.stats.pairs_considered += 1
                    if (
                        other.applicability.subsumes(view.applicability)
                        is Tri.YES
                    ):
                        outcome = self._verify(
                            ctx_nt.conjoin(view.applicability),
                            lambda clause, rule=view.rule: verify_rule_masked(
                                policy, rule, clause
                            ),
                        )
                        if outcome is not None and outcome.ok:
                            self._emit(
                                Finding(
                                    kind=FindingKind.MASKED_EFFECT,
                                    severity=Severity.ERROR,
                                    location=rule_location,
                                    message=(
                                        f"{view.rule.effect.value} can never "
                                        f"win: rule {other.rule.rule_id!r} "
                                        f"({winning.value}) covers its whole "
                                        f"applicability under "
                                        f"{_algorithm_name(policy.rule_combining)}"
                                    ),
                                    witness=outcome.request,
                                    witness_decision=outcome.decision,
                                )
                            )
                            masked_flagged.add(view.rule.rule_id)
                        else:
                            self._record_outcome(outcome)
                # Redundancy: a same-effect rule covers this one and
                # neither can evaluate Indeterminate, so removal changes
                # no decision.  (An error-capable rule's Indeterminate
                # can flip the combined outcome, hence both guards.)
                if (
                    view.rule.effect is other.rule.effect
                    and view.rule.rule_id not in redundant_flagged
                    and view.cannot_error
                    and other.cannot_error
                ):
                    self.report.stats.pairs_considered += 1
                    if (
                        other.applicability.subsumes(view.applicability)
                        is Tri.YES
                    ):
                        outcome = self._verify(
                            ctx_nt.conjoin(view.applicability),
                            lambda clause, rule=view.rule: verify_rule_redundant(
                                policy, rule, clause
                            ),
                        )
                        if outcome is not None and outcome.ok:
                            self._emit(
                                Finding(
                                    kind=FindingKind.REDUNDANT_RULE,
                                    severity=Severity.WARNING,
                                    location=rule_location,
                                    message=(
                                        f"subsumed by same-effect rule "
                                        f"{other.rule.rule_id!r}; removing it "
                                        f"changes no decision"
                                    ),
                                    witness=outcome.request,
                                    witness_decision=outcome.decision,
                                )
                            )
                            redundant_flagged.add(view.rule.rule_id)
                        else:
                            self._record_outcome(outcome)

    # -- per-set checks ----------------------------------------------------

    def _analyze_set(
        self, policy_set: PolicySet, parent_nt: NormalizedTarget
    ) -> None:
        self.report.stats.elements_analyzed += 1
        location = f"policySet[{policy_set.policy_set_id}]"
        own_nt = normalize_target(policy_set.target)
        if own_nt.is_unsatisfiable() is Tri.YES:
            self._emit(
                Finding(
                    kind=FindingKind.DEAD_POLICY,
                    severity=Severity.WARNING,
                    location=location,
                    message="policy set target is unsatisfiable; "
                    "no request can ever reach its children",
                )
            )
            return
        ctx_nt = parent_nt.conjoin(own_nt)
        profiles: list[_ChildProfile] = []
        for child in policy_set.children:
            resolved = self._resolve_child(child)
            if resolved is not None:
                self.analyze_element(resolved, ctx_nt)
            profiles.append(self._profile_child(child, ctx_nt))
        self._pairwise_checks(
            profiles,
            ctx_nt=ctx_nt,
            algorithm=policy_set.policy_combining,
            location=location,
            enclosing_set=policy_set,
            elements=None,
        )

    def _resolve_child(
        self, child: PolicyChild
    ) -> Optional[Union[Policy, PolicySet]]:
        if isinstance(child, (Policy, PolicySet)):
            return child
        if self.resolver is None:
            return None
        resolved = self.resolver(child.reference_id)
        if isinstance(resolved, (Policy, PolicySet)):
            return resolved
        return None

    def _profile_child(
        self, child: PolicyChild, ctx_nt: NormalizedTarget
    ) -> _ChildProfile:
        identifier = child_identifier(child)
        resolved = self._resolve_child(child)
        if resolved is None:
            return _ChildProfile(
                child=child, identifier=identifier, target_nt=None
            )
        target_nt = normalize_target(resolved.target)
        profile = _ChildProfile(
            child=child, identifier=identifier, target_nt=target_nt
        )
        leaf_policies = (
            [resolved] if isinstance(resolved, Policy) else resolved.flatten()
        )
        for leaf in leaf_policies:
            leaf_nt = (
                target_nt
                if leaf is resolved
                else target_nt.conjoin(normalize_target(leaf.target))
            )
            for rule in leaf.rules:
                forms = (
                    profile.permit_forms
                    if rule.effect is Decision.PERMIT
                    else profile.deny_forms
                )
                if len(forms) >= MAX_EFFECT_FORMS:
                    continue
                forms.append(leaf_nt.conjoin(rule_view(rule).applicability))
        return profile

    def _pairwise_checks(
        self,
        profiles: list[_ChildProfile],
        ctx_nt: NormalizedTarget,
        algorithm: str,
        location: str,
        enclosing_set: Optional[PolicySet],
        elements: Optional[list],
    ) -> None:
        only_one = algorithm == combining.POLICY_ONLY_ONE_APPLICABLE
        for i, j in _candidate_pairs(profiles):
            first, second = profiles[i], profiles[j]
            self.report.stats.pairs_considered += 1
            if only_one:
                self._check_only_one_pair(
                    first, second, ctx_nt, location, enclosing_set, elements
                )
            else:
                self._check_conflict_pair(first, second, ctx_nt, location)

    def _check_only_one_pair(
        self,
        first: _ChildProfile,
        second: _ChildProfile,
        ctx_nt: NormalizedTarget,
        location: str,
        enclosing_set: Optional[PolicySet],
        elements: Optional[list],
    ) -> None:
        attempted = False
        for first_form in first.any_forms[:MAX_WITNESS_ATTEMPTS]:
            for second_form in second.any_forms[:MAX_WITNESS_ATTEMPTS]:
                verdict, clause = ctx_nt.conjoin(first_form).overlap_clause(
                    second_form
                )
                if verdict is not Tri.YES or clause is None:
                    continue
                attempted = True
                outcome = (
                    verify_only_one_overlap(enclosing_set, clause, self.resolver)
                    if enclosing_set is not None
                    else verify_store_only_one_overlap(
                        elements or [], clause, self.resolver
                    )
                )
                if outcome.ok:
                    self._emit(
                        Finding(
                            kind=FindingKind.ONLY_ONE_APPLICABLE_OVERLAP,
                            severity=Severity.ERROR,
                            location=location,
                            message=(
                                f"children {first.identifier!r} and "
                                f"{second.identifier!r} are both applicable "
                                f"to a common request; only-one-applicable "
                                f"yields Indeterminate there"
                            ),
                            witness=outcome.request,
                            witness_decision=outcome.decision,
                        )
                    )
                    return
        if attempted:
            self._witness_failed()

    def _check_conflict_pair(
        self,
        first: _ChildProfile,
        second: _ChildProfile,
        ctx_nt: NormalizedTarget,
        location: str,
    ) -> None:
        """Opposite definitive outcomes on one request: the combining
        algorithm silently arbitrates between sibling authorities."""
        combos = [
            (first.permit_forms, second.deny_forms),
            (first.deny_forms, second.permit_forms),
        ]
        attempted = False
        for first_pool, second_pool in combos:
            for first_form in first_pool[:MAX_WITNESS_ATTEMPTS]:
                for second_form in second_pool[:MAX_WITNESS_ATTEMPTS]:
                    verdict, clause = ctx_nt.conjoin(
                        first_form
                    ).overlap_clause(second_form)
                    if verdict is not Tri.YES or clause is None:
                        continue
                    attempted = True
                    outcome, first_decision, second_decision = (
                        verify_cross_conflict(
                            first.child, second.child, clause, self.resolver
                        )
                    )
                    if outcome.ok:
                        self._emit(
                            Finding(
                                kind=FindingKind.CROSS_POLICY_CONFLICT,
                                severity=Severity.WARNING,
                                location=location,
                                message=(
                                    f"{first.identifier!r} decides "
                                    f"{first_decision.value} while "
                                    f"{second.identifier!r} decides "
                                    f"{second_decision.value} on the same "
                                    f"request; the combining algorithm "
                                    f"arbitrates"
                                ),
                                witness=outcome.request,
                                witness_decision=outcome.decision,
                            )
                        )
                        return
        if attempted:
            self._witness_failed()

    # -- witness plumbing --------------------------------------------------

    def _verify(self, witness_nt: NormalizedTarget, verify) -> (
        Optional[WitnessOutcome]
    ):
        """Try up to MAX_WITNESS_ATTEMPTS clauses; first success wins.

        Returns the successful outcome, the last failing outcome, or None
        when no clause produced a concrete request at all.
        """
        last: Optional[WitnessOutcome] = None
        attempts = 0
        for clause in witness_nt.clauses:
            if attempts >= MAX_WITNESS_ATTEMPTS:
                break
            if clause.is_empty() is Tri.YES:
                continue
            attempts += 1
            outcome = verify(clause)
            if outcome.ok:
                return outcome
            if outcome.reason == "replay-mismatch":
                last = outcome
        return last


def _finite_values(
    nt: NormalizedTarget, key: ConstraintKey
) -> Optional[frozenset]:
    """The finite set of values ``key`` may take under ``nt``, or None
    when some clause leaves it unconstrained (wildcard)."""
    values: set = set()
    for clause in nt.clauses:
        constraint = clause.constraint(key)
        if constraint is None or constraint.allowed is None:
            return None
        values |= constraint.allowed
    return frozenset(values)


def _candidate_pairs(profiles: list[_ChildProfile]) -> list[tuple[int, int]]:
    """Cheap pair enumeration: bucket children by the finite equality
    values of the most selective of the three canonical identifiers,
    pairing wildcard children with everyone.  Falls back to all pairs
    when nothing buckets well."""
    if len(profiles) < 2:
        return []
    best_key: Optional[ConstraintKey] = None
    best_wildcards = len(profiles) + 1
    value_maps: dict[ConstraintKey, list[Optional[frozenset]]] = {}
    for key in _BUCKET_KEYS:
        per_child = [
            None if p.target_nt is None else _finite_values(p.target_nt, key)
            for p in profiles
        ]
        value_maps[key] = per_child
        wildcards = sum(1 for v in per_child if v is None)
        if wildcards < best_wildcards:
            best_wildcards = wildcards
            best_key = key
    assert best_key is not None
    per_child = value_maps[best_key]
    if best_wildcards == len(profiles):
        return [
            (i, j)
            for i in range(len(profiles))
            for j in range(i + 1, len(profiles))
        ]
    buckets: dict = {}
    wildcards: list[int] = []
    for index, values in enumerate(per_child):
        if values is None:
            wildcards.append(index)
            continue
        for value in values:
            buckets.setdefault(value, []).append(index)
    pairs: set[tuple[int, int]] = set()
    for members in buckets.values():
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                i, j = members[a], members[b]
                pairs.add((min(i, j), max(i, j)))
    for w in wildcards:
        for other in range(len(profiles)):
            if other != w:
                pairs.add((min(w, other), max(w, other)))
    return sorted(pairs)


def _algorithm_name(identifier: str) -> str:
    return identifier.rsplit(":", 1)[-1]


def analyze(
    subject,
    *,
    policy_combining: str = combining.POLICY_DENY_OVERRIDES,
    resolver: Optional[Resolver] = None,
    include_validation: bool = True,
    metrics: Optional[object] = None,
) -> AnalysisReport:
    """Statically analyze a Policy, PolicySet or PolicyStore.

    Args:
        subject: the element or store to analyze.
        policy_combining: for a store, the engine-level combining
            algorithm its elements meet under.
        resolver: resolves ``PolicyReference`` children by id; defaults
            to the store's own lookup when a store is given.
        include_validation: fold structural :mod:`..validation` issues
            into the report.
        metrics: optional :class:`repro.simnet.metrics.MetricsRegistry`
            receiving ``analysis.*`` counters.
    """
    from ..engine import PolicyStore  # local import to avoid a cycle

    if isinstance(subject, PolicyStore):
        elements = subject.elements()
        analyzer = Analyzer(resolver=resolver or subject.get, metrics=metrics)
        analyzer.analyze_store_elements(elements, policy_combining)
        if include_validation:
            for element in elements:
                analyzer.report.validation_issues.extend(
                    validation.validate(element, resolver=analyzer.resolver)
                )
        return analyzer.report
    analyzer = Analyzer(resolver=resolver, metrics=metrics)
    analyzer.analyze_element(subject)
    if include_validation:
        analyzer.report.validation_issues.extend(
            validation.validate(subject, resolver=resolver)
        )
    return analyzer.report
