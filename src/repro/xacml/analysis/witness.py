"""Witness synthesis and engine replay: the analyzer's trust anchor.

Every finding that claims concrete runtime behaviour — a rule that never
fires, a permit that can never win, an only-one-applicable overlap — is
backed by a synthesized :class:`RequestContext` drawn from the static
overlap clause and *replayed through the real evaluation machinery*.  If
the replay does not reproduce the claim, the candidate finding is
suppressed and counted; reported findings are therefore free of static
false positives by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from .. import combining
from ..attributes import Attribute
from ..context import Decision, RequestContext
from ..expressions import EvaluationContext
from ..policy import Policy, PolicyChild, PolicySet
from ..rules import Rule
from .predicates import Clause

#: Resolver signature matching ``PolicyStore.get``.
Resolver = Callable[[str], Optional[object]]


@dataclass(frozen=True)
class WitnessOutcome:
    """Result of trying to back one candidate finding with a witness."""

    ok: bool
    request: Optional[RequestContext] = None
    decision: Optional[Decision] = None
    #: "" on success; "unsynthesizable" when no concrete request could be
    #: drawn from the clause; "replay-mismatch" when the engine disagreed.
    reason: str = ""


_UNSYNTHESIZABLE = WitnessOutcome(ok=False, reason="unsynthesizable")


def request_from_clause(clause: Clause) -> Optional[RequestContext]:
    """Build a concrete request satisfying every constraint in a clause."""
    values = clause.sample()
    if values is None:
        return None
    request = RequestContext()
    for (category, attribute_id, _data_type), value in values.items():
        request.add(category, Attribute.of(attribute_id, value))
    return request


def _evaluation_context(
    request: RequestContext, resolver: Optional[Resolver]
) -> EvaluationContext:
    return EvaluationContext(request=request, reference_resolver=resolver)


def _rule_fires(rule: Rule, request: RequestContext) -> bool:
    result = rule.evaluate(_evaluation_context(request, None))
    return result.decision is rule.effect


def _policy_decision(
    policy: Policy, request: RequestContext, resolver: Optional[Resolver]
) -> Decision:
    return policy.evaluate(_evaluation_context(request, resolver)).decision


def _without_rule(policy: Policy, rule_id: str) -> Policy:
    return replace(
        policy,
        rules=tuple(rule for rule in policy.rules if rule.rule_id != rule_id),
    )


def verify_rule_shadowed(
    policy: Policy, shadowed: Rule, clause: Clause
) -> WitnessOutcome:
    """The shadowed rule fires in isolation, yet the policy decides
    something other than its effect."""
    request = request_from_clause(clause)
    if request is None:
        return _UNSYNTHESIZABLE
    if not _rule_fires(shadowed, request):
        return WitnessOutcome(ok=False, request=request, reason="replay-mismatch")
    decision = _policy_decision(policy, request, None)
    if decision is shadowed.effect:
        return WitnessOutcome(ok=False, request=request, reason="replay-mismatch")
    return WitnessOutcome(ok=True, request=request, decision=decision)


def verify_rule_redundant(
    policy: Policy, redundant: Rule, clause: Clause
) -> WitnessOutcome:
    """The redundant rule fires in isolation, and removing it leaves the
    policy's decision on the witness unchanged."""
    request = request_from_clause(clause)
    if request is None:
        return _UNSYNTHESIZABLE
    if not _rule_fires(redundant, request):
        return WitnessOutcome(ok=False, request=request, reason="replay-mismatch")
    decision = _policy_decision(policy, request, None)
    without = _policy_decision(_without_rule(policy, redundant.rule_id), request, None)
    if decision is not without:
        return WitnessOutcome(ok=False, request=request, reason="replay-mismatch")
    return WitnessOutcome(ok=True, request=request, decision=decision)


def verify_rule_masked(
    policy: Policy, masked: Rule, clause: Clause
) -> WitnessOutcome:
    """The masked rule fires in isolation, yet its effect never surfaces."""
    request = request_from_clause(clause)
    if request is None:
        return _UNSYNTHESIZABLE
    if not _rule_fires(masked, request):
        return WitnessOutcome(ok=False, request=request, reason="replay-mismatch")
    decision = _policy_decision(policy, request, None)
    if decision is masked.effect:
        return WitnessOutcome(ok=False, request=request, reason="replay-mismatch")
    return WitnessOutcome(ok=True, request=request, decision=decision)


def _element_decision(
    element: PolicyChild, request: RequestContext, resolver: Optional[Resolver]
) -> tuple[Decision, str]:
    result = element.evaluate(_evaluation_context(request, resolver))
    message = result.status.message if result.status is not None else ""
    return result.decision, message


def verify_only_one_overlap(
    policy_set: PolicySet, clause: Clause, resolver: Optional[Resolver]
) -> WitnessOutcome:
    """The set evaluates Indeterminate because more than one child applies."""
    request = request_from_clause(clause)
    if request is None:
        return _UNSYNTHESIZABLE
    decision, message = _element_decision(policy_set, request, resolver)
    if decision is Decision.INDETERMINATE and "more than one" in message:
        return WitnessOutcome(ok=True, request=request, decision=decision)
    return WitnessOutcome(ok=False, request=request, reason="replay-mismatch")


def verify_store_only_one_overlap(
    elements: Sequence[PolicyChild],
    clause: Clause,
    resolver: Optional[Resolver],
) -> WitnessOutcome:
    """Store-level variant: wrap the top elements in the only-one-applicable
    combiner exactly as the engine would."""
    request = request_from_clause(clause)
    if request is None:
        return _UNSYNTHESIZABLE
    ctx = _evaluation_context(request, resolver)
    combiner = combining.lookup(combining.POLICY_ONLY_ONE_APPLICABLE)
    evaluables = [
        (lambda e=element: _outcome(e, ctx)) for element in elements
    ]
    decision, status = combiner(evaluables)
    message = status.message if status is not None else ""
    if decision is Decision.INDETERMINATE and "more than one" in message:
        return WitnessOutcome(ok=True, request=request, decision=decision)
    return WitnessOutcome(ok=False, request=request, reason="replay-mismatch")


def _outcome(element: PolicyChild, ctx: EvaluationContext):
    result = element.evaluate(ctx)
    return result.decision, result.status


def verify_cross_conflict(
    first: PolicyChild,
    second: PolicyChild,
    clause: Clause,
    resolver: Optional[Resolver],
) -> tuple[WitnessOutcome, Optional[Decision], Optional[Decision]]:
    """Both children decide definitively — and oppositely — on the witness.

    Returns the outcome plus each child's individual decision so the
    finding message can name who permits and who denies.
    """
    request = request_from_clause(clause)
    if request is None:
        return _UNSYNTHESIZABLE, None, None
    first_decision, _ = _element_decision(first, request, resolver)
    second_decision, _ = _element_decision(second, request, resolver)
    definitive = first_decision.is_definitive and second_decision.is_definitive
    if definitive and first_decision is not second_decision:
        return (
            WitnessOutcome(ok=True, request=request, decision=first_decision),
            first_decision,
            second_decision,
        )
    return (
        WitnessOutcome(ok=False, request=request, reason="replay-mismatch"),
        first_decision,
        second_decision,
    )
