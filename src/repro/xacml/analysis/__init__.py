"""Static policy-set analysis: shadowing, masking, redundancy, conflicts.

The analyzer answers the pre-deployment question the paper's
dependability argument needs answered about *policies* (not plumbing):
does this policy tree contain rules that can never fire, permits that
can never win, or sibling authorities that contradict each other?  It
never evaluates a live request — it normalizes applicability predicates
into a constraint algebra (:mod:`.predicates`), scans for structural
hazards (:mod:`.checks`), and backs every behavioural claim with a
concrete witness request replayed through the real engine
(:mod:`.witness`), so reported findings carry zero static false
positives by construction.

Usage::

    from repro.xacml.analysis import analyze
    report = analyze(policy_or_set_or_store)
    if report.has_errors:
        ...

or from the command line::

    python -m repro.xacml.analysis policies/*.xml --format json
"""

from .checks import Analyzer, analyze
from .findings import (
    AnalysisReport,
    AnalysisStats,
    Finding,
    FindingKind,
    WITNESS_KINDS,
)
from .predicates import (
    AttributeConstraint,
    Clause,
    NormalizedTarget,
    RuleView,
    Tri,
    interpret_condition,
    normalize_target,
    rule_view,
)
from .witness import WitnessOutcome, request_from_clause

__all__ = [
    "Analyzer",
    "analyze",
    "AnalysisReport",
    "AnalysisStats",
    "Finding",
    "FindingKind",
    "WITNESS_KINDS",
    "AttributeConstraint",
    "Clause",
    "NormalizedTarget",
    "RuleView",
    "Tri",
    "interpret_condition",
    "normalize_target",
    "rule_view",
    "WitnessOutcome",
    "request_from_clause",
]
