"""Finding taxonomy and the analysis report.

Findings are graded with the same :class:`~repro.xacml.validation.
Severity` scale the structural validator uses, so one report can fold
both layers together and deployment gates can block on a single
threshold.  Witness-bearing kinds (shadowing, redundancy, masking,
conflicts) are only ever emitted after the witness replayed successfully
through the real engine — suppressed candidates are counted, not
reported.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Optional

from ..context import Decision, RequestContext
from ..validation import Severity, ValidationIssue


class FindingKind(enum.Enum):
    """What the analyzer can prove about a policy tree."""

    #: Under first-applicable, an earlier rule with a different effect
    #: always fires first: the later rule's effect can never be produced.
    SHADOWED_RULE = "shadowed-rule"
    #: An earlier same-effect rule covers this rule entirely; removing it
    #: changes no decision.
    REDUNDANT_RULE = "redundant-rule"
    #: Under deny-/permit-overrides, a rule of the weaker effect can never
    #: win: whenever it applies, an overriding rule also applies.
    MASKED_EFFECT = "masked-effect"
    #: Two children of an only-one-applicable set match a common request —
    #: guaranteed Indeterminate territory.
    ONLY_ONE_APPLICABLE_OVERLAP = "only-one-applicable-overlap"
    #: Two sibling policies reach opposite definitive decisions on the
    #: same request; the combining algorithm silently arbitrates.
    CROSS_POLICY_CONFLICT = "cross-policy-conflict"
    #: A policy or policy set whose target no request can satisfy.
    DEAD_POLICY = "dead-policy"
    #: A rule whose own applicability is unsatisfiable.
    UNSATISFIABLE_TARGET = "unsatisfiable-target"


#: Kinds whose reports must carry an engine-verified witness request.
WITNESS_KINDS = frozenset(
    {
        FindingKind.SHADOWED_RULE,
        FindingKind.REDUNDANT_RULE,
        FindingKind.MASKED_EFFECT,
        FindingKind.ONLY_ONE_APPLICABLE_OVERLAP,
        FindingKind.CROSS_POLICY_CONFLICT,
    }
)


@dataclass(frozen=True)
class Finding:
    """One analyzer verdict about a specific location in the tree."""

    kind: FindingKind
    severity: Severity
    location: str
    message: str
    #: Concrete request reproducing the claimed behaviour through the
    #: real engine (required for kinds in :data:`WITNESS_KINDS`).
    witness: Optional[RequestContext] = None
    #: Decision the witness produces on the enclosing element, recorded
    #: so reports are self-describing.
    witness_decision: Optional[Decision] = None

    def to_dict(self) -> dict:
        out: dict = {
            "kind": self.kind.value,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
        }
        if self.witness is not None:
            out["witness"] = {
                "subject": self.witness.subject_id,
                "resource": self.witness.resource_id,
                "action": self.witness.action_id,
            }
        if self.witness_decision is not None:
            out["witness_decision"] = self.witness_decision.value
        return out

    def render(self) -> str:
        line = (
            f"[{self.severity.value.upper():7}] {self.kind.value:28} "
            f"{self.location}: {self.message}"
        )
        if self.witness is not None:
            line += (
                f"\n          witness: subject={self.witness.subject_id!r} "
                f"resource={self.witness.resource_id!r} "
                f"action={self.witness.action_id!r}"
            )
            if self.witness_decision is not None:
                line += f" -> {self.witness_decision.value}"
        return line


@dataclass
class AnalysisStats:
    """Work and suppression counters for one analyzer run."""

    elements_analyzed: int = 0
    rules_analyzed: int = 0
    pairs_considered: int = 0
    #: Candidate findings whose witness failed to reproduce through the
    #: engine — suppressed, never reported.
    witnesses_failed: int = 0
    #: Candidate findings for which no concrete witness request could be
    #: synthesized — suppressed, never reported.
    witnesses_unsynthesizable: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "elements_analyzed": self.elements_analyzed,
            "rules_analyzed": self.rules_analyzed,
            "pairs_considered": self.pairs_considered,
            "witnesses_failed": self.witnesses_failed,
            "witnesses_unsynthesizable": self.witnesses_unsynthesizable,
        }


@dataclass
class AnalysisReport:
    """Everything one ``analyze()`` run learned."""

    findings: list[Finding] = field(default_factory=list)
    #: Structural issues from :mod:`repro.xacml.validation`, folded in so
    #: a single report covers both layers.
    validation_issues: list[ValidationIssue] = field(default_factory=list)
    stats: AnalysisStats = field(default_factory=AnalysisStats)

    def by_kind(self, kind: FindingKind) -> list[Finding]:
        return [f for f in self.findings if f.kind is kind]

    def blocking(self, level: Severity = Severity.ERROR) -> list[Finding]:
        """Findings at or above the given severity threshold."""
        if level is Severity.WARNING:
            return list(self.findings)
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def has_errors(self) -> bool:
        return bool(self.blocking(Severity.ERROR)) or any(
            issue.severity is Severity.ERROR for issue in self.validation_issues
        )

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "validation_issues": [
                {
                    "severity": issue.severity.value,
                    "location": issue.location,
                    "message": issue.message,
                }
                for issue in self.validation_issues
            ],
            "stats": self.stats.to_dict(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render_text(self) -> str:
        lines: list[str] = []
        if not self.findings and not self.validation_issues:
            lines.append("no findings")
        for finding in sorted(
            self.findings,
            key=lambda f: (f.severity is not Severity.ERROR, f.location),
        ):
            lines.append(finding.render())
        for issue in self.validation_issues:
            lines.append(
                f"[{issue.severity.value.upper():7}] "
                f"{'structural':28} {issue.location}: {issue.message}"
            )
        stats = self.stats
        lines.append(
            f"-- {stats.elements_analyzed} elements, "
            f"{stats.rules_analyzed} rules, "
            f"{stats.pairs_considered} pairs considered; "
            f"{len(self.findings)} findings "
            f"({stats.witnesses_failed} suppressed by witness replay, "
            f"{stats.witnesses_unsynthesizable} unsynthesizable)"
        )
        return "\n".join(lines)
