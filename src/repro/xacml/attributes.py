"""XACML attribute model: categories, data types, values, bags, designators.

XACML describes every access request as attributes in four categories —
subject, resource, action and environment — and policies reference those
attributes through *designators* that resolve to *bags* of typed values.
This module implements that model closely following XACML 2.0.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional


class Category(enum.Enum):
    """The four XACML 2.0 attribute categories."""

    SUBJECT = "urn:oasis:names:tc:xacml:1.0:subject-category:access-subject"
    RESOURCE = "urn:oasis:names:tc:xacml:3.0:attribute-category:resource"
    ACTION = "urn:oasis:names:tc:xacml:3.0:attribute-category:action"
    ENVIRONMENT = "urn:oasis:names:tc:xacml:3.0:attribute-category:environment"
    #: Used by the Administration & Delegation profile (repro.admin.delegation).
    DELEGATE = "urn:oasis:names:tc:xacml:3.0:attribute-category:delegate"

    @property
    def short_name(self) -> str:
        return self.name.lower()

    @classmethod
    def from_short_name(cls, name: str) -> "Category":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(f"unknown attribute category {name!r}") from None


class DataType(enum.Enum):
    """XML-Schema-derived data types supported by the engine."""

    STRING = "http://www.w3.org/2001/XMLSchema#string"
    BOOLEAN = "http://www.w3.org/2001/XMLSchema#boolean"
    INTEGER = "http://www.w3.org/2001/XMLSchema#integer"
    DOUBLE = "http://www.w3.org/2001/XMLSchema#double"
    TIME = "http://www.w3.org/2001/XMLSchema#time"
    DATE_TIME = "http://www.w3.org/2001/XMLSchema#dateTime"
    ANY_URI = "http://www.w3.org/2001/XMLSchema#anyURI"
    RFC822_NAME = "urn:oasis:names:tc:xacml:1.0:data-type:rfc822Name"
    X500_NAME = "urn:oasis:names:tc:xacml:1.0:data-type:x500Name"

    @classmethod
    def from_uri(cls, uri: str) -> "DataType":
        for member in cls:
            if member.value == uri:
                return member
        raise ValueError(f"unsupported data type URI {uri!r}")


_PYTHON_TYPES: dict[DataType, type | tuple[type, ...]] = {
    DataType.STRING: str,
    DataType.BOOLEAN: bool,
    DataType.INTEGER: int,
    DataType.DOUBLE: float,
    DataType.TIME: float,  # seconds since simulated midnight
    DataType.DATE_TIME: float,  # simulated epoch seconds
    DataType.ANY_URI: str,
    DataType.RFC822_NAME: str,
    DataType.X500_NAME: str,
}


@dataclass(frozen=True)
class AttributeValue:
    """A single typed value, the atom of XACML evaluation."""

    data_type: DataType
    value: Any

    def __post_init__(self) -> None:
        expected = _PYTHON_TYPES[self.data_type]
        if self.data_type is DataType.DOUBLE and isinstance(self.value, int):
            object.__setattr__(self, "value", float(self.value))
            return
        if self.data_type is DataType.INTEGER and isinstance(self.value, bool):
            raise TypeError("boolean is not a valid xacml integer")
        if not isinstance(self.value, expected):
            raise TypeError(
                f"value {self.value!r} is not valid for {self.data_type.name} "
                f"(expected {expected})"
            )

    def lexical(self) -> str:
        """The XML lexical form used by the serializer."""
        if self.data_type is DataType.BOOLEAN:
            return "true" if self.value else "false"
        return str(self.value)

    @classmethod
    def parse(cls, data_type: DataType, text: str) -> "AttributeValue":
        """Inverse of :meth:`lexical`."""
        if data_type is DataType.BOOLEAN:
            lowered = text.strip().lower()
            if lowered not in ("true", "false", "1", "0"):
                raise ValueError(f"bad boolean lexical value {text!r}")
            return cls(data_type, lowered in ("true", "1"))
        if data_type is DataType.INTEGER:
            return cls(data_type, int(text.strip()))
        if data_type in (DataType.DOUBLE, DataType.TIME, DataType.DATE_TIME):
            return cls(data_type, float(text.strip()))
        return cls(data_type, text)


def string(value: str) -> AttributeValue:
    """Shorthand constructor for the most common value type."""
    return AttributeValue(DataType.STRING, value)


def integer(value: int) -> AttributeValue:
    return AttributeValue(DataType.INTEGER, value)


def double(value: float) -> AttributeValue:
    return AttributeValue(DataType.DOUBLE, float(value))


def boolean(value: bool) -> AttributeValue:
    return AttributeValue(DataType.BOOLEAN, value)


def any_uri(value: str) -> AttributeValue:
    return AttributeValue(DataType.ANY_URI, value)


def date_time(value: float) -> AttributeValue:
    return AttributeValue(DataType.DATE_TIME, float(value))


def time_of_day(value: float) -> AttributeValue:
    return AttributeValue(DataType.TIME, float(value))


class Bag:
    """An unordered collection of same-typed attribute values.

    Designators always resolve to bags (possibly empty); most functions
    operate on single values obtained via ``one-and-only``.
    """

    def __init__(self, values: Iterable[AttributeValue] = ()) -> None:
        self._values: tuple[AttributeValue, ...] = tuple(values)
        types = {v.data_type for v in self._values}
        if len(types) > 1:
            raise TypeError(f"bag mixes data types: {sorted(t.name for t in types)}")

    @property
    def values(self) -> tuple[AttributeValue, ...]:
        return self._values

    def __iter__(self) -> Iterator[AttributeValue]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, item: AttributeValue) -> bool:
        return item in self._values

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        return sorted(v.lexical() for v in self) == sorted(
            v.lexical() for v in other
        )

    def __repr__(self) -> str:
        inner = ", ".join(v.lexical() for v in self._values[:4])
        suffix = ", ..." if len(self._values) > 4 else ""
        return f"Bag([{inner}{suffix}])"

    def is_empty(self) -> bool:
        return not self._values


EMPTY_BAG = Bag()


# Well-known attribute identifiers used throughout the repo.
SUBJECT_ID = "urn:oasis:names:tc:xacml:1.0:subject:subject-id"
SUBJECT_ROLE = "urn:oasis:names:tc:xacml:2.0:subject:role"
SUBJECT_DOMAIN = "urn:repro:subject:home-domain"
SUBJECT_CLEARANCE = "urn:repro:subject:clearance"
RESOURCE_ID = "urn:oasis:names:tc:xacml:1.0:resource:resource-id"
RESOURCE_OWNER = "urn:repro:resource:owner"
RESOURCE_DOMAIN = "urn:repro:resource:domain"
RESOURCE_CLASSIFICATION = "urn:repro:resource:classification"
RESOURCE_CONFLICT_CLASS = "urn:repro:resource:conflict-of-interest-class"
ACTION_ID = "urn:oasis:names:tc:xacml:1.0:action:action-id"
ENVIRONMENT_TIME = "urn:oasis:names:tc:xacml:1.0:environment:current-time"
ENVIRONMENT_DATE_TIME = "urn:oasis:names:tc:xacml:1.0:environment:current-dateTime"
DELEGATE_ID = "urn:repro:delegate:delegate-id"


@dataclass(frozen=True)
class Attribute:
    """A named attribute: id, issuer and one or more typed values."""

    attribute_id: str
    values: tuple[AttributeValue, ...]
    issuer: Optional[str] = None

    @classmethod
    def of(
        cls, attribute_id: str, *values: AttributeValue, issuer: Optional[str] = None
    ) -> "Attribute":
        if not values:
            raise ValueError(f"attribute {attribute_id!r} needs at least one value")
        return cls(attribute_id=attribute_id, values=tuple(values), issuer=issuer)

    @property
    def data_type(self) -> DataType:
        return self.values[0].data_type


@dataclass(frozen=True)
class AttributeDesignator:
    """A reference to attribute values in a request category.

    When evaluated it resolves to the bag of matching values; an empty bag
    plus ``must_be_present=True`` yields Indeterminate (missing-attribute),
    which is the hook PIP-based attribute retrieval plugs into.
    """

    category: Category
    attribute_id: str
    data_type: DataType
    must_be_present: bool = False
    issuer: Optional[str] = None

    def describe(self) -> str:
        return f"{self.category.short_name}:{self.attribute_id}"


def bag_of(*values: AttributeValue) -> Bag:
    return Bag(values)
