"""Serialization of XACML objects to XML text.

The serializer produces compact, standard-shaped XML: policies use
``Policy``/``PolicySet``/``Rule``/``Target``/``Apply`` elements, contexts
use ``Request``/``Response``.  Byte sizes of these strings are what the
communication-performance experiments (E5, E7) measure, so the output is
canonical-compact (no pretty-printing) and deterministic.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Union

from .attributes import AttributeDesignator, AttributeValue, Category
from .context import Obligation, RequestContext, ResponseContext
from .expressions import (
    AllOfFunction,
    AnyOfFunction,
    Apply,
    Designator,
    Expression,
    Literal,
)
from .policy import Policy, PolicyReference, PolicySet
from .rules import Rule
from .targets import Target

ANY_OF_FUNCTION_ID = "urn:oasis:names:tc:xacml:1.0:function:any-of"
ALL_OF_FUNCTION_ID = "urn:oasis:names:tc:xacml:1.0:function:all-of"


def _value_element(value: AttributeValue, tag: str = "AttributeValue") -> ET.Element:
    element = ET.Element(tag, {"DataType": value.data_type.value})
    element.text = value.lexical()
    return element


def _designator_element(designator: AttributeDesignator) -> ET.Element:
    attrib = {
        "Category": designator.category.value,
        "AttributeId": designator.attribute_id,
        "DataType": designator.data_type.value,
        "MustBePresent": "true" if designator.must_be_present else "false",
    }
    if designator.issuer is not None:
        attrib["Issuer"] = designator.issuer
    return ET.Element("AttributeDesignator", attrib)


def _expression_element(expression: Expression) -> ET.Element:
    if isinstance(expression, Literal):
        return _value_element(expression.value)
    if isinstance(expression, Designator):
        return _designator_element(expression.designator)
    if isinstance(expression, Apply):
        element = ET.Element("Apply", {"FunctionId": expression.function_id})
        for argument in expression.arguments:
            element.append(_expression_element(argument))
        return element
    if isinstance(expression, AnyOfFunction):
        return _higher_order_element(
            ANY_OF_FUNCTION_ID, expression.function_id, expression.value,
            expression.bag,
        )
    if isinstance(expression, AllOfFunction):
        return _higher_order_element(
            ALL_OF_FUNCTION_ID, expression.function_id, expression.value,
            expression.bag,
        )
    raise TypeError(f"cannot serialize expression type {type(expression).__name__}")


def _higher_order_element(
    outer_id: str, inner_id: str, value: Expression, bag: Expression
) -> ET.Element:
    element = ET.Element("Apply", {"FunctionId": outer_id})
    element.append(ET.Element("Function", {"FunctionId": inner_id}))
    element.append(_expression_element(value))
    element.append(_expression_element(bag))
    return element


def _target_element(target: Target) -> ET.Element:
    element = ET.Element("Target")
    for any_of in target.any_ofs:
        any_el = ET.SubElement(element, "AnyOf")
        for all_of in any_of.all_ofs:
            all_el = ET.SubElement(any_el, "AllOf")
            for match in all_of.matches:
                match_el = ET.SubElement(
                    all_el, "Match", {"MatchId": match.match_function}
                )
                match_el.append(_value_element(match.value))
                match_el.append(_designator_element(match.designator))
    return element


def _obligations_element(obligations: tuple[Obligation, ...]) -> ET.Element:
    element = ET.Element("Obligations")
    for obligation in obligations:
        ob_el = ET.SubElement(
            element,
            "Obligation",
            {
                "ObligationId": obligation.obligation_id,
                "FulfillOn": obligation.fulfill_on.value,
            },
        )
        for assignment in obligation.assignments:
            assign_el = ET.SubElement(
                ob_el,
                "AttributeAssignment",
                {
                    "AttributeId": assignment.attribute_id,
                    "DataType": assignment.value.data_type.value,
                },
            )
            assign_el.text = assignment.value.lexical()
    return element


def _rule_element(rule: Rule) -> ET.Element:
    element = ET.Element(
        "Rule", {"RuleId": rule.rule_id, "Effect": rule.effect.value}
    )
    if rule.description:
        desc = ET.SubElement(element, "Description")
        desc.text = rule.description
    if rule.target.any_ofs:
        element.append(_target_element(rule.target))
    if rule.condition is not None:
        condition_el = ET.SubElement(element, "Condition")
        condition_el.append(_expression_element(rule.condition.expression))
    return element


def policy_to_element(policy: Policy) -> ET.Element:
    attrib = {
        "PolicyId": policy.policy_id,
        "RuleCombiningAlgId": policy.rule_combining,
        "Version": policy.version,
    }
    if policy.issuer is not None:
        attrib["Issuer"] = policy.issuer
    element = ET.Element("Policy", attrib)
    if policy.description:
        desc = ET.SubElement(element, "Description")
        desc.text = policy.description
    element.append(_target_element(policy.target))
    for rule in policy.rules:
        element.append(_rule_element(rule))
    if policy.obligations:
        element.append(_obligations_element(policy.obligations))
    return element


def policy_set_to_element(policy_set: PolicySet) -> ET.Element:
    attrib = {
        "PolicySetId": policy_set.policy_set_id,
        "PolicyCombiningAlgId": policy_set.policy_combining,
        "Version": policy_set.version,
    }
    if policy_set.issuer is not None:
        attrib["Issuer"] = policy_set.issuer
    element = ET.Element("PolicySet", attrib)
    if policy_set.description:
        desc = ET.SubElement(element, "Description")
        desc.text = policy_set.description
    element.append(_target_element(policy_set.target))
    for child in policy_set.children:
        if isinstance(child, Policy):
            element.append(policy_to_element(child))
        elif isinstance(child, PolicyReference):
            ref_el = ET.SubElement(element, "PolicyIdReference")
            ref_el.text = child.reference_id
        else:
            element.append(policy_set_to_element(child))
    if policy_set.obligations:
        element.append(_obligations_element(policy_set.obligations))
    return element


def serialize_policy(element: Union[Policy, PolicySet]) -> str:
    """Policy or policy set to compact XML text."""
    xml_el = (
        policy_to_element(element)
        if isinstance(element, Policy)
        else policy_set_to_element(element)
    )
    return ET.tostring(xml_el, encoding="unicode")


def request_to_element(request: RequestContext) -> ET.Element:
    element = ET.Element("Request")
    for category in Category:
        attributes = request.attributes(category)
        if not attributes:
            continue
        cat_el = ET.SubElement(element, "Attributes", {"Category": category.value})
        for attribute in attributes:
            attrib = {"AttributeId": attribute.attribute_id}
            if attribute.issuer is not None:
                attrib["Issuer"] = attribute.issuer
            attr_el = ET.SubElement(cat_el, "Attribute", attrib)
            for value in attribute.values:
                attr_el.append(_value_element(value))
    return element


def serialize_request(request: RequestContext) -> str:
    return ET.tostring(request_to_element(request), encoding="unicode")


def response_to_element(response: ResponseContext) -> ET.Element:
    element = ET.Element("Response")
    for result in response.results:
        attrib = {}
        if result.resource_id is not None:
            attrib["ResourceId"] = result.resource_id
        result_el = ET.SubElement(element, "Result", attrib)
        decision_el = ET.SubElement(result_el, "Decision")
        decision_el.text = result.decision.value
        status_el = ET.SubElement(result_el, "Status")
        ET.SubElement(status_el, "StatusCode", {"Value": result.status.code.value})
        if result.status.message:
            msg_el = ET.SubElement(status_el, "StatusMessage")
            msg_el.text = result.status.message
        if result.obligations:
            result_el.append(_obligations_element(result.obligations))
    return element


def serialize_response(response: ResponseContext) -> str:
    return ET.tostring(response_to_element(response), encoding="unicode")
