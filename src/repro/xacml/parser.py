"""Parsing XACML XML back into objects (inverse of the serializer).

Round-tripping (``parse(serialize(x)) == x`` up to object identity) is
asserted by property-based tests; the parser is also what PDPs use when
policies arrive over the wire from PAPs and syndication servers.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Union

from .attributes import (
    Attribute,
    AttributeDesignator,
    AttributeValue,
    Category,
    DataType,
)
from .context import (
    Decision,
    Obligation,
    ObligationAssignment,
    RequestContext,
    ResponseContext,
    Result,
    Status,
    StatusCode,
)
from .expressions import (
    AllOfFunction,
    AnyOfFunction,
    Apply,
    Condition,
    Designator,
    Expression,
    Literal,
)
from .policy import Policy, PolicyReference, PolicySet
from .rules import Rule
from .serializer import ALL_OF_FUNCTION_ID, ANY_OF_FUNCTION_ID
from .targets import AllOf, AnyOf, Match, Target


class ParseError(Exception):
    """Raised when a document is not well-formed XACML."""


def _category_from_uri(uri: str) -> Category:
    for member in Category:
        if member.value == uri:
            return member
    raise ParseError(f"unknown attribute category URI {uri!r}")


def _parse_value(element: ET.Element) -> AttributeValue:
    uri = element.get("DataType")
    if uri is None:
        raise ParseError("AttributeValue missing DataType")
    try:
        data_type = DataType.from_uri(uri)
    except ValueError as exc:
        raise ParseError(str(exc)) from exc
    return AttributeValue.parse(data_type, element.text or "")


def _parse_designator(element: ET.Element) -> AttributeDesignator:
    category_uri = element.get("Category")
    attribute_id = element.get("AttributeId")
    data_type_uri = element.get("DataType")
    if not (category_uri and attribute_id and data_type_uri):
        raise ParseError("AttributeDesignator missing required attributes")
    try:
        data_type = DataType.from_uri(data_type_uri)
    except ValueError as exc:
        raise ParseError(str(exc)) from exc
    return AttributeDesignator(
        category=_category_from_uri(category_uri),
        attribute_id=attribute_id,
        data_type=data_type,
        must_be_present=element.get("MustBePresent", "false") == "true",
        issuer=element.get("Issuer"),
    )


def _parse_expression(element: ET.Element) -> Expression:
    if element.tag == "AttributeValue":
        return Literal(_parse_value(element))
    if element.tag == "AttributeDesignator":
        return Designator(_parse_designator(element))
    if element.tag == "Apply":
        function_id = element.get("FunctionId")
        if function_id is None:
            raise ParseError("Apply missing FunctionId")
        children = list(element)
        if function_id in (ANY_OF_FUNCTION_ID, ALL_OF_FUNCTION_ID):
            if len(children) != 3 or children[0].tag != "Function":
                raise ParseError(
                    f"higher-order {function_id} needs Function + 2 arguments"
                )
            inner = children[0].get("FunctionId")
            if inner is None:
                raise ParseError("Function element missing FunctionId")
            value = _parse_expression(children[1])
            bag = _parse_expression(children[2])
            cls = (
                AnyOfFunction
                if function_id == ANY_OF_FUNCTION_ID
                else AllOfFunction
            )
            return cls(function_id=inner, value=value, bag=bag)
        return Apply(
            function_id=function_id,
            arguments=tuple(_parse_expression(child) for child in children),
        )
    raise ParseError(f"unexpected expression element <{element.tag}>")


def _parse_target(element: ET.Element | None) -> Target:
    if element is None:
        return Target()
    any_ofs = []
    for any_el in element.findall("AnyOf"):
        all_ofs = []
        for all_el in any_el.findall("AllOf"):
            matches = []
            for match_el in all_el.findall("Match"):
                match_id = match_el.get("MatchId")
                if match_id is None:
                    raise ParseError("Match missing MatchId")
                value_el = match_el.find("AttributeValue")
                desig_el = match_el.find("AttributeDesignator")
                if value_el is None or desig_el is None:
                    raise ParseError(
                        "Match needs AttributeValue and AttributeDesignator"
                    )
                matches.append(
                    Match(
                        match_function=match_id,
                        value=_parse_value(value_el),
                        designator=_parse_designator(desig_el),
                    )
                )
            all_ofs.append(AllOf(matches=tuple(matches)))
        any_ofs.append(AnyOf(all_ofs=tuple(all_ofs)))
    return Target(any_ofs=tuple(any_ofs))


def _parse_obligations(element: ET.Element | None) -> tuple[Obligation, ...]:
    if element is None:
        return ()
    obligations = []
    for ob_el in element.findall("Obligation"):
        obligation_id = ob_el.get("ObligationId")
        fulfill_on = ob_el.get("FulfillOn")
        if obligation_id is None or fulfill_on is None:
            raise ParseError("Obligation missing ObligationId or FulfillOn")
        assignments = []
        for assign_el in ob_el.findall("AttributeAssignment"):
            attribute_id = assign_el.get("AttributeId")
            data_type_uri = assign_el.get("DataType")
            if attribute_id is None or data_type_uri is None:
                raise ParseError("AttributeAssignment missing attributes")
            data_type = DataType.from_uri(data_type_uri)
            assignments.append(
                ObligationAssignment(
                    attribute_id=attribute_id,
                    value=AttributeValue.parse(data_type, assign_el.text or ""),
                )
            )
        obligations.append(
            Obligation(
                obligation_id=obligation_id,
                fulfill_on=Decision(fulfill_on),
                assignments=tuple(assignments),
            )
        )
    return tuple(obligations)


def _parse_rule(element: ET.Element) -> Rule:
    rule_id = element.get("RuleId")
    effect = element.get("Effect")
    if rule_id is None or effect is None:
        raise ParseError("Rule missing RuleId or Effect")
    description_el = element.find("Description")
    condition_el = element.find("Condition")
    condition = None
    if condition_el is not None:
        children = list(condition_el)
        if len(children) != 1:
            raise ParseError("Condition must contain exactly one expression")
        condition = Condition(_parse_expression(children[0]))
    return Rule(
        rule_id=rule_id,
        effect=Decision(effect),
        target=_parse_target(element.find("Target")),
        condition=condition,
        description=(description_el.text or "") if description_el is not None else "",
    )


def parse_policy_element(element: ET.Element) -> Policy:
    policy_id = element.get("PolicyId")
    rule_combining = element.get("RuleCombiningAlgId")
    if policy_id is None or rule_combining is None:
        raise ParseError("Policy missing PolicyId or RuleCombiningAlgId")
    description_el = element.find("Description")
    return Policy(
        policy_id=policy_id,
        rules=tuple(_parse_rule(rule_el) for rule_el in element.findall("Rule")),
        rule_combining=rule_combining,
        target=_parse_target(element.find("Target")),
        obligations=_parse_obligations(element.find("Obligations")),
        description=(description_el.text or "") if description_el is not None else "",
        version=element.get("Version", "1.0"),
        issuer=element.get("Issuer"),
    )


def parse_policy_set_element(element: ET.Element) -> PolicySet:
    policy_set_id = element.get("PolicySetId")
    policy_combining = element.get("PolicyCombiningAlgId")
    if policy_set_id is None or policy_combining is None:
        raise ParseError("PolicySet missing PolicySetId or PolicyCombiningAlgId")
    children: list[Union[Policy, PolicySet, PolicyReference]] = []
    for child in element:
        if child.tag == "Policy":
            children.append(parse_policy_element(child))
        elif child.tag == "PolicySet":
            children.append(parse_policy_set_element(child))
        elif child.tag == "PolicyIdReference":
            if not child.text:
                raise ParseError("empty PolicyIdReference")
            children.append(PolicyReference(reference_id=child.text))
    description_el = element.find("Description")
    return PolicySet(
        policy_set_id=policy_set_id,
        children=tuple(children),
        policy_combining=policy_combining,
        target=_parse_target(element.find("Target")),
        obligations=_parse_obligations(element.find("Obligations")),
        description=(description_el.text or "") if description_el is not None else "",
        version=element.get("Version", "1.0"),
        issuer=element.get("Issuer"),
    )


def parse_policy(xml_text: str) -> Union[Policy, PolicySet]:
    """Parse XML text into a Policy or PolicySet."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise ParseError(f"malformed XML: {exc}") from exc
    if root.tag == "Policy":
        return parse_policy_element(root)
    if root.tag == "PolicySet":
        return parse_policy_set_element(root)
    raise ParseError(f"expected <Policy> or <PolicySet>, got <{root.tag}>")


def parse_request(xml_text: str) -> RequestContext:
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise ParseError(f"malformed XML: {exc}") from exc
    if root.tag != "Request":
        raise ParseError(f"expected <Request>, got <{root.tag}>")
    request = RequestContext()
    for cat_el in root.findall("Attributes"):
        category_uri = cat_el.get("Category")
        if category_uri is None:
            raise ParseError("Attributes missing Category")
        category = _category_from_uri(category_uri)
        for attr_el in cat_el.findall("Attribute"):
            attribute_id = attr_el.get("AttributeId")
            if attribute_id is None:
                raise ParseError("Attribute missing AttributeId")
            values = tuple(
                _parse_value(v) for v in attr_el.findall("AttributeValue")
            )
            if not values:
                raise ParseError(f"attribute {attribute_id!r} has no values")
            request.add(
                category,
                Attribute(
                    attribute_id=attribute_id,
                    values=values,
                    issuer=attr_el.get("Issuer"),
                ),
            )
    return request


def parse_response(xml_text: str) -> ResponseContext:
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise ParseError(f"malformed XML: {exc}") from exc
    if root.tag != "Response":
        raise ParseError(f"expected <Response>, got <{root.tag}>")
    results = []
    for result_el in root.findall("Result"):
        decision_el = result_el.find("Decision")
        if decision_el is None or not decision_el.text:
            raise ParseError("Result missing Decision")
        status = Status()
        status_el = result_el.find("Status")
        if status_el is not None:
            code_el = status_el.find("StatusCode")
            message_el = status_el.find("StatusMessage")
            code = StatusCode.OK
            if code_el is not None and code_el.get("Value"):
                code = StatusCode(code_el.get("Value"))
            status = Status(
                code=code,
                message=(message_el.text or "") if message_el is not None else "",
            )
        results.append(
            Result(
                decision=Decision(decision_el.text),
                status=status,
                obligations=_parse_obligations(result_el.find("Obligations")),
                resource_id=result_el.get("ResourceId"),
            )
        )
    if not results:
        raise ParseError("Response has no Result")
    return ResponseContext(results=tuple(results))
