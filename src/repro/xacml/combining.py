"""Rule- and policy-combining algorithms.

The paper (Sections 2.3 and 3.1) leans on combining algorithms as XACML's
answer to policy conflict: "When an XACML-compliant decision point finds
two or more policies ... with contradicting semantics then it uses one of
the mentioned algorithms to make its access control decision."  We
implement the four the paper names — deny-overrides, permit-overrides,
first-applicable, only-one-applicable — plus their ordered variants,
behind a registry so profiles can add more.

Combiners operate over *evaluables*: anything with an
``evaluate(ctx) -> (Decision, Status|None)`` signature; the policy module
adapts rules and policies to that shape.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .context import Decision, Status, StatusCode

RULE_DENY_OVERRIDES = "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:deny-overrides"
RULE_PERMIT_OVERRIDES = "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:permit-overrides"
RULE_FIRST_APPLICABLE = "urn:oasis:names:tc:xacml:1.0:rule-combining-algorithm:first-applicable"
RULE_ORDERED_DENY_OVERRIDES = (
    "urn:oasis:names:tc:xacml:1.1:rule-combining-algorithm:ordered-deny-overrides"
)
RULE_ORDERED_PERMIT_OVERRIDES = (
    "urn:oasis:names:tc:xacml:1.1:rule-combining-algorithm:ordered-permit-overrides"
)

POLICY_DENY_OVERRIDES = (
    "urn:oasis:names:tc:xacml:1.0:policy-combining-algorithm:deny-overrides"
)
POLICY_PERMIT_OVERRIDES = (
    "urn:oasis:names:tc:xacml:1.0:policy-combining-algorithm:permit-overrides"
)
POLICY_FIRST_APPLICABLE = (
    "urn:oasis:names:tc:xacml:1.0:policy-combining-algorithm:first-applicable"
)
POLICY_ONLY_ONE_APPLICABLE = (
    "urn:oasis:names:tc:xacml:1.0:policy-combining-algorithm:only-one-applicable"
)

#: An evaluable yields (decision, status-or-None).
Evaluable = Callable[[], tuple[Decision, Optional[Status]]]
Combiner = Callable[[Sequence[Evaluable]], tuple[Decision, Optional[Status]]]

_COMBINERS: dict[str, Combiner] = {}


class CombiningError(Exception):
    """Raised for unknown combining algorithm identifiers."""


def register(identifier: str, combiner: Combiner) -> None:
    if identifier in _COMBINERS:
        raise ValueError(f"duplicate combining algorithm {identifier}")
    _COMBINERS[identifier] = combiner


def lookup(identifier: str) -> Combiner:
    try:
        return _COMBINERS[identifier]
    except KeyError:
        raise CombiningError(f"unknown combining algorithm {identifier!r}") from None


def known_algorithms() -> frozenset[str]:
    return frozenset(_COMBINERS)


def deny_overrides(
    children: Sequence[Evaluable],
) -> tuple[Decision, Optional[Status]]:
    """Deny wins over everything; Indeterminate is deny-biased.

    Follows XACML 2.0 Appendix C.1: any Deny returns Deny immediately; an
    Indeterminate is remembered and, per the deny-biased reading, reported
    as Deny-leaning Indeterminate only if no Permit occurs — a potential
    deny must not be masked by a later Permit, so Indeterminate wins over
    Permit here.
    """
    saw_permit = False
    saw_indeterminate: Optional[Status] = None
    for child in children:
        decision, status = child()
        if decision is Decision.DENY:
            return Decision.DENY, status
        if decision is Decision.INDETERMINATE:
            saw_indeterminate = status or Status(
                code=StatusCode.PROCESSING_ERROR, message="child indeterminate"
            )
        elif decision is Decision.PERMIT:
            saw_permit = True
    if saw_indeterminate is not None:
        # A child that errored *might* have denied: stay on the safe side.
        return Decision.INDETERMINATE, saw_indeterminate
    if saw_permit:
        return Decision.PERMIT, None
    return Decision.NOT_APPLICABLE, None


def permit_overrides(
    children: Sequence[Evaluable],
) -> tuple[Decision, Optional[Status]]:
    """Permit wins over everything; mirrors :func:`deny_overrides`."""
    saw_deny = False
    deny_status: Optional[Status] = None
    saw_indeterminate: Optional[Status] = None
    for child in children:
        decision, status = child()
        if decision is Decision.PERMIT:
            return Decision.PERMIT, status
        if decision is Decision.INDETERMINATE:
            saw_indeterminate = status or Status(
                code=StatusCode.PROCESSING_ERROR, message="child indeterminate"
            )
        elif decision is Decision.DENY:
            saw_deny = True
            deny_status = status
    if saw_indeterminate is not None:
        return Decision.INDETERMINATE, saw_indeterminate
    if saw_deny:
        return Decision.DENY, deny_status
    return Decision.NOT_APPLICABLE, None


def first_applicable(
    children: Sequence[Evaluable],
) -> tuple[Decision, Optional[Status]]:
    """The first definitive or indeterminate child decides."""
    for child in children:
        decision, status = child()
        if decision is Decision.NOT_APPLICABLE:
            continue
        return decision, status
    return Decision.NOT_APPLICABLE, None


def only_one_applicable(
    children: Sequence[Evaluable],
) -> tuple[Decision, Optional[Status]]:
    """Exactly one child may apply; more than one is an error.

    The paper cites this algorithm for environments where overlapping
    authority would itself signal a configuration fault between domains.
    """
    applicable: Optional[tuple[Decision, Optional[Status]]] = None
    for child in children:
        decision, status = child()
        if decision is Decision.NOT_APPLICABLE:
            continue
        if decision is Decision.INDETERMINATE:
            return Decision.INDETERMINATE, status
        if applicable is not None:
            return (
                Decision.INDETERMINATE,
                Status(
                    code=StatusCode.PROCESSING_ERROR,
                    message="more than one policy applicable "
                    "under only-one-applicable",
                ),
            )
        applicable = (decision, status)
    if applicable is None:
        return Decision.NOT_APPLICABLE, None
    return applicable


register(RULE_DENY_OVERRIDES, deny_overrides)
register(RULE_PERMIT_OVERRIDES, permit_overrides)
register(RULE_FIRST_APPLICABLE, first_applicable)
# Ordered variants differ from the base ones only in mandating document
# order, which our sequential implementation already guarantees.
register(RULE_ORDERED_DENY_OVERRIDES, deny_overrides)
register(RULE_ORDERED_PERMIT_OVERRIDES, permit_overrides)

register(POLICY_DENY_OVERRIDES, deny_overrides)
register(POLICY_PERMIT_OVERRIDES, permit_overrides)
register(POLICY_FIRST_APPLICABLE, first_applicable)
register(POLICY_ONLY_ONE_APPLICABLE, only_one_applicable)
