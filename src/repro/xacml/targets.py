"""Targets: the applicability test of rules, policies and policy sets.

A target is a disjunction (AnyOf) of conjunctions (AllOf) of individual
:class:`Match` elements, each comparing a literal against a designated
request attribute.  Targets decide *whether a policy applies at all*,
before conditions run — and they are the structure the engine indexes to
stay fast at scale (experiment E14).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from . import functions
from .attributes import (
    ACTION_ID,
    AttributeDesignator,
    AttributeValue,
    Category,
    RESOURCE_ID,
    SUBJECT_ID,
    string,
)
from .expressions import EvaluationContext, Indeterminate, _type_short_name


class MatchResult(enum.Enum):
    MATCH = "match"
    NO_MATCH = "no-match"
    INDETERMINATE = "indeterminate"


@dataclass(frozen=True)
class Match:
    """One Match element: ``function(literal, candidate)`` over a bag.

    Per the standard, a Match is true if the function returns true for
    *any* value in the designated bag.
    """

    match_function: str
    value: AttributeValue
    designator: AttributeDesignator

    def evaluate(self, ctx: EvaluationContext) -> MatchResult:
        func = functions.lookup(self.match_function)
        try:
            bag = ctx.resolve(self.designator)
        except Indeterminate:
            return MatchResult.INDETERMINATE
        saw_error = False
        for candidate in bag:
            try:
                result = func(self.value, candidate)
            except functions.FunctionError:
                saw_error = True
                continue
            if isinstance(result, AttributeValue) and result.value is True:
                return MatchResult.MATCH
        if saw_error:
            return MatchResult.INDETERMINATE
        return MatchResult.NO_MATCH


@dataclass(frozen=True)
class AllOf:
    """A conjunction of matches; true only if every match is true."""

    matches: tuple[Match, ...]

    def evaluate(self, ctx: EvaluationContext) -> MatchResult:
        indeterminate = False
        for match in self.matches:
            result = match.evaluate(ctx)
            if result is MatchResult.NO_MATCH:
                return MatchResult.NO_MATCH
            if result is MatchResult.INDETERMINATE:
                indeterminate = True
        if indeterminate:
            return MatchResult.INDETERMINATE
        return MatchResult.MATCH


@dataclass(frozen=True)
class AnyOf:
    """A disjunction of AllOf groups; true if any group is true."""

    all_ofs: tuple[AllOf, ...]

    def evaluate(self, ctx: EvaluationContext) -> MatchResult:
        indeterminate = False
        for all_of in self.all_ofs:
            result = all_of.evaluate(ctx)
            if result is MatchResult.MATCH:
                return MatchResult.MATCH
            if result is MatchResult.INDETERMINATE:
                indeterminate = True
        if indeterminate:
            return MatchResult.INDETERMINATE
        return MatchResult.NO_MATCH


@dataclass(frozen=True)
class Target:
    """Applicability predicate; an empty target matches everything."""

    any_ofs: tuple[AnyOf, ...] = ()

    def evaluate(self, ctx: EvaluationContext) -> MatchResult:
        indeterminate = False
        for any_of in self.any_ofs:
            result = any_of.evaluate(ctx)
            if result is MatchResult.NO_MATCH:
                return MatchResult.NO_MATCH
            if result is MatchResult.INDETERMINATE:
                indeterminate = True
        if indeterminate:
            return MatchResult.INDETERMINATE
        return MatchResult.MATCH

    @property
    def matches_everything(self) -> bool:
        return not self.any_ofs

    def literal_equality_keys(self) -> dict[tuple[Category, str], set[str]]:
        """Extract {(category, attribute_id): {values}} for target indexing.

        Only single-AllOf/single-Match equality structures are indexable;
        anything richer falls back to linear scan.  Used by the engine's
        policy finder for E14 scalability.
        """
        keys: dict[tuple[Category, str], set[str]] = {}
        for any_of in self.any_ofs:
            for all_of in any_of.all_ofs:
                for match in all_of.matches:
                    if not match.match_function.endswith("-equal"):
                        continue
                    key = (match.designator.category, match.designator.attribute_id)
                    keys.setdefault(key, set()).add(match.value.lexical())
        return keys

    def constraining_values(
        self, category: Category, attribute_id: str
    ) -> "set[str] | None":
        """Values the designated attribute *must* take for a match.

        Returns a set ``V`` such that the target can only match requests
        whose ``(category, attribute_id)`` value is in ``V``, or None
        when the target does not constrain that attribute.  This is the
        sound criterion store partitioning needs —
        :meth:`literal_equality_keys` is *not* enough, because it
        collects equality matches from any branch: a target like
        ``AnyOf[AllOf(resource=r1), AllOf(subject=s1)]`` mentions ``r1``
        yet matches any resource via the subject branch.

        The target is a conjunction of AnyOf groups, so it is enough for
        *one* AnyOf to be fully constrained: every AllOf alternative in
        that group carries an equality match on the attribute, making
        the union of those literals a superset of the matchable values.
        """
        for any_of in self.any_ofs:
            values: set[str] = set()
            fully_constrained = bool(any_of.all_ofs)
            for all_of in any_of.all_ofs:
                found = {
                    match.value.lexical()
                    for match in all_of.matches
                    if match.match_function.endswith("-equal")
                    and match.designator.category is category
                    and match.designator.attribute_id == attribute_id
                }
                if not found:
                    fully_constrained = False
                    break
                values |= found
            if fully_constrained:
                return values
        return None


ANY_TARGET = Target()


def match_equal(
    category: Category, attribute_id: str, value: AttributeValue
) -> Match:
    """Build the ubiquitous equality match."""
    type_name = _type_short_name(value.data_type)
    return Match(
        match_function=f"{functions.FUNCTION_PREFIX_1_0}{type_name}-equal",
        value=value,
        designator=AttributeDesignator(
            category=category, attribute_id=attribute_id, data_type=value.data_type
        ),
    )


def target_of(*matches: Match) -> Target:
    """A target requiring all given matches (one AnyOf/AllOf each)."""
    return Target(
        any_ofs=tuple(AnyOf(all_ofs=(AllOf(matches=(m,)),)) for m in matches)
    )


def subject_resource_action_target(
    subject_id: str | None = None,
    resource_id: str | None = None,
    action_id: str | None = None,
) -> Target:
    """The canonical {subject, resource, action} target, any part optional."""
    matches = []
    if subject_id is not None:
        matches.append(match_equal(Category.SUBJECT, SUBJECT_ID, string(subject_id)))
    if resource_id is not None:
        matches.append(
            match_equal(Category.RESOURCE, RESOURCE_ID, string(resource_id))
        )
    if action_id is not None:
        matches.append(match_equal(Category.ACTION, ACTION_ID, string(action_id)))
    return target_of(*matches)
