"""Structural validation of policies before deployment.

The paper's management challenge (Section 3.2) lists "writing, reviewing,
testing, approving" among the policy lifecycle steps; this module is the
*testing* step's static half.  It reports problems — unknown functions or
algorithms, unreachable rules, empty policies — without evaluating
anything, so PAPs can reject broken policies before syndication spreads
them (experiment E5's hierarchy would otherwise amplify a bad push).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional, Union

from . import combining, functions
from .expressions import (
    AllOfFunction,
    AnyOfFunction,
    Apply,
    Designator,
    Expression,
    Literal,
)
from .policy import Policy, PolicySet
from .rules import Rule


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class ValidationIssue:
    severity: Severity
    location: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.location}: {self.message}"


def _check_expression(
    expression: Expression, location: str, issues: list[ValidationIssue]
) -> None:
    if isinstance(expression, Apply):
        if expression.function_id not in functions.known_functions():
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    location,
                    f"unknown function {expression.function_id!r}",
                )
            )
        for index, argument in enumerate(expression.arguments):
            _check_expression(argument, f"{location}/arg[{index}]", issues)
    elif isinstance(expression, (AnyOfFunction, AllOfFunction)):
        if expression.function_id not in functions.known_functions():
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    location,
                    f"unknown inner function {expression.function_id!r}",
                )
            )
        _check_expression(expression.value, f"{location}/value", issues)
        _check_expression(expression.bag, f"{location}/bag", issues)
    elif isinstance(expression, (Literal, Designator)):
        pass
    else:
        issues.append(
            ValidationIssue(
                Severity.ERROR,
                location,
                f"unsupported expression node {type(expression).__name__}",
            )
        )


def _check_rule(rule: Rule, location: str, issues: list[ValidationIssue]) -> None:
    for any_index, any_of in enumerate(rule.target.any_ofs):
        if not any_of.all_ofs:
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    f"{location}/target/anyOf[{any_index}]",
                    "empty AnyOf never matches; rule is unreachable",
                )
            )
        for all_index, all_of in enumerate(any_of.all_ofs):
            for match_index, match in enumerate(all_of.matches):
                if match.match_function not in functions.known_functions():
                    issues.append(
                        ValidationIssue(
                            Severity.ERROR,
                            f"{location}/target/anyOf[{any_index}]"
                            f"/allOf[{all_index}]/match[{match_index}]",
                            f"unknown match function {match.match_function!r}",
                        )
                    )
                elif match.value.data_type is not match.designator.data_type:
                    issues.append(
                        ValidationIssue(
                            Severity.ERROR,
                            f"{location}/target/anyOf[{any_index}]"
                            f"/allOf[{all_index}]/match[{match_index}]",
                            "match literal and designator data types differ "
                            f"({match.value.data_type.name} vs "
                            f"{match.designator.data_type.name})",
                        )
                    )
    if rule.condition is not None:
        _check_expression(rule.condition.expression, f"{location}/condition", issues)


def validate_policy(policy: Policy) -> list[ValidationIssue]:
    """Validate a single policy; returns a list of issues (empty == clean)."""
    issues: list[ValidationIssue] = []
    location = f"policy[{policy.policy_id}]"
    if policy.rule_combining not in combining.known_algorithms():
        issues.append(
            ValidationIssue(
                Severity.ERROR,
                location,
                f"unknown rule combining algorithm {policy.rule_combining!r}",
            )
        )
    if not policy.rules:
        issues.append(
            ValidationIssue(
                Severity.WARNING, location, "policy has no rules; never applicable"
            )
        )
    first_unconditional: str | None = None
    for rule in policy.rules:
        rule_location = f"{location}/rule[{rule.rule_id}]"
        _check_rule(rule, rule_location, issues)
        is_unconditional = rule.target.matches_everything and rule.condition is None
        if (
            first_unconditional is not None
            and policy.rule_combining == combining.RULE_FIRST_APPLICABLE
        ):
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    rule_location,
                    "unreachable: follows unconditional rule "
                    f"{first_unconditional!r} under first-applicable",
                )
            )
        if is_unconditional and first_unconditional is None:
            first_unconditional = rule.rule_id
    return issues


#: Resolves a ``PolicyReference`` id to the referenced element (the
#: signature of ``PolicyStore.get``).
Resolver = Callable[[str], object]


def validate_policy_set(
    policy_set: PolicySet,
    resolver: Optional[Resolver] = None,
    _reference_stack: Optional[set[str]] = None,
) -> list[ValidationIssue]:
    """Validate a policy set and everything beneath it.

    With a ``resolver``, ``PolicyReference`` children are resolved and
    validated through — composability the reference mechanism otherwise
    hides from pre-deployment checking.  An unresolvable or cyclic
    reference is an ERROR (it would evaluate Indeterminate at runtime);
    without a resolver, references keep their advisory WARNING.
    """
    issues: list[ValidationIssue] = []
    location = f"policySet[{policy_set.policy_set_id}]"
    stack = _reference_stack if _reference_stack is not None else set()
    if policy_set.policy_combining not in combining.known_algorithms():
        issues.append(
            ValidationIssue(
                Severity.ERROR,
                location,
                f"unknown policy combining algorithm "
                f"{policy_set.policy_combining!r}",
            )
        )
    if not policy_set.children:
        issues.append(
            ValidationIssue(
                Severity.WARNING, location, "policy set has no children"
            )
        )
    from .policy import PolicyReference

    for child in policy_set.children:
        if isinstance(child, PolicyReference):
            reference_location = f"{location}/reference[{child.reference_id}]"
            if resolver is None:
                issues.append(
                    ValidationIssue(
                        Severity.WARNING,
                        reference_location,
                        "policy reference resolves only at evaluation time "
                        "against the deploying engine's store",
                    )
                )
                continue
            if child.reference_id in stack:
                issues.append(
                    ValidationIssue(
                        Severity.ERROR,
                        reference_location,
                        "cyclic policy reference; evaluates Indeterminate",
                    )
                )
                continue
            resolved = resolver(child.reference_id)
            if not isinstance(resolved, (Policy, PolicySet)):
                issues.append(
                    ValidationIssue(
                        Severity.ERROR,
                        reference_location,
                        "unresolvable policy reference; "
                        "evaluates Indeterminate",
                    )
                )
                continue
            stack.add(child.reference_id)
            try:
                issues.extend(
                    validate(resolved, resolver=resolver, _reference_stack=stack)
                )
            finally:
                stack.discard(child.reference_id)
            continue
        issues.extend(
            validate(child, resolver=resolver, _reference_stack=stack)
        )
    return issues


def validate(
    element: Union[Policy, PolicySet],
    resolver: Optional[Resolver] = None,
    _reference_stack: Optional[set[str]] = None,
) -> list[ValidationIssue]:
    if isinstance(element, Policy):
        return validate_policy(element)
    return validate_policy_set(
        element, resolver=resolver, _reference_stack=_reference_stack
    )


def is_deployable(
    element: Union[Policy, PolicySet],
    resolver: Optional[Resolver] = None,
    blocking: Severity = Severity.ERROR,
) -> bool:
    """True when no issue at or above the blocking severity exists.

    The default blocks on ERROR only — warnings advise, they do not stop
    deployment.  Pass ``blocking=Severity.WARNING`` for strict gates.
    """
    issues = validate(element, resolver=resolver)
    if blocking is Severity.WARNING:
        return not issues
    return not any(issue.severity is Severity.ERROR for issue in issues)
