"""The XACML function registry.

Policies compute conditions by applying standard functions to attribute
values and bags.  This module implements the portion of the XACML 2.0
function catalogue the repo's policies, models and profiles need —
equality, ordering, arithmetic, logic, string handling, bag algebra, set
relations and regular-expression matching — behind a registry keyed by
the standard URN identifiers.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Sequence

from .attributes import AttributeValue, Bag, DataType, boolean

FUNCTION_PREFIX_1_0 = "urn:oasis:names:tc:xacml:1.0:function:"
FUNCTION_PREFIX_2_0 = "urn:oasis:names:tc:xacml:2.0:function:"


class FunctionError(Exception):
    """Raised when a function application is ill-typed or ill-arity."""


Function = Callable[..., Any]

_REGISTRY: dict[str, Function] = {}


def register(identifier: str) -> Callable[[Function], Function]:
    def decorator(func: Function) -> Function:
        if identifier in _REGISTRY:
            raise ValueError(f"duplicate function id {identifier}")
        _REGISTRY[identifier] = func
        return func

    return decorator


def lookup(identifier: str) -> Function:
    try:
        return _REGISTRY[identifier]
    except KeyError:
        raise FunctionError(f"unknown function {identifier!r}") from None


def known_functions() -> frozenset[str]:
    return frozenset(_REGISTRY)


def _require_value(arg: Any, data_type: DataType, fid: str) -> AttributeValue:
    if not isinstance(arg, AttributeValue):
        raise FunctionError(f"{fid}: expected a single value, got {type(arg).__name__}")
    if arg.data_type is not data_type:
        raise FunctionError(
            f"{fid}: expected {data_type.name}, got {arg.data_type.name}"
        )
    return arg


def _require_bag(arg: Any, fid: str) -> Bag:
    if not isinstance(arg, Bag):
        raise FunctionError(f"{fid}: expected a bag, got {type(arg).__name__}")
    return arg


def _arity(args: Sequence[Any], n: int, fid: str) -> None:
    if len(args) != n:
        raise FunctionError(f"{fid}: expected {n} arguments, got {len(args)}")


# -- equality ----------------------------------------------------------------

_EQUALITY_TYPES = {
    "string-equal": DataType.STRING,
    "boolean-equal": DataType.BOOLEAN,
    "integer-equal": DataType.INTEGER,
    "double-equal": DataType.DOUBLE,
    "time-equal": DataType.TIME,
    "dateTime-equal": DataType.DATE_TIME,
    "anyURI-equal": DataType.ANY_URI,
    "rfc822Name-equal": DataType.RFC822_NAME,
    "x500Name-equal": DataType.X500_NAME,
}


def _make_equal(name: str, data_type: DataType) -> None:
    fid = FUNCTION_PREFIX_1_0 + name

    @register(fid)
    def equal(*args: Any, _dt=data_type, _fid=fid) -> AttributeValue:
        _arity(args, 2, _fid)
        a = _require_value(args[0], _dt, _fid)
        b = _require_value(args[1], _dt, _fid)
        return boolean(a.value == b.value)


for _name, _dt in _EQUALITY_TYPES.items():
    _make_equal(_name, _dt)


# -- ordering ------------------------------------------------------------------

_ORDERED = {
    "integer": DataType.INTEGER,
    "double": DataType.DOUBLE,
    "string": DataType.STRING,
    "time": DataType.TIME,
    "dateTime": DataType.DATE_TIME,
}

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "greater-than": lambda a, b: a > b,
    "greater-than-or-equal": lambda a, b: a >= b,
    "less-than": lambda a, b: a < b,
    "less-than-or-equal": lambda a, b: a <= b,
}


def _make_comparison(type_name: str, data_type: DataType, op_name: str) -> None:
    fid = f"{FUNCTION_PREFIX_1_0}{type_name}-{op_name}"
    op = _COMPARATORS[op_name]

    @register(fid)
    def compare(*args: Any, _dt=data_type, _fid=fid, _op=op) -> AttributeValue:
        _arity(args, 2, _fid)
        a = _require_value(args[0], _dt, _fid)
        b = _require_value(args[1], _dt, _fid)
        return boolean(_op(a.value, b.value))


for _tname, _dt in _ORDERED.items():
    for _opname in _COMPARATORS:
        _make_comparison(_tname, _dt, _opname)


# -- arithmetic ----------------------------------------------------------------


def _make_arithmetic(type_name: str, data_type: DataType) -> None:
    ops: dict[str, Callable[[Any, Any], Any]] = {
        "add": lambda a, b: a + b,
        "subtract": lambda a, b: a - b,
        "multiply": lambda a, b: a * b,
    }
    for op_name, op in ops.items():
        fid = f"{FUNCTION_PREFIX_1_0}{type_name}-{op_name}"

        @register(fid)
        def arith(*args: Any, _dt=data_type, _fid=fid, _op=op) -> AttributeValue:
            _arity(args, 2, _fid)
            a = _require_value(args[0], _dt, _fid)
            b = _require_value(args[1], _dt, _fid)
            return AttributeValue(_dt, _op(a.value, b.value))

    div_fid = f"{FUNCTION_PREFIX_1_0}{type_name}-divide"

    @register(div_fid)
    def divide(*args: Any, _dt=data_type, _fid=div_fid) -> AttributeValue:
        _arity(args, 2, _fid)
        a = _require_value(args[0], _dt, _fid)
        b = _require_value(args[1], _dt, _fid)
        if b.value == 0:
            raise FunctionError(f"{_fid}: division by zero")
        result = a.value / b.value
        if _dt is DataType.INTEGER:
            result = int(a.value // b.value)
        return AttributeValue(_dt, result)


_make_arithmetic("integer", DataType.INTEGER)
_make_arithmetic("double", DataType.DOUBLE)


@register(FUNCTION_PREFIX_1_0 + "integer-abs")
def integer_abs(*args: Any) -> AttributeValue:
    fid = FUNCTION_PREFIX_1_0 + "integer-abs"
    _arity(args, 1, fid)
    a = _require_value(args[0], DataType.INTEGER, fid)
    return AttributeValue(DataType.INTEGER, abs(a.value))


@register(FUNCTION_PREFIX_1_0 + "integer-mod")
def integer_mod(*args: Any) -> AttributeValue:
    fid = FUNCTION_PREFIX_1_0 + "integer-mod"
    _arity(args, 2, fid)
    a = _require_value(args[0], DataType.INTEGER, fid)
    b = _require_value(args[1], DataType.INTEGER, fid)
    if b.value == 0:
        raise FunctionError(f"{fid}: modulo by zero")
    return AttributeValue(DataType.INTEGER, a.value % b.value)


# -- logic ---------------------------------------------------------------------


@register(FUNCTION_PREFIX_1_0 + "and")
def logical_and(*args: Any) -> AttributeValue:
    fid = FUNCTION_PREFIX_1_0 + "and"
    for arg in args:
        value = _require_value(arg, DataType.BOOLEAN, fid)
        if not value.value:
            return boolean(False)
    return boolean(True)


@register(FUNCTION_PREFIX_1_0 + "or")
def logical_or(*args: Any) -> AttributeValue:
    fid = FUNCTION_PREFIX_1_0 + "or"
    for arg in args:
        value = _require_value(arg, DataType.BOOLEAN, fid)
        if value.value:
            return boolean(True)
    return boolean(False)


@register(FUNCTION_PREFIX_1_0 + "not")
def logical_not(*args: Any) -> AttributeValue:
    fid = FUNCTION_PREFIX_1_0 + "not"
    _arity(args, 1, fid)
    value = _require_value(args[0], DataType.BOOLEAN, fid)
    return boolean(not value.value)


@register(FUNCTION_PREFIX_1_0 + "n-of")
def n_of(*args: Any) -> AttributeValue:
    """True if at least n of the remaining boolean arguments are true."""
    fid = FUNCTION_PREFIX_1_0 + "n-of"
    if not args:
        raise FunctionError(f"{fid}: requires the threshold argument")
    threshold = _require_value(args[0], DataType.INTEGER, fid).value
    if threshold > len(args) - 1:
        raise FunctionError(
            f"{fid}: threshold {threshold} exceeds argument count {len(args) - 1}"
        )
    count = 0
    for arg in args[1:]:
        if _require_value(arg, DataType.BOOLEAN, fid).value:
            count += 1
            if count >= threshold:
                return boolean(True)
    return boolean(count >= threshold)


# -- strings ---------------------------------------------------------------------


@register(FUNCTION_PREFIX_2_0 + "string-concatenate")
def string_concatenate(*args: Any) -> AttributeValue:
    fid = FUNCTION_PREFIX_2_0 + "string-concatenate"
    if len(args) < 2:
        raise FunctionError(f"{fid}: needs at least two arguments")
    parts = [_require_value(a, DataType.STRING, fid).value for a in args]
    return AttributeValue(DataType.STRING, "".join(parts))


@register(FUNCTION_PREFIX_1_0 + "string-normalize-space")
def string_normalize_space(*args: Any) -> AttributeValue:
    fid = FUNCTION_PREFIX_1_0 + "string-normalize-space"
    _arity(args, 1, fid)
    value = _require_value(args[0], DataType.STRING, fid)
    return AttributeValue(DataType.STRING, value.value.strip())


@register(FUNCTION_PREFIX_1_0 + "string-normalize-to-lower-case")
def string_normalize_lower(*args: Any) -> AttributeValue:
    fid = FUNCTION_PREFIX_1_0 + "string-normalize-to-lower-case"
    _arity(args, 1, fid)
    value = _require_value(args[0], DataType.STRING, fid)
    return AttributeValue(DataType.STRING, value.value.lower())


def _make_string_predicate(name: str, predicate: Callable[[str, str], bool]) -> None:
    fid = FUNCTION_PREFIX_2_0 + name

    @register(fid)
    def pred(*args: Any, _fid=fid, _p=predicate) -> AttributeValue:
        _arity(args, 2, _fid)
        a = _require_value(args[0], DataType.STRING, _fid)
        b = _require_value(args[1], DataType.STRING, _fid)
        return boolean(_p(a.value, b.value))


# Argument order follows XACML 3.0 string-starts-with(needle, haystack).
_make_string_predicate("string-starts-with", lambda n, h: h.startswith(n))
_make_string_predicate("string-ends-with", lambda n, h: h.endswith(n))
_make_string_predicate("string-contains", lambda n, h: n in h)


@register(FUNCTION_PREFIX_1_0 + "string-regexp-match")
def string_regexp_match(*args: Any) -> AttributeValue:
    fid = FUNCTION_PREFIX_1_0 + "string-regexp-match"
    _arity(args, 2, fid)
    pattern = _require_value(args[0], DataType.STRING, fid)
    subject = _require_value(args[1], DataType.STRING, fid)
    try:
        compiled = re.compile(pattern.value)
    except re.error as exc:
        raise FunctionError(f"{fid}: bad pattern {pattern.value!r}: {exc}") from exc
    return boolean(compiled.search(subject.value) is not None)


@register(FUNCTION_PREFIX_1_0 + "anyURI-regexp-match")
def any_uri_regexp_match(*args: Any) -> AttributeValue:
    fid = FUNCTION_PREFIX_1_0 + "anyURI-regexp-match"
    _arity(args, 2, fid)
    pattern = _require_value(args[0], DataType.STRING, fid)
    subject = _require_value(args[1], DataType.ANY_URI, fid)
    return boolean(re.search(pattern.value, subject.value) is not None)


# -- bag functions -----------------------------------------------------------------

_BAG_TYPES = {
    "string": DataType.STRING,
    "boolean": DataType.BOOLEAN,
    "integer": DataType.INTEGER,
    "double": DataType.DOUBLE,
    "time": DataType.TIME,
    "dateTime": DataType.DATE_TIME,
    "anyURI": DataType.ANY_URI,
    "x500Name": DataType.X500_NAME,
    "rfc822Name": DataType.RFC822_NAME,
}


def _make_bag_functions(type_name: str, data_type: DataType) -> None:
    one_fid = f"{FUNCTION_PREFIX_1_0}{type_name}-one-and-only"

    @register(one_fid)
    def one_and_only(*args: Any, _dt=data_type, _fid=one_fid) -> AttributeValue:
        _arity(args, 1, _fid)
        bag = _require_bag(args[0], _fid)
        if len(bag) != 1:
            raise FunctionError(
                f"{_fid}: bag has {len(bag)} elements, exactly one required"
            )
        value = bag.values[0]
        if value.data_type is not _dt:
            raise FunctionError(f"{_fid}: bag holds {value.data_type.name}")
        return value

    size_fid = f"{FUNCTION_PREFIX_1_0}{type_name}-bag-size"

    @register(size_fid)
    def bag_size(*args: Any, _fid=size_fid) -> AttributeValue:
        _arity(args, 1, _fid)
        bag = _require_bag(args[0], _fid)
        return AttributeValue(DataType.INTEGER, len(bag))

    is_in_fid = f"{FUNCTION_PREFIX_1_0}{type_name}-is-in"

    @register(is_in_fid)
    def is_in(*args: Any, _dt=data_type, _fid=is_in_fid) -> AttributeValue:
        _arity(args, 2, _fid)
        value = _require_value(args[0], _dt, _fid)
        bag = _require_bag(args[1], _fid)
        return boolean(any(v.value == value.value for v in bag))

    bag_fid = f"{FUNCTION_PREFIX_1_0}{type_name}-bag"

    @register(bag_fid)
    def make_bag(*args: Any, _dt=data_type, _fid=bag_fid) -> Bag:
        values = [_require_value(a, _dt, _fid) for a in args]
        return Bag(values)

    # Set relations over bags of this type.
    inter_fid = f"{FUNCTION_PREFIX_1_0}{type_name}-intersection"

    @register(inter_fid)
    def intersection(*args: Any, _fid=inter_fid) -> Bag:
        _arity(args, 2, _fid)
        a = _require_bag(args[0], _fid)
        b = _require_bag(args[1], _fid)
        b_vals = {v.value for v in b}
        seen: set = set()
        out = []
        for v in a:
            if v.value in b_vals and v.value not in seen:
                seen.add(v.value)
                out.append(v)
        return Bag(out)

    union_fid = f"{FUNCTION_PREFIX_1_0}{type_name}-union"

    @register(union_fid)
    def union(*args: Any, _fid=union_fid) -> Bag:
        _arity(args, 2, _fid)
        a = _require_bag(args[0], _fid)
        b = _require_bag(args[1], _fid)
        seen: set = set()
        out = []
        for v in list(a) + list(b):
            if v.value not in seen:
                seen.add(v.value)
                out.append(v)
        return Bag(out)

    alo_fid = f"{FUNCTION_PREFIX_1_0}{type_name}-at-least-one-member-of"

    @register(alo_fid)
    def at_least_one_member_of(*args: Any, _fid=alo_fid) -> AttributeValue:
        _arity(args, 2, _fid)
        a = _require_bag(args[0], _fid)
        b = _require_bag(args[1], _fid)
        b_vals = {v.value for v in b}
        return boolean(any(v.value in b_vals for v in a))

    subset_fid = f"{FUNCTION_PREFIX_1_0}{type_name}-subset"

    @register(subset_fid)
    def subset(*args: Any, _fid=subset_fid) -> AttributeValue:
        _arity(args, 2, _fid)
        a = _require_bag(args[0], _fid)
        b = _require_bag(args[1], _fid)
        b_vals = {v.value for v in b}
        return boolean(all(v.value in b_vals for v in a))

    seteq_fid = f"{FUNCTION_PREFIX_1_0}{type_name}-set-equals"

    @register(seteq_fid)
    def set_equals(*args: Any, _fid=seteq_fid) -> AttributeValue:
        _arity(args, 2, _fid)
        a = _require_bag(args[0], _fid)
        b = _require_bag(args[1], _fid)
        return boolean({v.value for v in a} == {v.value for v in b})


for _tname, _dt in _BAG_TYPES.items():
    _make_bag_functions(_tname, _dt)


# -- time-in-range --------------------------------------------------------------


@register(FUNCTION_PREFIX_2_0 + "time-in-range")
def time_in_range(*args: Any) -> AttributeValue:
    """True if arg0 falls within [arg1, arg2], handling midnight wrap."""
    fid = FUNCTION_PREFIX_2_0 + "time-in-range"
    _arity(args, 3, fid)
    t = _require_value(args[0], DataType.TIME, fid).value
    lo = _require_value(args[1], DataType.TIME, fid).value
    hi = _require_value(args[2], DataType.TIME, fid).value
    if lo <= hi:
        return boolean(lo <= t <= hi)
    return boolean(t >= lo or t <= hi)
