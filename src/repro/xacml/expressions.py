"""Expression evaluation: Apply trees, designators and conditions.

A rule's ``Condition`` is an arbitrary expression tree that must evaluate
to a single boolean.  Evaluation happens against an
:class:`EvaluationContext`, which wraps the request, the simulated clock
and the PIP attribute-resolution hook; failures surface as
:class:`Indeterminate`, carrying the XACML status code that ends up in the
response.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Protocol, Union

from . import functions
from .attributes import (
    AttributeDesignator,
    AttributeValue,
    Bag,
    Category,
    DataType,
)
from .context import RequestContext, Status, StatusCode


class Indeterminate(Exception):
    """Evaluation could not complete; maps to the Indeterminate decision."""

    def __init__(
        self, message: str, code: StatusCode = StatusCode.PROCESSING_ERROR
    ) -> None:
        super().__init__(message)
        self.status = Status(code=code, message=message)


class AttributeFinder(Protocol):
    """PIP hook: resolve attributes absent from the request context.

    Returns a list of values (possibly empty).  The PDP wires this to its
    configured Policy Information Points; a bare engine uses none.
    """

    def __call__(
        self, category: Category, attribute_id: str, data_type: DataType
    ) -> list[AttributeValue]: ...


@dataclass
class EvaluationContext:
    """Everything an expression may consult during evaluation."""

    request: RequestContext
    current_time: float = 0.0
    attribute_finder: Optional[AttributeFinder] = None
    #: Attributes pulled in via the finder, recorded for the E4 data-flow
    #: trace and for audit.
    resolved_attributes: list[tuple[Category, str]] = field(default_factory=list)
    #: Number of finder invocations (PIP round-trips in the simulation).
    finder_calls: int = 0
    #: Resolver for PolicyIdReference children (wired to the engine's
    #: policy store); ``None`` makes references evaluate Indeterminate.
    reference_resolver: Optional[Callable[[str], Any]] = None
    #: Reference ids currently being resolved (cycle guard).
    _reference_stack: set = field(default_factory=set)

    def resolve(self, designator: AttributeDesignator) -> Bag:
        """Resolve a designator: request first, then the PIP finder."""
        bag = self.request.bag(
            designator.category,
            designator.attribute_id,
            designator.data_type,
            designator.issuer,
        )
        if bag.is_empty() and self.attribute_finder is not None:
            self.finder_calls += 1
            values = self.attribute_finder(
                designator.category, designator.attribute_id, designator.data_type
            )
            if values:
                self.resolved_attributes.append(
                    (designator.category, designator.attribute_id)
                )
                bag = Bag(values)
        if bag.is_empty() and designator.must_be_present:
            raise Indeterminate(
                f"missing required attribute {designator.describe()}",
                code=StatusCode.MISSING_ATTRIBUTE,
            )
        return bag


class Expression:
    """Base class for the expression tree."""

    def evaluate(self, ctx: EvaluationContext) -> Union[AttributeValue, Bag]:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    """A constant attribute value."""

    value: AttributeValue

    def evaluate(self, ctx: EvaluationContext) -> AttributeValue:
        return self.value


@dataclass(frozen=True)
class Designator(Expression):
    """An attribute designator as an expression node (yields a bag)."""

    designator: AttributeDesignator

    def evaluate(self, ctx: EvaluationContext) -> Bag:
        return ctx.resolve(self.designator)


@dataclass(frozen=True)
class Apply(Expression):
    """Application of a registered function to argument expressions."""

    function_id: str
    arguments: tuple[Expression, ...]

    def evaluate(self, ctx: EvaluationContext) -> Union[AttributeValue, Bag]:
        func = functions.lookup(self.function_id)
        args = [argument.evaluate(ctx) for argument in self.arguments]
        try:
            return func(*args)
        except functions.FunctionError as exc:
            raise Indeterminate(
                f"error applying {self.function_id}: {exc}"
            ) from exc


# Higher-order functions need access to unevaluated function references, so
# they are modelled as dedicated expression nodes rather than registry
# entries.


@dataclass(frozen=True)
class AnyOfFunction(Expression):
    """XACML ``any-of``: apply f(value, element) over a bag, OR results."""

    function_id: str
    value: Expression
    bag: Expression

    def evaluate(self, ctx: EvaluationContext) -> AttributeValue:
        func = functions.lookup(self.function_id)
        value = self.value.evaluate(ctx)
        bag = self.bag.evaluate(ctx)
        if not isinstance(bag, Bag):
            raise Indeterminate("any-of: second argument must be a bag")
        for element in bag:
            try:
                result = func(value, element)
            except functions.FunctionError as exc:
                raise Indeterminate(f"any-of: {exc}") from exc
            if isinstance(result, AttributeValue) and result.value is True:
                return AttributeValue(DataType.BOOLEAN, True)
        return AttributeValue(DataType.BOOLEAN, False)


@dataclass(frozen=True)
class AllOfFunction(Expression):
    """XACML ``all-of``: apply f(value, element) over a bag, AND results."""

    function_id: str
    value: Expression
    bag: Expression

    def evaluate(self, ctx: EvaluationContext) -> AttributeValue:
        func = functions.lookup(self.function_id)
        value = self.value.evaluate(ctx)
        bag = self.bag.evaluate(ctx)
        if not isinstance(bag, Bag):
            raise Indeterminate("all-of: second argument must be a bag")
        for element in bag:
            try:
                result = func(value, element)
            except functions.FunctionError as exc:
                raise Indeterminate(f"all-of: {exc}") from exc
            if not (isinstance(result, AttributeValue) and result.value is True):
                return AttributeValue(DataType.BOOLEAN, False)
        return AttributeValue(DataType.BOOLEAN, True)


@dataclass(frozen=True)
class Condition:
    """A rule condition: an expression that must yield a single boolean."""

    expression: Expression

    def evaluate(self, ctx: EvaluationContext) -> bool:
        result = self.expression.evaluate(ctx)
        if isinstance(result, Bag):
            raise Indeterminate("condition evaluated to a bag, expected boolean")
        if result.data_type is not DataType.BOOLEAN:
            raise Indeterminate(
                f"condition evaluated to {result.data_type.name}, expected boolean"
            )
        return bool(result.value)


# -- convenience builders -----------------------------------------------------


def literal(value: AttributeValue) -> Literal:
    return Literal(value)


def designator(
    category: Category,
    attribute_id: str,
    data_type: DataType = DataType.STRING,
    must_be_present: bool = False,
) -> Designator:
    return Designator(
        AttributeDesignator(
            category=category,
            attribute_id=attribute_id,
            data_type=data_type,
            must_be_present=must_be_present,
        )
    )


def apply_(function_id: str, *arguments: Expression) -> Apply:
    return Apply(function_id=function_id, arguments=tuple(arguments))


def attribute_equals(
    category: Category,
    attribute_id: str,
    value: AttributeValue,
    must_be_present: bool = False,
) -> Condition:
    """Condition: the designated attribute bag contains ``value``."""
    type_name = _type_short_name(value.data_type)
    return Condition(
        apply_(
            f"{functions.FUNCTION_PREFIX_1_0}{type_name}-is-in",
            literal(value),
            designator(
                category, attribute_id, value.data_type, must_be_present
            ),
        )
    )


def _type_short_name(data_type: DataType) -> str:
    names = {
        DataType.STRING: "string",
        DataType.BOOLEAN: "boolean",
        DataType.INTEGER: "integer",
        DataType.DOUBLE: "double",
        DataType.TIME: "time",
        DataType.DATE_TIME: "dateTime",
        DataType.ANY_URI: "anyURI",
        DataType.RFC822_NAME: "rfc822Name",
        DataType.X500_NAME: "x500Name",
    }
    return names[data_type]
