"""Policies and policy sets: the interior of the XACML policy tree.

A :class:`Policy` combines rules with a rule-combining algorithm; a
:class:`PolicySet` combines policies (and nested policy sets) with a
policy-combining algorithm.  Both carry targets, obligations, versions and
an optional issuer — the issuer field is what the Administration &
Delegation profile (:mod:`repro.admin.delegation`) builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional, Union

from . import combining
from .context import Decision, Obligation, Status
from .expressions import EvaluationContext, Indeterminate
from .rules import Rule
from .targets import ANY_TARGET, MatchResult, Target


@dataclass(frozen=True)
class PolicyResult:
    """Outcome of evaluating a policy or policy set, with obligations."""

    decision: Decision
    status: Optional[Status] = None
    obligations: tuple[Obligation, ...] = ()


@dataclass(frozen=True)
class Policy:
    """A policy: target + rules + rule-combining algorithm + obligations."""

    policy_id: str
    rules: tuple[Rule, ...]
    rule_combining: str = combining.RULE_DENY_OVERRIDES
    target: Target = ANY_TARGET
    obligations: tuple[Obligation, ...] = ()
    description: str = ""
    version: str = "1.0"
    issuer: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.policy_id:
            raise ValueError("policy_id must be non-empty")
        combining.lookup(self.rule_combining)  # fail fast on bad identifiers
        seen: set[str] = set()
        for rule in self.rules:
            if rule.rule_id in seen:
                raise ValueError(
                    f"duplicate rule id {rule.rule_id!r} in policy {self.policy_id!r}"
                )
            seen.add(rule.rule_id)

    def evaluate(self, ctx: EvaluationContext) -> PolicyResult:
        try:
            match = self.target.evaluate(ctx)
        except Indeterminate as exc:
            return PolicyResult(Decision.INDETERMINATE, exc.status)
        if match is MatchResult.NO_MATCH:
            return PolicyResult(Decision.NOT_APPLICABLE)
        if match is MatchResult.INDETERMINATE:
            return PolicyResult(
                Decision.INDETERMINATE,
                Status(message=f"target of policy {self.policy_id} indeterminate"),
            )
        combiner = combining.lookup(self.rule_combining)
        evaluables = [
            (lambda r=rule: _rule_outcome(r, ctx)) for rule in self.rules
        ]
        decision, status = combiner(evaluables)
        return PolicyResult(
            decision=decision,
            status=status,
            obligations=_matching_obligations(self.obligations, decision),
        )

    def with_issuer(self, issuer: str) -> "Policy":
        return replace(self, issuer=issuer)

    def rule_ids(self) -> list[str]:
        return [rule.rule_id for rule in self.rules]

    def __repr__(self) -> str:
        return f"Policy({self.policy_id}, rules={len(self.rules)})"


@dataclass(frozen=True)
class PolicyReference:
    """A by-id reference to a policy element stored elsewhere.

    XACML's ``PolicyIdReference``/``PolicySetIdReference``: the mechanism
    behind the paper's observation (§2.3) that "policies can be composed
    of a variety of distributed policies and rules that can be possibly
    managed by different organisational units".  References resolve at
    evaluation time against the engine's policy store; an unresolvable or
    cyclic reference evaluates Indeterminate (never silently skipped).
    """

    reference_id: str

    def evaluate(self, ctx: EvaluationContext) -> "PolicyResult":
        resolver = ctx.reference_resolver
        if resolver is None:
            return PolicyResult(
                Decision.INDETERMINATE,
                Status(message=f"no resolver for reference {self.reference_id!r}"),
            )
        if self.reference_id in ctx._reference_stack:
            return PolicyResult(
                Decision.INDETERMINATE,
                Status(
                    message=f"cyclic policy reference {self.reference_id!r}"
                ),
            )
        target = resolver(self.reference_id)
        if target is None:
            return PolicyResult(
                Decision.INDETERMINATE,
                Status(
                    message=f"unresolvable policy reference {self.reference_id!r}"
                ),
            )
        ctx._reference_stack.add(self.reference_id)
        try:
            return target.evaluate(ctx)
        finally:
            ctx._reference_stack.discard(self.reference_id)

    def __repr__(self) -> str:
        return f"PolicyReference({self.reference_id})"


PolicyChild = Union[Policy, "PolicySet", PolicyReference]


@dataclass(frozen=True)
class PolicySet:
    """A policy set combining policies and nested sets."""

    policy_set_id: str
    children: tuple[PolicyChild, ...]
    policy_combining: str = combining.POLICY_DENY_OVERRIDES
    target: Target = ANY_TARGET
    obligations: tuple[Obligation, ...] = ()
    description: str = ""
    version: str = "1.0"
    issuer: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.policy_set_id:
            raise ValueError("policy_set_id must be non-empty")
        combining.lookup(self.policy_combining)
        seen: set[str] = set()
        for child in self.children:
            child_id = child_identifier(child)
            if child_id in seen:
                raise ValueError(
                    f"duplicate child id {child_id!r} in policy set "
                    f"{self.policy_set_id!r}"
                )
            seen.add(child_id)

    def evaluate(self, ctx: EvaluationContext) -> PolicyResult:
        try:
            match = self.target.evaluate(ctx)
        except Indeterminate as exc:
            return PolicyResult(Decision.INDETERMINATE, exc.status)
        if match is MatchResult.NO_MATCH:
            return PolicyResult(Decision.NOT_APPLICABLE)
        if match is MatchResult.INDETERMINATE:
            return PolicyResult(
                Decision.INDETERMINATE,
                Status(
                    message=f"target of policy set {self.policy_set_id} indeterminate"
                ),
            )
        combiner = combining.lookup(self.policy_combining)
        collected: list[Obligation] = []

        def child_evaluable(child: PolicyChild):
            def run() -> tuple[Decision, Optional[Status]]:
                result = child.evaluate(ctx)
                if result.decision.is_definitive:
                    collected.extend(result.obligations)
                return result.decision, result.status

            return run

        evaluables = [child_evaluable(child) for child in self.children]
        decision, status = combiner(evaluables)
        # Only obligations whose fulfill_on matches the final decision, plus
        # this set's own, flow upward (XACML §7.14).
        child_obligations = tuple(
            ob for ob in collected if ob.fulfill_on is decision
        )
        return PolicyResult(
            decision=decision,
            status=status,
            obligations=child_obligations
            + _matching_obligations(self.obligations, decision),
        )

    def flatten(self) -> list[Policy]:
        """All *inline* leaf policies in document order.

        References are not followed (they resolve only against a store at
        evaluation time); static analyses that need referenced content
        should resolve them first.
        """
        out: list[Policy] = []
        for child in self.children:
            if isinstance(child, Policy):
                out.append(child)
            elif isinstance(child, PolicySet):
                out.extend(child.flatten())
        return out

    def __repr__(self) -> str:
        return f"PolicySet({self.policy_set_id}, children={len(self.children)})"


def child_identifier(child: PolicyChild) -> str:
    if isinstance(child, Policy):
        return child.policy_id
    if isinstance(child, PolicyReference):
        return child.reference_id
    return child.policy_set_id


def _rule_outcome(rule: Rule, ctx: EvaluationContext):
    result = rule.evaluate(ctx)
    return result.decision, result.status


def _matching_obligations(
    obligations: Iterable[Obligation], decision: Decision
) -> tuple[Obligation, ...]:
    if decision not in (Decision.PERMIT, Decision.DENY):
        return ()
    return tuple(ob for ob in obligations if ob.fulfill_on is decision)


def policy_set_of(
    policy_set_id: str,
    children: Iterable[PolicyChild],
    policy_combining: str = combining.POLICY_DENY_OVERRIDES,
    target: Target = ANY_TARGET,
) -> PolicySet:
    return PolicySet(
        policy_set_id=policy_set_id,
        children=tuple(children),
        policy_combining=policy_combining,
        target=target,
    )
