"""Rules: the leaves of the XACML policy tree.

A rule has an effect (Permit or Deny), an optional target narrowing its
applicability and an optional boolean condition.  Rules only exist inside
policies; their decisions are merged by rule-combining algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .context import Decision, Status
from .expressions import Condition, EvaluationContext, Indeterminate
from .targets import ANY_TARGET, MatchResult, Target


class Effect:
    """The two rule effects, as Decision members for direct reuse."""

    PERMIT = Decision.PERMIT
    DENY = Decision.DENY


@dataclass(frozen=True)
class RuleResult:
    """Outcome of evaluating one rule."""

    decision: Decision
    status: Optional[Status] = None


@dataclass(frozen=True)
class Rule:
    """A single access control rule.

    Evaluation (XACML 2.0 §7.9):

    * target NO_MATCH        -> NotApplicable
    * target INDETERMINATE   -> Indeterminate
    * condition False        -> NotApplicable
    * condition error        -> Indeterminate
    * otherwise              -> the rule's effect
    """

    rule_id: str
    effect: Decision
    target: Target = ANY_TARGET
    condition: Optional[Condition] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.effect not in (Decision.PERMIT, Decision.DENY):
            raise ValueError(
                f"rule effect must be Permit or Deny, got {self.effect.value}"
            )

    def evaluate(self, ctx: EvaluationContext) -> RuleResult:
        try:
            match = self.target.evaluate(ctx)
        except Indeterminate as exc:
            return RuleResult(Decision.INDETERMINATE, exc.status)
        if match is MatchResult.NO_MATCH:
            return RuleResult(Decision.NOT_APPLICABLE)
        if match is MatchResult.INDETERMINATE:
            return RuleResult(
                Decision.INDETERMINATE,
                Status(message=f"target of rule {self.rule_id} indeterminate"),
            )
        if self.condition is not None:
            try:
                satisfied = self.condition.evaluate(ctx)
            except Indeterminate as exc:
                return RuleResult(Decision.INDETERMINATE, exc.status)
            if not satisfied:
                return RuleResult(Decision.NOT_APPLICABLE)
        return RuleResult(self.effect)

    def is_permit(self) -> bool:
        return self.effect is Decision.PERMIT

    def __repr__(self) -> str:
        return f"Rule({self.rule_id}, {self.effect.value})"


def permit_rule(
    rule_id: str,
    target: Target = ANY_TARGET,
    condition: Optional[Condition] = None,
    description: str = "",
) -> Rule:
    return Rule(rule_id, Decision.PERMIT, target, condition, description)


def deny_rule(
    rule_id: str,
    target: Target = ANY_TARGET,
    condition: Optional[Condition] = None,
    description: str = "",
) -> Rule:
    return Rule(rule_id, Decision.DENY, target, condition, description)
