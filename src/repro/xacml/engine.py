"""The XACML evaluation engine: what beats inside every PDP.

The engine evaluates a request context against a policy store and returns
a response context.  Two store strategies are provided:

* :class:`PolicyStore` — the straightforward "evaluate the root element"
  model of the standard;
* target indexing — an optimisation that buckets policies by the literal
  subject/resource/action equality constraints in their targets, so that
  requests only evaluate plausibly-applicable policies.  This is the
  mechanism behind the scalability shape of experiment E14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union

from . import combining
from .attributes import ACTION_ID, Category, RESOURCE_ID, SUBJECT_ID
from .context import Decision, RequestContext, ResponseContext, Status
from .expressions import AttributeFinder, EvaluationContext
from .policy import Policy, PolicyResult, PolicySet, child_identifier

PolicyElement = Union[Policy, PolicySet]


@dataclass
class EvaluationStats:
    """Per-request work counters, surfaced to benchmarks."""

    policies_considered: int = 0
    policies_skipped_by_index: int = 0
    finder_calls: int = 0
    #: Size of the candidate set the store produced for this request —
    #: the index-selectivity figure E19 reports per shard.
    candidate_set_size: int = 0


class AnalysisGateError(ValueError):
    """An element was refused deployment by the store's analysis gate.

    Carries the blocking findings so callers (PAPs, tests, operators) can
    show *why* — every one of them is backed by an engine-verified
    witness request.
    """

    def __init__(self, identifier: str, findings: list) -> None:
        summary = "; ".join(
            f"{f.kind.value}@{f.location}" for f in findings[:3]
        )
        more = f" (+{len(findings) - 3} more)" if len(findings) > 3 else ""
        super().__init__(
            f"analysis gate refused {identifier!r}: {summary}{more}"
        )
        self.identifier = identifier
        self.findings = findings


class PolicyStore:
    """Holds top-level policy elements and finds the applicable ones.

    With ``indexed=True`` the store maintains inverted indexes over the
    literal equality keys of each element's target.  A request then only
    evaluates elements whose indexed constraints are satisfiable, plus all
    unindexable elements.  Indexing never changes decisions — only which
    elements get *checked* — and a property test asserts exactly that.

    ``analysis_gate`` opts into pre-deployment static analysis on every
    :meth:`add`: ``"error"`` refuses elements with ERROR-severity
    findings (shadowed rules, masked effects, only-one-applicable
    overlaps), ``"warning"`` refuses on any finding at all.  Refusals
    raise :class:`AnalysisGateError` and leave the store unchanged.
    """

    def __init__(
        self,
        indexed: bool = True,
        analysis_gate: Optional[str] = None,
        metrics: Optional[object] = None,
    ) -> None:
        if analysis_gate not in (None, "error", "warning"):
            raise ValueError(
                f"analysis_gate must be 'error', 'warning' or None, "
                f"got {analysis_gate!r}"
            )
        self.indexed = indexed
        self.analysis_gate = analysis_gate
        self.metrics = metrics
        self._elements: dict[str, PolicyElement] = {}
        self._index: dict[tuple[Category, str, str], set[str]] = {}
        self._unindexable: set[str] = set()

    def __len__(self) -> int:
        return len(self._elements)

    def add(self, element: PolicyElement) -> None:
        identifier = child_identifier(element)
        if identifier in self._elements:
            raise ValueError(f"duplicate policy element id {identifier!r}")
        if self.analysis_gate is not None:
            self._gate_check(identifier, element)
        self._elements[identifier] = element
        self._index_element(identifier, element)

    def _gate_check(self, identifier: str, element: PolicyElement) -> None:
        from .analysis import analyze  # deferred: analysis imports this module
        from .validation import Severity

        level = (
            Severity.WARNING
            if self.analysis_gate == "warning"
            else Severity.ERROR
        )
        report = analyze(
            element,
            resolver=self.get,
            include_validation=False,
            metrics=self.metrics,
        )
        blocking = report.blocking(level)
        if blocking:
            if self.metrics is not None:
                self.metrics.bump("analysis.gate_rejections")
            raise AnalysisGateError(identifier, blocking)

    def remove(self, identifier: str) -> None:
        self._elements.pop(identifier, None)
        self._unindexable.discard(identifier)
        for bucket in self._index.values():
            bucket.discard(identifier)

    def replace(self, element: PolicyElement) -> None:
        self.remove(child_identifier(element))
        self.add(element)

    def get(self, identifier: str) -> Optional[PolicyElement]:
        return self._elements.get(identifier)

    def elements(self) -> list[PolicyElement]:
        return list(self._elements.values())

    def _index_element(self, identifier: str, element: PolicyElement) -> None:
        if not self.indexed:
            self._unindexable.add(identifier)
            return
        keys = element.target.literal_equality_keys()
        # Index on the three canonical identifiers only; anything else is
        # resolvable via PIP and cannot be judged from the raw request.
        indexable = {
            (Category.SUBJECT, SUBJECT_ID),
            (Category.RESOURCE, RESOURCE_ID),
            (Category.ACTION, ACTION_ID),
        }
        chosen: Optional[tuple[Category, str]] = None
        for key in keys:
            if key in indexable:
                chosen = key
                break
        if chosen is None:
            self._unindexable.add(identifier)
            return
        for value in keys[chosen]:
            self._index.setdefault((chosen[0], chosen[1], value), set()).add(
                identifier
            )

    @property
    def element_count(self) -> int:
        """Top-level elements held — the per-shard state figure of E19."""
        return len(self._elements)

    def candidates(
        self, request: RequestContext, stats: Optional[EvaluationStats] = None
    ) -> list[PolicyElement]:
        """Elements worth evaluating for this request, in insertion order."""
        if not self.indexed:
            if stats is not None:
                stats.candidate_set_size = len(self._elements)
            return self.elements()
        wanted: set[str] = set(self._unindexable)
        lookups = (
            (Category.SUBJECT, SUBJECT_ID, request.subject_id),
            (Category.RESOURCE, RESOURCE_ID, request.resource_id),
            (Category.ACTION, ACTION_ID, request.action_id),
        )
        for category, attribute_id, value in lookups:
            if value is None:
                continue
            wanted |= self._index.get((category, attribute_id, value), set())
        if stats is not None:
            stats.policies_skipped_by_index += len(self._elements) - len(wanted)
            stats.candidate_set_size = len(wanted)
        return [
            element
            for identifier, element in self._elements.items()
            if identifier in wanted
        ]

    def partition_for(self, owns: Callable[[str], bool]) -> "PolicyStore":
        """Derive one shard's store under a resource placement.

        The shard keeps every element whose target provably applies only
        to resources (:meth:`~repro.xacml.targets.Target.
        constraining_values` on ``resource-id``) at least one of which
        ``owns`` — plus every element with *no* sound resource
        constraint, which must replicate to all shards because dropping
        it anywhere could change decisions.  The union of all shards'
        decisions therefore equals the unsharded store's on any request
        routed by resource key.
        """
        shard = PolicyStore(indexed=self.indexed)
        for element in self._elements.values():
            values = element.target.constraining_values(
                Category.RESOURCE, RESOURCE_ID
            )
            if values is None or any(owns(value) for value in values):
                shard.add(element)
        return shard

    def shard_stats(self) -> dict[str, int]:
        """Element-count breakdown for per-shard state-skew reporting."""
        return {
            "elements": len(self._elements),
            "unindexable": len(self._unindexable),
            "index_keys": len(self._index),
        }


@dataclass
class EngineResponse:
    """Response context plus evaluation statistics."""

    response: ResponseContext
    stats: EvaluationStats = field(default_factory=EvaluationStats)

    @property
    def decision(self) -> Decision:
        return self.response.decision


class PdpEngine:
    """Evaluates requests against a policy store.

    Args:
        store: the policy store to evaluate against.
        policy_combining: algorithm merging the decisions of multiple
            applicable top-level elements.
        attribute_finder: PIP hook for attributes absent from requests.
    """

    def __init__(
        self,
        store: Optional[PolicyStore] = None,
        policy_combining: str = combining.POLICY_DENY_OVERRIDES,
        attribute_finder: Optional[AttributeFinder] = None,
    ) -> None:
        self.store = store if store is not None else PolicyStore()
        self.policy_combining = policy_combining
        combining.lookup(policy_combining)
        self.attribute_finder = attribute_finder
        self.evaluations = 0
        self.batches_evaluated = 0
        #: Candidate lookups answered from the batch memo instead of the
        #: target index — the engine-level work batching amortises.
        self.candidate_lookups_shared = 0

    def add_policy(self, element: PolicyElement) -> None:
        self.store.add(element)

    def add_policies(self, elements: Iterable[PolicyElement]) -> None:
        for element in elements:
            self.store.add(element)

    def evaluate(
        self, request: RequestContext, current_time: float = 0.0
    ) -> EngineResponse:
        """Evaluate a request and produce a single-result response."""
        self.evaluations += 1
        stats = EvaluationStats()
        candidates = self.store.candidates(request, stats)
        return self._evaluate_candidates(
            request, candidates, stats, current_time, self.attribute_finder
        )

    def evaluate_batch(
        self,
        requests: Sequence[RequestContext],
        current_time: float = 0.0,
        finder_for: Optional[
            Callable[[RequestContext], Optional[AttributeFinder]]
        ] = None,
    ) -> list[EngineResponse]:
        """Evaluate N requests against one snapshot of the policy store.

        Element-wise equivalent to calling :meth:`evaluate` on each
        request in order (a property test asserts exactly that), but the
        batch shares target-index lookups: requests naming the same
        (subject, resource, action) triple resolve their candidate list
        once.  The store is not refreshed or mutated between elements —
        the "one policy snapshot" guarantee a batched decision query
        carries.

        Args:
            requests: request contexts, evaluated in order.
            current_time: evaluation time shared by the whole batch.
            finder_for: optional per-request attribute-finder factory
                (the PDP binds its PIP resolver to each request); when
                omitted every element uses ``self.attribute_finder``.
        """
        self.batches_evaluated += 1
        memo: dict[tuple, list[PolicyElement]] = {}
        responses: list[EngineResponse] = []
        for request in requests:
            self.evaluations += 1
            stats = EvaluationStats()
            key = (request.subject_id, request.resource_id, request.action_id)
            candidates = memo.get(key)
            if candidates is None:
                candidates = self.store.candidates(request, stats)
                memo[key] = candidates
            else:
                self.candidate_lookups_shared += 1
                if self.store.indexed:
                    stats.policies_skipped_by_index = len(self.store) - len(
                        candidates
                    )
                stats.candidate_set_size = len(candidates)
            finder = (
                finder_for(request)
                if finder_for is not None
                else self.attribute_finder
            )
            responses.append(
                self._evaluate_candidates(
                    request, candidates, stats, current_time, finder
                )
            )
        return responses

    def _evaluate_candidates(
        self,
        request: RequestContext,
        candidates: list[PolicyElement],
        stats: EvaluationStats,
        current_time: float,
        attribute_finder: Optional[AttributeFinder],
    ) -> EngineResponse:
        """Combine the candidate elements' results into one response."""
        ctx = EvaluationContext(
            request=request,
            current_time=current_time,
            attribute_finder=attribute_finder,
            reference_resolver=self.store.get,
        )
        stats.policies_considered = len(candidates)
        results: list[PolicyResult] = []

        def make_evaluable(element: PolicyElement):
            def run():
                result = element.evaluate(ctx)
                results.append(result)
                return result.decision, result.status

            return run

        combiner = combining.lookup(self.policy_combining)
        decision, status = combiner([make_evaluable(c) for c in candidates])
        obligations = tuple(
            ob
            for result in results
            if result.decision is decision
            for ob in result.obligations
            if ob.fulfill_on is decision
        )
        stats.finder_calls = ctx.finder_calls
        response = ResponseContext.single(
            decision=decision,
            status=status or Status(),
            obligations=obligations,
            resource_id=request.resource_id,
        )
        return EngineResponse(response=response, stats=stats)

    def decide(
        self, request: RequestContext, current_time: float = 0.0
    ) -> Decision:
        """Shorthand when only the decision matters."""
        return self.evaluate(request, current_time).decision

    def analyze(self):
        """Statically analyze the whole store under this engine's
        policy-combining algorithm (see :mod:`repro.xacml.analysis`)."""
        from .analysis import analyze

        return analyze(
            self.store,
            policy_combining=self.policy_combining,
            metrics=self.store.metrics,
        )


def evaluate_element(
    element: PolicyElement,
    request: RequestContext,
    current_time: float = 0.0,
    attribute_finder: Optional[AttributeFinder] = None,
    reference_resolver=None,
) -> PolicyResult:
    """Evaluate a single policy element outside any engine (test helper)."""
    ctx = EvaluationContext(
        request=request,
        current_time=current_time,
        attribute_finder=attribute_finder,
        reference_resolver=reference_resolver,
    )
    return element.evaluate(ctx)
