"""Experiment harness: runs experiments and collects printable rows.

Every benchmark in ``benchmarks/`` builds an :class:`Experiment`, adds
rows (one per configuration/sweep point) and prints the table in the
format EXPERIMENTS.md records.  Keeping the row schema uniform lets the
reproduction compare "paper shape" vs "measured shape" mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Experiment:
    """One paper figure/challenge reproduced as a table of rows."""

    exp_id: str
    title: str
    paper_claim: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.exp_id}: row has {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> list[Any]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        from .reporting import render_table

        lines = [
            f"== {self.exp_id}: {self.title} ==",
            f"paper claim: {self.paper_claim}",
            render_table(self.columns, self.rows),
        ]
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
