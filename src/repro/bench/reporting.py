"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Any


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def render_table(columns: list[str], rows: list[list[Any]]) -> str:
    """Render an aligned ASCII table."""
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "-+-".join("-" * w for w in widths)
    body = [
        " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in formatted
    ]
    return "\n".join([header, rule] + body)
