"""Benchmark harness: experiment tables and reporting."""

from .harness import Experiment
from .reporting import render_table

__all__ = ["Experiment", "render_table"]
