"""WS-Policy style policy assertions attached to service endpoints.

The Web Services profile of XACML (WS-XACML, paper §3.1) lets a service
advertise *policy assertions* — the authorisation and privacy requirements
a caller must satisfy.  We model the mechanism: a service publishes a
:class:`ServicePolicy` of required claims; clients present claims; the
intersection test says whether an interaction can even be attempted before
any PDP round-trip happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class PolicyAssertion:
    """One requirement: a claim kind plus acceptable values.

    ``kind`` examples: ``"token-type"`` (saml / x509-attribute),
    ``"signed-messages"``, ``"role"``, ``"member-of-vo"``.
    An empty ``accepted_values`` means "the claim must merely be present".
    """

    kind: str
    accepted_values: frozenset[str] = frozenset()
    optional: bool = False

    def satisfied_by(self, claims: dict[str, set[str]]) -> bool:
        if self.kind not in claims:
            return self.optional
        if not self.accepted_values:
            return True
        return bool(self.accepted_values & claims[self.kind])

    def to_xml(self) -> str:
        values = "".join(
            f"<wsp:Value>{v}</wsp:Value>" for v in sorted(self.accepted_values)
        )
        opt = ' wsp:Optional="true"' if self.optional else ""
        return f'<wsp:Assertion kind="{self.kind}"{opt}>{values}</wsp:Assertion>'


@dataclass(frozen=True)
class ServicePolicy:
    """All assertions a service attaches to its endpoint (wsp:Policy)."""

    service_name: str
    assertions: tuple[PolicyAssertion, ...] = ()

    def unmet_assertions(
        self, claims: dict[str, set[str]]
    ) -> list[PolicyAssertion]:
        return [a for a in self.assertions if not a.satisfied_by(claims)]

    def admits(self, claims: dict[str, set[str]]) -> bool:
        """True when every mandatory assertion is satisfied by ``claims``."""
        return not self.unmet_assertions(claims)

    def to_xml(self) -> str:
        inner = "".join(a.to_xml() for a in self.assertions)
        return (
            f'<wsp:Policy xmlns:wsp="http://www.w3.org/ns/ws-policy" '
            f'service="{self.service_name}">{inner}</wsp:Policy>'
        )

    @property
    def wire_size(self) -> int:
        return len(self.to_xml().encode("utf-8"))


def require_token(token_types: Iterable[str]) -> PolicyAssertion:
    return PolicyAssertion(kind="token-type", accepted_values=frozenset(token_types))


def require_signed_messages() -> PolicyAssertion:
    return PolicyAssertion(kind="signed-messages")


def require_role(roles: Iterable[str]) -> PolicyAssertion:
    return PolicyAssertion(kind="role", accepted_values=frozenset(roles))


def require_vo_membership(vo_names: Iterable[str]) -> PolicyAssertion:
    return PolicyAssertion(kind="member-of-vo", accepted_values=frozenset(vo_names))
