"""Web Services substrate: SOAP, WSDL-lite, registry, WS-Security, REST.

Stands in for the paper's "Web Services as the underlying connection
technology": envelopes serialize to real XML (byte-accurate sizes),
services describe themselves for discovery, and WS-Security provides the
message-level protection of Section 3.2.
"""

from .registry import RegistryEntry, RegistryError, ServiceRegistry
from .rest import (
    HttpRequest,
    HttpResponse,
    METHOD_TO_ACTION,
    RestResource,
    RestRouter,
    RouteDecision,
    SAFE_METHODS,
)
from .soap import (
    HeaderBlock,
    SOAP_NS,
    SoapEnvelope,
    SoapFault,
    request_envelope,
    response_envelope,
)
from .ws_policy import (
    PolicyAssertion,
    ServicePolicy,
    require_role,
    require_signed_messages,
    require_token,
    require_vo_membership,
)
from .ws_security import (
    SECURITY_HEADER,
    SecurityConfig,
    WsSecurityError,
    secure_envelope,
    signer_of,
    verify_envelope,
)
from .wsdl import (
    Operation,
    ServiceDescription,
    capability_service_description,
    pap_description,
    pdp_description,
)

__all__ = [
    "HeaderBlock",
    "HttpRequest",
    "HttpResponse",
    "METHOD_TO_ACTION",
    "Operation",
    "PolicyAssertion",
    "RegistryEntry",
    "RegistryError",
    "RestResource",
    "RestRouter",
    "RouteDecision",
    "SAFE_METHODS",
    "SECURITY_HEADER",
    "SOAP_NS",
    "SecurityConfig",
    "ServiceDescription",
    "ServicePolicy",
    "ServiceRegistry",
    "SoapEnvelope",
    "SoapFault",
    "WsSecurityError",
    "capability_service_description",
    "pap_description",
    "pdp_description",
    "request_envelope",
    "require_role",
    "require_signed_messages",
    "require_token",
    "require_vo_membership",
    "response_envelope",
    "secure_envelope",
    "signer_of",
    "verify_envelope",
]
