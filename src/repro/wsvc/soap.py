"""SOAP 1.2-style envelopes.

Web Services in the paper exchange SOAP messages whose headers carry
security material (SAML assertions, WS-Security signatures) and whose
bodies carry application payloads (XACML contexts, business calls).  The
envelope here serializes to real XML so that every layer of wrapping has a
measurable byte cost — the substance of experiment E7.

Parsing uses a purpose-built scanner rather than ElementTree: header
blocks and bodies must round-trip *byte-exactly* (signatures cover them),
and generic XML libraries re-write namespace prefixes on re-serialization.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

SOAP_NS = "http://www.w3.org/2003/05/soap-envelope"


class SoapFault(Exception):
    """A SOAP-level fault, raised by services and carried in responses."""

    def __init__(self, code: str, reason: str) -> None:
        super().__init__(f"{code}: {reason}")
        self.code = code
        self.reason = reason

    def to_envelope(self) -> "SoapEnvelope":
        body = (
            f"<soap:Fault><soap:Code><soap:Value>{self.code}</soap:Value>"
            f"</soap:Code><soap:Reason><soap:Text>{self.reason}"
            f"</soap:Text></soap:Reason></soap:Fault>"
        )
        return SoapEnvelope(action="fault", body_xml=body)


@dataclass
class HeaderBlock:
    """One SOAP header block: a name plus raw XML content."""

    name: str
    content_xml: str
    must_understand: bool = False

    def to_xml(self) -> str:
        mu = ' soap:mustUnderstand="true"' if self.must_understand else ""
        return f"<{self.name}{mu}>{self.content_xml}</{self.name}>"


@dataclass
class SoapEnvelope:
    """A SOAP envelope: action, header blocks and an XML body."""

    action: str
    body_xml: str
    headers: list[HeaderBlock] = field(default_factory=list)

    def add_header(
        self, name: str, content_xml: str, must_understand: bool = False
    ) -> None:
        self.headers.append(HeaderBlock(name, content_xml, must_understand))

    def header(self, name: str) -> Optional[HeaderBlock]:
        for block in self.headers:
            if block.name == name:
                return block
        return None

    def remove_header(self, name: str) -> None:
        self.headers = [block for block in self.headers if block.name != name]

    def to_xml(self) -> str:
        header_xml = "".join(block.to_xml() for block in self.headers)
        header_part = f"<soap:Header>{header_xml}</soap:Header>" if header_xml else ""
        return (
            f'<soap:Envelope xmlns:soap="{SOAP_NS}" action="{self.action}">'
            f"{header_part}<soap:Body>{self.body_xml}</soap:Body></soap:Envelope>"
        )

    @property
    def wire_size(self) -> int:
        return len(self.to_xml().encode("utf-8"))

    @property
    def is_fault(self) -> bool:
        return self.action == "fault" and "<soap:Fault>" in self.body_xml

    @classmethod
    def from_xml(cls, xml_text: str) -> "SoapEnvelope":
        """Parse an envelope produced by :meth:`to_xml`.

        Inner XML of headers and body is preserved byte-exactly so that
        signatures computed before transmission still verify after.
        """
        envelope_match = re.match(
            r"<soap:Envelope [^>]*action=\"([^\"]*)\"[^>]*>(.*)</soap:Envelope>$",
            xml_text,
            re.DOTALL,
        )
        if envelope_match is None:
            raise SoapFault("soap:Sender", "not a SOAP envelope")
        action, inner = envelope_match.group(1), envelope_match.group(2)
        headers: list[HeaderBlock] = []
        header_match = re.match(
            r"<soap:Header>(.*)</soap:Header>(<soap:Body>.*)$", inner, re.DOTALL
        )
        if header_match is not None:
            headers = _parse_header_blocks(header_match.group(1))
            inner = header_match.group(2)
        body_match = re.match(r"<soap:Body>(.*)</soap:Body>$", inner, re.DOTALL)
        if body_match is None:
            raise SoapFault("soap:Sender", "envelope has no Body")
        return cls(action=action, body_xml=body_match.group(1), headers=headers)


def _parse_header_blocks(header_xml: str) -> list[HeaderBlock]:
    """Split the Header section into top-level blocks, respecting nesting."""
    blocks: list[HeaderBlock] = []
    position = 0
    open_tag = re.compile(r"<([\w:.-]+)((?:\s[^>]*?)?)(/?)>")
    while position < len(header_xml):
        match = open_tag.match(header_xml, position)
        if match is None:
            raise SoapFault(
                "soap:Sender", f"bad header content near {header_xml[position:position+40]!r}"
            )
        name, attrs, self_closing = match.group(1), match.group(2), match.group(3)
        must = 'soap:mustUnderstand="true"' in attrs
        if self_closing:
            blocks.append(HeaderBlock(name=name, content_xml="", must_understand=must))
            position = match.end()
            continue
        # Find the matching close tag for this block, accounting for nested
        # occurrences of the same tag name.
        depth = 1
        cursor = match.end()
        token = re.compile(f"<{re.escape(name)}(?:\\s[^>]*?)?(/?)>|</{re.escape(name)}>")
        while depth > 0:
            next_token = token.search(header_xml, cursor)
            if next_token is None:
                raise SoapFault("soap:Sender", f"unclosed header block <{name}>")
            if next_token.group(0).startswith("</"):
                depth -= 1
            elif not next_token.group(1):
                depth += 1
            cursor = next_token.end()
        content = header_xml[match.end() : cursor - len(f"</{name}>")]
        blocks.append(HeaderBlock(name=name, content_xml=content, must_understand=must))
        position = cursor
    return blocks


def request_envelope(action: str, body_xml: str) -> SoapEnvelope:
    return SoapEnvelope(action=action, body_xml=body_xml)


def response_envelope(request: SoapEnvelope, body_xml: str) -> SoapEnvelope:
    return SoapEnvelope(action=f"{request.action}:response", body_xml=body_xml)
