"""WS-Security header processing for SOAP envelopes.

Implements the message-level protection the paper requires (Section 3.2):
envelopes are signed (authenticity, integrity) and optionally have their
body encrypted (confidentiality) by inserting a ``wsse:Security`` header.
Everything a receiver needs travels *in the XML* — certificate fields in a
``BinarySecurityToken``, digest and signature value in a ``ds:Signature``
block — so protection survives the trip across the simulated network and
its cost is visible in ``envelope.wire_size`` (experiment E7): the size
penalty the paper cites from Juric et al. for WS-Security-protected
messages.

Ordering is sign-then-encrypt (WS-Security 1.1 practice): receivers
decrypt first, then verify the signature over the recovered body.
"""

from __future__ import annotations

import base64
import hashlib
import re
from dataclasses import dataclass
from typing import Optional

from ..wss.keys import Ciphertext, KeyPair, KeyStore, PublicKey
from ..wss.pki import Certificate, CertificateError, TrustValidator
from ..wss.xmlenc import EncryptedDocument, decrypt_document
from .soap import SoapEnvelope

SECURITY_HEADER = "wsse:Security"


class WsSecurityError(Exception):
    """Raised when inbound security processing fails."""


@dataclass(frozen=True)
class SecurityConfig:
    """What protection to apply on send / require on receive."""

    sign: bool = True
    encrypt: bool = False
    require_signature: bool = True
    require_encryption: bool = False


def _bound_content(action: str, body_xml: str) -> bytes:
    """The byte string signatures cover: body bound to the SOAP action."""
    return f'<bound action="{action}">{body_xml}</bound>'.encode("utf-8")


def _cert_token_xml(certificate: Certificate) -> str:
    ext = ";".join(f"{k}={v}" for k, v in certificate.extensions)
    return (
        f'<wsse:BinarySecurityToken subject="{certificate.subject}" '
        f'issuer="{certificate.issuer}" serial="{certificate.serial}" '
        f'keyId="{certificate.public_key.key_id}" '
        f'notBefore="{certificate.not_before}" notAfter="{certificate.not_after}" '
        f'certSig="{certificate.signature}" extensions="{ext}"/>'
    )


def _parse_cert_token(header_xml: str) -> Certificate:
    match = re.search(
        r'<wsse:BinarySecurityToken subject="([^"]*)" issuer="([^"]*)" '
        r'serial="([^"]*)" keyId="([^"]*)" notBefore="([^"]*)" '
        r'notAfter="([^"]*)" certSig="([^"]*)" extensions="([^"]*)"/>',
        header_xml,
    )
    if match is None:
        raise WsSecurityError("security header lacks a BinarySecurityToken")
    extensions: tuple[tuple[str, str], ...] = ()
    if match.group(8):
        extensions = tuple(
            tuple(pair.split("=", 1))  # type: ignore[misc]
            for pair in match.group(8).split(";")
            if "=" in pair
        )
    return Certificate(
        subject=match.group(1),
        issuer=match.group(2),
        serial=int(match.group(3)),
        public_key=PublicKey(match.group(4)),
        not_before=float(match.group(5)),
        not_after=float(match.group(6)),
        signature=match.group(7),
        extensions=extensions,
    )


def secure_envelope(
    envelope: SoapEnvelope,
    keypair: KeyPair,
    certificate: Certificate,
    keystore: KeyStore,
    encrypt_to: Optional[PublicKey] = None,
) -> SoapEnvelope:
    """Return a copy of ``envelope`` with WS-Security protection applied."""
    if certificate.public_key.key_id != keypair.public.key_id:
        raise ValueError("certificate does not match signing key")
    content = _bound_content(envelope.action, envelope.body_xml)
    digest = hashlib.sha256(content).hexdigest()
    signature_value = keypair.sign(digest.encode("ascii"))
    security_content = (
        _cert_token_xml(certificate)
        + f'<ds:Signature xmlns:ds="http://www.w3.org/2000/09/xmldsig#">'
        f"<ds:SignedInfo><ds:Reference URI=\"#body\">"
        f"<ds:DigestValue>{digest}</ds:DigestValue></ds:Reference>"
        f"</ds:SignedInfo>"
        f"<ds:SignatureValue>{signature_value}</ds:SignatureValue>"
        f"</ds:Signature>"
    )
    body_xml = envelope.body_xml
    if encrypt_to is not None:
        ciphertext = keystore.encrypt_to(
            encrypt_to, envelope.body_xml.encode("utf-8")
        )
        body_b64 = base64.b64encode(ciphertext.body).decode("ascii")
        nonce_b64 = base64.b64encode(ciphertext.nonce).decode("ascii")
        body_xml = (
            f'<xenc:EncryptedData xmlns:xenc="http://www.w3.org/2001/04/xmlenc#">'
            f'<ds:KeyInfo xmlns:ds="http://www.w3.org/2000/09/xmldsig#">'
            f"<ds:KeyName>{encrypt_to.key_id}</ds:KeyName></ds:KeyInfo>"
            f'<xenc:CipherData><xenc:CipherValue nonce="{nonce_b64}">'
            f"{body_b64}</xenc:CipherValue></xenc:CipherData>"
            f"</xenc:EncryptedData>"
        )
        security_content += "<wsse:EncryptedBody/>"
    protected = SoapEnvelope(
        action=envelope.action,
        body_xml=body_xml,
        headers=list(envelope.headers),
    )
    protected.add_header(SECURITY_HEADER, security_content, must_understand=True)
    return protected


def verify_envelope(
    envelope: SoapEnvelope,
    keystore: KeyStore,
    validator: Optional[TrustValidator] = None,
    decrypt_with: Optional[KeyPair] = None,
    config: SecurityConfig = SecurityConfig(),
    at: float = 0.0,
) -> SoapEnvelope:
    """Validate inbound protection and return the cleartext envelope.

    Raises:
        WsSecurityError: missing/invalid signature or encryption, failed
            decryption, or an untrusted signer certificate.
    """
    header = envelope.header(SECURITY_HEADER)
    if header is None:
        if config.require_signature or config.require_encryption:
            raise WsSecurityError(
                f"unprotected message for action {envelope.action!r} rejected"
            )
        return envelope
    header_xml = header.content_xml
    is_encrypted = "<wsse:EncryptedBody/>" in header_xml
    if config.require_encryption and not is_encrypted:
        raise WsSecurityError(
            f"cleartext message for action {envelope.action!r} rejected"
        )
    body_xml = envelope.body_xml
    if is_encrypted:
        if decrypt_with is None:
            raise WsSecurityError("encrypted message but no decryption key")
        body_xml = _decrypt_body(envelope.body_xml, decrypt_with)
    signer_subject: Optional[str] = None
    if config.require_signature:
        certificate = _parse_cert_token(header_xml)
        sig_match = re.search(
            r"<ds:DigestValue>([0-9a-f]+)</ds:DigestValue>.*?"
            r"<ds:SignatureValue>([0-9a-f]+)</ds:SignatureValue>",
            header_xml,
            re.DOTALL,
        )
        if sig_match is None:
            raise WsSecurityError("security header lacks a signature block")
        claimed_digest, signature_value = sig_match.group(1), sig_match.group(2)
        actual_digest = hashlib.sha256(
            _bound_content(envelope.action, body_xml)
        ).hexdigest()
        if actual_digest != claimed_digest:
            raise WsSecurityError(
                f"digest mismatch on action {envelope.action!r}: "
                "body modified in transit"
            )
        if not keystore.verify(
            certificate.public_key, claimed_digest.encode("ascii"), signature_value
        ):
            raise WsSecurityError(
                f"invalid signature from {certificate.subject!r}"
            )
        if validator is not None:
            try:
                validator.validate(certificate, at=at)
            except CertificateError as exc:
                raise WsSecurityError(
                    f"untrusted signer {certificate.subject!r}: {exc}"
                ) from exc
        signer_subject = certificate.subject
    clear = SoapEnvelope(
        action=envelope.action,
        body_xml=body_xml,
        headers=[b for b in envelope.headers if b.name != SECURITY_HEADER],
    )
    clear._signer_subject = signer_subject  # type: ignore[attr-defined]
    return clear


def signer_of(envelope: SoapEnvelope) -> Optional[str]:
    """Subject name of the verified signer, set by :func:`verify_envelope`."""
    return getattr(envelope, "_signer_subject", None)


def _decrypt_body(body_xml: str, keypair: KeyPair) -> str:
    key_match = re.search(r"<ds:KeyName>([^<]*)</ds:KeyName>", body_xml)
    value_match = re.search(
        r'<xenc:CipherValue nonce="([^"]*)">([^<]*)</xenc:CipherValue>', body_xml
    )
    if key_match is None or value_match is None:
        raise WsSecurityError("body is not valid xenc:EncryptedData")
    encrypted = EncryptedDocument(
        ciphertext=Ciphertext(
            recipient=key_match.group(1),
            nonce=base64.b64decode(value_match.group(1)),
            body=base64.b64decode(value_match.group(2)),
        ),
        recipient_hint=key_match.group(1)[:16],
    )
    try:
        return decrypt_document(encrypted, keypair)
    except Exception as exc:
        raise WsSecurityError(f"decryption failed: {exc}") from exc
