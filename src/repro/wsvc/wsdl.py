"""WSDL-lite: machine-readable service descriptions.

The paper stresses that "interfaces of those components should be
standardised ... and other components of the access control system must be
able to invoke them".  A :class:`ServiceDescription` is the minimal
analogue: named operations with input/output message kinds, bound to a
network address.  The registry (:mod:`repro.wsvc.registry`) indexes these
for discovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Operation:
    """One WSDL operation: name plus input/output message kinds."""

    name: str
    input_kind: str
    output_kind: str
    documentation: str = ""


@dataclass(frozen=True)
class ServiceDescription:
    """A service's public contract.

    Attributes:
        name: unique service name, e.g. ``"engineering-pdp"``.
        service_type: role tag used for discovery, e.g. ``"pdp"``,
            ``"pap"``, ``"capability-service"``, ``"business"``.
        address: network address of the endpoint (simnet node address).
        operations: the callable operations.
        domain: owning administrative domain, for scoped discovery.
    """

    name: str
    service_type: str
    address: str
    operations: tuple[Operation, ...] = ()
    domain: str = ""

    def operation(self, name: str) -> Optional[Operation]:
        for op in self.operations:
            if op.name == name:
                return op
        return None

    def supports(self, operation_name: str) -> bool:
        return self.operation(operation_name) is not None

    def to_xml(self) -> str:
        ops = "".join(
            f'<operation name="{op.name}" input="{op.input_kind}" '
            f'output="{op.output_kind}"/>'
            for op in self.operations
        )
        return (
            f'<definitions name="{self.name}" type="{self.service_type}" '
            f'domain="{self.domain}"><service address="{self.address}">'
            f"{ops}</service></definitions>"
        )

    @property
    def wire_size(self) -> int:
        return len(self.to_xml().encode("utf-8"))


def pdp_description(name: str, address: str, domain: str = "") -> ServiceDescription:
    """Canonical description of a Policy Decision Point endpoint."""
    return ServiceDescription(
        name=name,
        service_type="pdp",
        address=address,
        domain=domain,
        operations=(
            Operation(
                name="evaluate",
                input_kind="xacml.request",
                output_kind="xacml.response",
                documentation="Evaluate an XACML request context",
            ),
        ),
    )


def pap_description(name: str, address: str, domain: str = "") -> ServiceDescription:
    return ServiceDescription(
        name=name,
        service_type="pap",
        address=address,
        domain=domain,
        operations=(
            Operation("retrieve", "pap.query", "pap.policies"),
            Operation("publish", "pap.policy", "pap.ack"),
        ),
    )


def capability_service_description(
    name: str, address: str, domain: str = ""
) -> ServiceDescription:
    return ServiceDescription(
        name=name,
        service_type="capability-service",
        address=address,
        domain=domain,
        operations=(
            Operation("request-capability", "cap.request", "cap.response"),
        ),
    )
