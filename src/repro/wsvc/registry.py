"""Service registry: UDDI-style discovery of authorisation components.

Section 3.2 of the paper argues that static PEP→PDP bindings "do not fit
into large computing environments spanning multiple separate
administrative domains ... a discovery mechanism needs to be employed."
The registry is that mechanism; experiment E10 compares static binding
against registry lookups under PDP churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .wsdl import ServiceDescription


class RegistryError(Exception):
    """Raised on registration conflicts or failed lookups."""


@dataclass
class RegistryEntry:
    description: ServiceDescription
    registered_at: float
    healthy: bool = True


class ServiceRegistry:
    """An in-memory service registry with liveness hints.

    The registry itself is a passive directory: *liveness* is reported by
    registrants (or by a health-prober in :mod:`repro.core.discovery`),
    mirroring how UDDI deployments pair with heartbeat monitors.
    """

    def __init__(self) -> None:
        self._entries: dict[str, RegistryEntry] = {}
        self.lookups = 0

    def register(self, description: ServiceDescription, at: float = 0.0) -> None:
        if description.name in self._entries:
            raise RegistryError(f"service {description.name!r} already registered")
        self._entries[description.name] = RegistryEntry(
            description=description, registered_at=at
        )

    def deregister(self, name: str) -> None:
        self._entries.pop(name, None)

    def mark_health(self, name: str, healthy: bool) -> None:
        entry = self._entries.get(name)
        if entry is not None:
            entry.healthy = healthy

    def lookup(self, name: str) -> ServiceDescription:
        self.lookups += 1
        entry = self._entries.get(name)
        if entry is None:
            raise RegistryError(f"no service named {name!r}")
        return entry.description

    def find(
        self,
        service_type: Optional[str] = None,
        domain: Optional[str] = None,
        healthy_only: bool = True,
        predicate: Optional[Callable[[ServiceDescription], bool]] = None,
    ) -> list[ServiceDescription]:
        """All registered services matching the given filters."""
        self.lookups += 1
        out = []
        for entry in self._entries.values():
            if healthy_only and not entry.healthy:
                continue
            desc = entry.description
            if service_type is not None and desc.service_type != service_type:
                continue
            if domain is not None and desc.domain != domain:
                continue
            if predicate is not None and not predicate(desc):
                continue
            out.append(desc)
        return out

    def find_one(
        self, service_type: str, domain: Optional[str] = None
    ) -> Optional[ServiceDescription]:
        matches = self.find(service_type=service_type, domain=domain)
        return matches[0] if matches else None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries
