"""RESTful resource exposure.

The paper contrasts SOAP services (one URI, many operations — access
control needs message inspection) with RESTful services, where "Web
Services are accessed using different URIs and it is much easier to
control access to them" (Section 3.1).  This module provides the REST
side of that comparison: URI-addressed resources, method-based actions
and a router that maps an HTTP-style request to the canonical
{subject, resource, action} triple a PEP understands.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Optional

SAFE_METHODS = frozenset({"GET", "HEAD", "OPTIONS"})


@dataclass(frozen=True)
class HttpRequest:
    """Minimal HTTP request model used by the REST router."""

    method: str
    uri: str
    subject_id: str = ""
    body: str = ""
    headers: tuple[tuple[str, str], ...] = ()

    @property
    def wire_size(self) -> int:
        header_bytes = sum(len(k) + len(v) + 4 for k, v in self.headers)
        return len(self.method) + len(self.uri) + len(self.body) + header_bytes + 26


@dataclass(frozen=True)
class HttpResponse:
    status: int
    body: str = ""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


#: Maps HTTP verbs to the action vocabulary the policies use.
METHOD_TO_ACTION = {
    "GET": "read",
    "HEAD": "read",
    "OPTIONS": "read",
    "PUT": "write",
    "POST": "write",
    "PATCH": "write",
    "DELETE": "delete",
}


@dataclass
class RestResource:
    """One addressable resource: a URI template plus allowed methods.

    URI templates use ``{name}`` placeholders, e.g.
    ``/records/{patient}/labs``; matching extracts the parameters.
    """

    uri_template: str
    resource_id: str
    allowed_methods: frozenset[str] = frozenset(METHOD_TO_ACTION)
    handler: Optional[Callable[[HttpRequest], str]] = None

    def __post_init__(self) -> None:
        pattern = re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", self.uri_template)
        self._regex = re.compile(f"^{pattern}$")

    def match(self, uri: str) -> Optional[dict[str, str]]:
        found = self._regex.match(uri)
        if found is None:
            return None
        return found.groupdict()


@dataclass(frozen=True)
class RouteDecision:
    """What the router derived from a request, ready for a PEP."""

    resource_id: str
    action_id: str
    parameters: dict[str, str]
    resource: RestResource


class RestRouter:
    """Routes HTTP requests to resources and access-control triples."""

    def __init__(self) -> None:
        self._resources: list[RestResource] = []

    def add(self, resource: RestResource) -> None:
        self._resources.append(resource)

    def route(self, request: HttpRequest) -> Optional[RouteDecision]:
        """First matching resource wins; None means 404."""
        for resource in self._resources:
            params = resource.match(request.uri)
            if params is None:
                continue
            if request.method not in resource.allowed_methods:
                return None
            action = METHOD_TO_ACTION.get(request.method)
            if action is None:
                return None
            return RouteDecision(
                resource_id=resource.resource_id.format(**params)
                if "{" in resource.resource_id
                else resource.resource_id,
                action_id=action,
                parameters=params,
                resource=resource,
            )
        return None

    def __len__(self) -> int:
        return len(self._resources)
