"""Discretionary Access Control: owner-managed ACLs, compiled to XACML.

"In discretionary access control (DAC) policies control access based on
the identity of the subject and on access control rules that define
allowed operations on objects" (paper §2.2).  Owners grant and revoke at
their discretion; a grant may carry the *grant option*, letting the
grantee grant further — the micro-scale version of the cross-domain
delegation problem Section 3.2 discusses (revocation here is cascading,
matching the paper's observation that tracking delegated rights is hard).

Negative entries (explicit deny) are supported and override positives,
mirroring the paper's positive/negative authorisations discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..xacml import combining
from ..xacml.policy import Policy
from ..xacml.rules import deny_rule, permit_rule
from ..xacml.targets import subject_resource_action_target


class DacError(Exception):
    """Raised on unauthorised grant/revoke operations."""


@dataclass(frozen=True)
class AclEntry:
    """One ACL entry: subject may (or may not) perform action."""

    subject_id: str
    action_id: str
    allow: bool = True
    granted_by: str = ""
    grant_option: bool = False


@dataclass
class ResourceAcl:
    """A resource with its owner and entries."""

    resource_id: str
    owner: str
    entries: list[AclEntry] = field(default_factory=list)


class DacModel:
    """Owner-managed ACLs with grant-option delegation."""

    def __init__(self, name: str = "dac") -> None:
        self.name = name
        self._acls: dict[str, ResourceAcl] = {}
        #: Optional unified revocation registry (duck-typed; see
        #: repro.revocation): bound, every removed entry — including the
        #: cascade — is recorded there for cross-domain coherence.
        self._revocation_registry = None

    def bind_revocation_registry(self, registry) -> None:
        self._revocation_registry = registry

    def register_resource(self, resource_id: str, owner: str) -> ResourceAcl:
        if resource_id in self._acls:
            raise DacError(f"resource {resource_id!r} already registered")
        acl = ResourceAcl(resource_id=resource_id, owner=owner)
        self._acls[resource_id] = acl
        return acl

    def acl(self, resource_id: str) -> ResourceAcl:
        try:
            return self._acls[resource_id]
        except KeyError:
            raise DacError(f"unknown resource {resource_id!r}") from None

    def resources(self) -> list[str]:
        return list(self._acls)

    # -- who may administer an entry -----------------------------------------------

    def _may_grant(self, grantor: str, resource_id: str, action_id: str) -> bool:
        acl = self.acl(resource_id)
        if grantor == acl.owner:
            return True
        return any(
            entry.subject_id == grantor
            and entry.action_id == action_id
            and entry.allow
            and entry.grant_option
            for entry in acl.entries
        )

    def grant(
        self,
        grantor: str,
        resource_id: str,
        subject_id: str,
        action_id: str,
        grant_option: bool = False,
    ) -> AclEntry:
        """Grant ``subject_id`` the right to ``action_id`` the resource."""
        if not self._may_grant(grantor, resource_id, action_id):
            raise DacError(
                f"{grantor!r} may not grant {action_id!r} on {resource_id!r}"
            )
        entry = AclEntry(
            subject_id=subject_id,
            action_id=action_id,
            allow=True,
            granted_by=grantor,
            grant_option=grant_option,
        )
        self.acl(resource_id).entries.append(entry)
        return entry

    def deny(
        self, grantor: str, resource_id: str, subject_id: str, action_id: str
    ) -> AclEntry:
        """Attach a negative authorisation (owner only)."""
        acl = self.acl(resource_id)
        if grantor != acl.owner:
            raise DacError(f"only the owner may add negative entries")
        entry = AclEntry(
            subject_id=subject_id,
            action_id=action_id,
            allow=False,
            granted_by=grantor,
        )
        acl.entries.append(entry)
        return entry

    def revoke(
        self,
        revoker: str,
        resource_id: str,
        subject_id: str,
        action_id: str,
        cascade: bool = True,
    ) -> int:
        """Remove grants; cascading revocation also removes regrants.

        Returns the number of entries removed.  Only the owner or the
        original grantor may revoke an entry.
        """
        acl = self.acl(resource_id)
        removed = 0
        victims = [
            entry
            for entry in acl.entries
            if entry.subject_id == subject_id
            and entry.action_id == action_id
            and (revoker == acl.owner or entry.granted_by == revoker)
        ]
        if not victims:
            return 0
        for victim in victims:
            acl.entries.remove(victim)
            removed += 1
        # Only the removal of *positive* entries is a revocation; removing
        # a negative (deny) entry restores access and must not be recorded
        # as a permanent entitlement revocation.
        if self._revocation_registry is not None and any(
            victim.allow for victim in victims
        ):
            self._revocation_registry.revoke_entitlement(
                self.name,
                subject_id,
                resource_id,
                action_id,
                reason=f"revoked by {revoker}",
            )
        if cascade:
            # Entries granted by the revoked subject fall with it unless the
            # grantee still holds the right from another live grantor.
            downstream = [
                entry
                for entry in acl.entries
                if entry.granted_by == subject_id and entry.action_id == action_id
            ]
            for entry in downstream:
                if not self._still_authorized(subject_id, resource_id, action_id):
                    removed += self.revoke(
                        acl.owner,
                        resource_id,
                        entry.subject_id,
                        action_id,
                        cascade=True,
                    )
        return removed

    def _still_authorized(
        self, subject_id: str, resource_id: str, action_id: str
    ) -> bool:
        acl = self.acl(resource_id)
        if subject_id == acl.owner:
            return True
        return any(
            entry.subject_id == subject_id
            and entry.action_id == action_id
            and entry.allow
            for entry in acl.entries
        )

    # -- the reference monitor ----------------------------------------------------------

    def check_access(
        self, subject_id: str, resource_id: str, action_id: str
    ) -> bool:
        acl = self._acls.get(resource_id)
        if acl is None:
            return False
        if any(
            entry.subject_id == subject_id
            and entry.action_id == action_id
            and not entry.allow
            for entry in acl.entries
        ):
            return False  # negative authorisation overrides
        if subject_id == acl.owner:
            return True
        return any(
            entry.subject_id == subject_id
            and entry.action_id == action_id
            and entry.allow
            for entry in acl.entries
        )

    # -- XACML compilation -----------------------------------------------------------------

    def compile_resource_policy(self, resource_id: str) -> Policy:
        """A deny-overrides policy mirroring the resource's ACL."""
        acl = self.acl(resource_id)
        rules = []
        for index, entry in enumerate(acl.entries):
            target = subject_resource_action_target(
                subject_id=entry.subject_id,
                action_id=entry.action_id,
            )
            builder = permit_rule if entry.allow else deny_rule
            rules.append(
                builder(
                    rule_id=f"acl-{index}-{'allow' if entry.allow else 'deny'}",
                    target=target,
                    description=f"granted by {entry.granted_by or 'owner'}",
                )
            )
        # The owner always has access (unless explicitly denied above —
        # deny-overrides makes that ordering irrelevant).
        rules.append(
            permit_rule(
                rule_id="owner-access",
                target=subject_resource_action_target(subject_id=acl.owner),
            )
        )
        return Policy(
            policy_id=f"dac:{self.name}:{resource_id}",
            rules=tuple(rules),
            rule_combining=combining.RULE_DENY_OVERRIDES,
            target=subject_resource_action_target(resource_id=resource_id),
            description=f"DAC ACL for {resource_id!r} owned by {acl.owner!r}",
        )

    def compile_policies(self) -> list[Policy]:
        return [
            self.compile_resource_policy(resource_id)
            for resource_id in sorted(self._acls)
        ]
