"""Chinese Wall (Brewer–Nash): history-based conflict-of-interest control.

The paper invokes Brewer–Nash for VO-wide meta-policies: "When a certain
collaborating party decides to access resources from one domain then this
party is prevented from accessing any resources from a different domain
within this computing environment" (Section 3.1, policy conflict
resolution via meta-policies).

Chinese Wall is inherently *stateful* — permissibility depends on the
subject's access history — which is exactly why the paper classes it as
an application-specific constraint that static policy analysis cannot
catch (experiment E8 demonstrates this: the static analyser finds zero
modality conflicts in a wall policy, yet runtime vetoes fire).

The engine also plugs into a PEP as an obligation handler: a policy can
permit with an ``urn:repro:obligation:chinese-wall`` obligation, and the
handler consults/updates the wall before access proceeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..xacml.context import Obligation, RequestContext


class ChineseWallError(Exception):
    """Raised for unregistered datasets."""


#: Obligation id a policy uses to route decisions through the wall.
WALL_OBLIGATION_ID = "urn:repro:obligation:chinese-wall"


@dataclass(frozen=True)
class Dataset:
    """A company dataset within a conflict-of-interest class."""

    dataset_id: str
    conflict_class: str


@dataclass
class AccessRecord:
    subject_id: str
    dataset_id: str
    at: float


class ChineseWallEngine:
    """Tracks access history and answers wall queries.

    Sanitised datasets (``conflict_class == SANITISED``) are outside all
    walls, as in the original Brewer–Nash paper.
    """

    SANITISED = "sanitised"

    def __init__(self, name: str = "wall") -> None:
        self.name = name
        self._datasets: dict[str, Dataset] = {}
        #: subject -> conflict class -> dataset chosen
        self._commitments: dict[str, dict[str, str]] = {}
        self.history: list[AccessRecord] = []
        self.vetoes = 0

    def register_dataset(self, dataset_id: str, conflict_class: str) -> Dataset:
        dataset = Dataset(dataset_id=dataset_id, conflict_class=conflict_class)
        self._datasets[dataset_id] = dataset
        return dataset

    def dataset(self, dataset_id: str) -> Dataset:
        try:
            return self._datasets[dataset_id]
        except KeyError:
            raise ChineseWallError(f"unknown dataset {dataset_id!r}") from None

    def permitted(self, subject_id: str, dataset_id: str) -> bool:
        """May the subject access this dataset, given its history?"""
        dataset = self.dataset(dataset_id)
        if dataset.conflict_class == self.SANITISED:
            return True
        committed = self._commitments.get(subject_id, {}).get(
            dataset.conflict_class
        )
        return committed is None or committed == dataset_id

    def record_access(self, subject_id: str, dataset_id: str, at: float) -> None:
        """Record a granted access, committing the subject inside the wall."""
        dataset = self.dataset(dataset_id)
        if dataset.conflict_class != self.SANITISED:
            self._commitments.setdefault(subject_id, {})[
                dataset.conflict_class
            ] = dataset_id
        self.history.append(
            AccessRecord(subject_id=subject_id, dataset_id=dataset_id, at=at)
        )

    def check_and_record(self, subject_id: str, dataset_id: str, at: float) -> bool:
        """Atomic permitted-then-record, the PEP-facing operation."""
        if not self.permitted(subject_id, dataset_id):
            self.vetoes += 1
            return False
        self.record_access(subject_id, dataset_id, at)
        return True

    def commitments_of(self, subject_id: str) -> dict[str, str]:
        return dict(self._commitments.get(subject_id, {}))

    def reset_subject(self, subject_id: str) -> None:
        """Forget a subject's history (end of engagement)."""
        self._commitments.pop(subject_id, None)

    # -- PEP integration -----------------------------------------------------------------

    def obligation_handler(self, clock) -> "WallObligationHandler":
        """Build a handler suitable for PEP obligation registration."""
        return WallObligationHandler(engine=self, clock=clock)


@dataclass
class WallObligationHandler:
    """Callable obligation handler enforcing the wall at a PEP.

    The obligation's ``dataset`` assignment names the dataset; absent
    that, the request's resource-id is used.
    """

    engine: ChineseWallEngine
    clock: object  # callable -> float

    def __call__(self, obligation: Obligation, request: RequestContext) -> bool:
        value = obligation.assignment("dataset")
        dataset_id = (
            str(value.value) if value is not None else (request.resource_id or "")
        )
        subject_id = request.subject_id or ""
        if not dataset_id or not subject_id:
            return False
        return self.engine.check_and_record(
            subject_id, dataset_id, at=self.clock()  # type: ignore[operator]
        )
