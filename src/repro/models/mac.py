"""Mandatory Access Control: a Bell-LaPadula lattice, compiled to XACML.

"Mandatory access control (MAC) policies control access based on
centrally mandated sensitivity levels (classifications) of protected
resources and authorisation levels of subjects (clearances)" (paper
§2.2).  Labels form the classic lattice: a totally ordered sensitivity
level plus a set of need-to-know categories; *dominance* is level-≥ plus
category-superset.

Enforcement follows Bell-LaPadula:

* **no read up** (simple security): read requires subject ⊒ object;
* **no write down** (★-property): write requires object ⊒ subject.

Compilation maps levels to integer attributes and categories to string
bags, using XACML's comparison and ``subset`` functions — MAC rides the
standard engine with no special-casing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..components.pip import AttributeStore
from ..xacml import combining
from ..xacml.attributes import (
    Category,
    DataType,
    RESOURCE_CLASSIFICATION,
    SUBJECT_CLEARANCE,
    integer,
    string,
)
from ..xacml.expressions import Condition, apply_, designator
from ..xacml.policy import Policy
from ..xacml.rules import deny_rule, permit_rule
from ..xacml.targets import match_equal, target_of
from ..xacml.functions import FUNCTION_PREFIX_1_0

#: Attribute ids for the category (compartment) halves of labels.
SUBJECT_CATEGORIES = "urn:repro:subject:categories"
RESOURCE_CATEGORIES = "urn:repro:resource:categories"

#: Conventional level names, lowest to highest.
LEVELS = ("public", "internal", "confidential", "secret", "top-secret")


class MacError(Exception):
    """Raised for unknown levels or unlabelled entities."""


@dataclass(frozen=True)
class Label:
    """A security label: sensitivity level plus category set."""

    level: int
    categories: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not 0 <= self.level < len(LEVELS):
            raise MacError(
                f"level must be in [0, {len(LEVELS) - 1}], got {self.level}"
            )

    @classmethod
    def named(cls, level_name: str, categories: Iterable[str] = ()) -> "Label":
        try:
            level = LEVELS.index(level_name)
        except ValueError:
            raise MacError(
                f"unknown level {level_name!r}; choose from {LEVELS}"
            ) from None
        return cls(level=level, categories=frozenset(categories))

    def dominates(self, other: "Label") -> bool:
        """Lattice order: self ⊒ other."""
        return self.level >= other.level and self.categories >= other.categories

    @property
    def level_name(self) -> str:
        return LEVELS[self.level]

    def __str__(self) -> str:
        cats = ",".join(sorted(self.categories))
        return f"{self.level_name}[{cats}]"


class MacModel:
    """Clearances, classifications and the BLP reference monitor."""

    def __init__(self, name: str = "mac") -> None:
        self.name = name
        self._clearances: dict[str, Label] = {}
        self._classifications: dict[str, Label] = {}

    def clear_subject(self, subject_id: str, label: Label) -> None:
        self._clearances[subject_id] = label

    def classify_resource(self, resource_id: str, label: Label) -> None:
        self._classifications[resource_id] = label

    def clearance(self, subject_id: str) -> Label:
        try:
            return self._clearances[subject_id]
        except KeyError:
            raise MacError(f"subject {subject_id!r} has no clearance") from None

    def classification(self, resource_id: str) -> Label:
        try:
            return self._classifications[resource_id]
        except KeyError:
            raise MacError(f"resource {resource_id!r} is unclassified") from None

    # -- the reference monitor (oracle for tests) ---------------------------------

    def may_read(self, subject_id: str, resource_id: str) -> bool:
        """Simple security property: no read up."""
        return self.clearance(subject_id).dominates(
            self.classification(resource_id)
        )

    def may_write(self, subject_id: str, resource_id: str) -> bool:
        """★-property: no write down."""
        return self.classification(resource_id).dominates(
            self.clearance(subject_id)
        )

    def check_access(
        self, subject_id: str, resource_id: str, action_id: str
    ) -> bool:
        if subject_id not in self._clearances:
            return False
        if resource_id not in self._classifications:
            return False
        if action_id == "read":
            return self.may_read(subject_id, resource_id)
        if action_id == "write":
            return self.may_write(subject_id, resource_id)
        return False

    # -- XACML compilation ------------------------------------------------------------

    def compile_policy(self) -> Policy:
        """One policy implementing BLP generically over label attributes.

        Uses designators only — no per-subject or per-resource rules — so
        the policy size is O(1) in the number of entities, the property
        that lets MAC scale (experiment E14's attribute-vs-identity
        contrast).
        """
        ge = f"{FUNCTION_PREFIX_1_0}integer-greater-than-or-equal"
        one_int = f"{FUNCTION_PREFIX_1_0}integer-one-and-only"
        subset = f"{FUNCTION_PREFIX_1_0}string-subset"
        land = f"{FUNCTION_PREFIX_1_0}and"

        subject_level = apply_(
            one_int,
            designator(Category.SUBJECT, SUBJECT_CLEARANCE, DataType.INTEGER, True),
        )
        resource_level = apply_(
            one_int,
            designator(
                Category.RESOURCE, RESOURCE_CLASSIFICATION, DataType.INTEGER, True
            ),
        )
        subject_cats = designator(
            Category.SUBJECT, SUBJECT_CATEGORIES, DataType.STRING
        )
        resource_cats = designator(
            Category.RESOURCE, RESOURCE_CATEGORIES, DataType.STRING
        )

        read_condition = Condition(
            apply_(
                land,
                apply_(ge, subject_level, resource_level),
                apply_(subset, resource_cats, subject_cats),
            )
        )
        write_condition = Condition(
            apply_(
                land,
                apply_(ge, resource_level, subject_level),
                apply_(subset, subject_cats, resource_cats),
            )
        )
        from ..xacml.attributes import ACTION_ID

        read_rule = permit_rule(
            rule_id="blp-no-read-up",
            target=target_of(match_equal(Category.ACTION, ACTION_ID, string("read"))),
            condition=read_condition,
            description="Permit read when subject label dominates object label",
        )
        write_rule = permit_rule(
            rule_id="blp-no-write-down",
            target=target_of(
                match_equal(Category.ACTION, ACTION_ID, string("write"))
            ),
            condition=write_condition,
            description="Permit write when object label dominates subject label",
        )
        return Policy(
            policy_id=f"mac:{self.name}:blp",
            rules=(read_rule, write_rule, deny_rule("blp-default-deny")),
            rule_combining=combining.RULE_FIRST_APPLICABLE,
            description="Bell-LaPadula lattice policy",
        )

    def populate_pip(self, store: AttributeStore) -> None:
        """Write labels into a PIP store for attribute-based evaluation."""
        for subject_id, label in self._clearances.items():
            store.set_subject_attribute(
                subject_id, SUBJECT_CLEARANCE, [integer(label.level)]
            )
            store.set_subject_attribute(
                subject_id,
                SUBJECT_CATEGORIES,
                [string(c) for c in sorted(label.categories)],
            )
        for resource_id, label in self._classifications.items():
            store.set_resource_attribute(
                resource_id, RESOURCE_CLASSIFICATION, [integer(label.level)]
            )
            store.set_resource_attribute(
                resource_id,
                RESOURCE_CATEGORIES,
                [string(c) for c in sorted(label.categories)],
            )
