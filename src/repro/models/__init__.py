"""Access control models (paper §2.2), all compiling to XACML.

DAC, MAC, RBAC (core/hierarchical/constrained), ABAC and the Brewer–Nash
Chinese Wall.  Each model keeps its own reference monitor (the oracle the
property tests compare against) and a ``compile_*`` path producing
ordinary XACML policies, so every model ultimately runs on the same
PDP engine.
"""

from .abac import AbacError, AbacPolicyBuilder, AbacRuleBuilder
from .chinese_wall import (
    AccessRecord,
    ChineseWallEngine,
    ChineseWallError,
    Dataset,
    WALL_OBLIGATION_ID,
    WallObligationHandler,
)
from .dac import AclEntry, DacError, DacModel, ResourceAcl
from .mac import (
    LEVELS,
    Label,
    MacError,
    MacModel,
    RESOURCE_CATEGORIES,
    SUBJECT_CATEGORIES,
)
from .rbac import (
    DsdConstraint,
    Permission,
    RbacError,
    RbacModel,
    RbacSession,
    SsdConstraint,
)

__all__ = [
    "AbacError",
    "AbacPolicyBuilder",
    "AbacRuleBuilder",
    "AccessRecord",
    "AclEntry",
    "ChineseWallEngine",
    "ChineseWallError",
    "DacError",
    "DacModel",
    "Dataset",
    "DsdConstraint",
    "LEVELS",
    "Label",
    "MacError",
    "MacModel",
    "Permission",
    "RESOURCE_CATEGORIES",
    "RbacError",
    "RbacModel",
    "RbacSession",
    "ResourceAcl",
    "SUBJECT_CATEGORIES",
    "SsdConstraint",
    "WALL_OBLIGATION_ID",
    "WallObligationHandler",
]
