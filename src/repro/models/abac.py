"""Attribute-Based Access Control: rule builder over attribute predicates.

The paper argues (Section 2.1) that in dynamic environments "access
relationships may not involve an explicitly named set of individuals but
may be defined implicitly by authorisation policies ... for participants
with certain capabilities or levels of trust rather than for those that
have specific identity credentials".  ABAC is that style; this module
gives it a compact Python front-end that compiles to ordinary XACML
policies.

Example:
    >>> rule = (AbacRuleBuilder("allow-local-researchers")
    ...         .permit()
    ...         .when_subject("urn:oasis:names:tc:xacml:2.0:subject:role",
    ...                       "researcher")
    ...         .when_action("read")
    ...         .build())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..xacml import combining
from ..xacml.attributes import (
    ACTION_ID,
    Category,
    DataType,
    ENVIRONMENT_TIME,
    string,
)
from ..xacml.expressions import (
    Condition,
    Expression,
    apply_,
    designator,
    literal,
)
from ..xacml.functions import FUNCTION_PREFIX_1_0, FUNCTION_PREFIX_2_0
from ..xacml.policy import Policy
from ..xacml.rules import Rule, deny_rule
from ..xacml.targets import Target, match_equal, target_of
from ..xacml.context import Decision


class AbacError(Exception):
    """Raised when a builder is used inconsistently."""


class AbacRuleBuilder:
    """Fluent builder producing a single XACML rule from predicates."""

    def __init__(self, rule_id: str) -> None:
        self.rule_id = rule_id
        self._effect: Optional[Decision] = None
        self._conjuncts: list[Expression] = []
        self._target_matches = []
        self._description = ""

    def permit(self) -> "AbacRuleBuilder":
        self._effect = Decision.PERMIT
        return self

    def deny(self) -> "AbacRuleBuilder":
        self._effect = Decision.DENY
        return self

    def describe(self, text: str) -> "AbacRuleBuilder":
        self._description = text
        return self

    # -- predicates ---------------------------------------------------------------

    def _attribute_in(
        self, category: Category, attribute_id: str, values: Iterable[str]
    ) -> "AbacRuleBuilder":
        value_list = list(values)
        if not value_list:
            raise AbacError(f"{self.rule_id}: empty value set for {attribute_id}")
        bag = designator(category, attribute_id, DataType.STRING)
        disjuncts = [
            apply_(
                f"{FUNCTION_PREFIX_1_0}string-is-in",
                literal(string(value)),
                bag,
            )
            for value in value_list
        ]
        if len(disjuncts) == 1:
            self._conjuncts.append(disjuncts[0])
        else:
            self._conjuncts.append(
                apply_(f"{FUNCTION_PREFIX_1_0}or", *disjuncts)
            )
        return self

    def when_subject(
        self, attribute_id: str, *values: str
    ) -> "AbacRuleBuilder":
        return self._attribute_in(Category.SUBJECT, attribute_id, values)

    def when_resource(
        self, attribute_id: str, *values: str
    ) -> "AbacRuleBuilder":
        return self._attribute_in(Category.RESOURCE, attribute_id, values)

    def when_environment(
        self, attribute_id: str, *values: str
    ) -> "AbacRuleBuilder":
        return self._attribute_in(Category.ENVIRONMENT, attribute_id, values)

    def when_action(self, *actions: str) -> "AbacRuleBuilder":
        """Restrict to named actions (target match, indexable)."""
        for action in actions:
            self._target_matches.append(
                match_equal(Category.ACTION, ACTION_ID, string(action))
            )
        return self

    def when_time_between(self, start: float, end: float) -> "AbacRuleBuilder":
        """Environment time window (seconds since simulated midnight)."""
        from ..xacml.attributes import time_of_day

        self._conjuncts.append(
            apply_(
                f"{FUNCTION_PREFIX_2_0}time-in-range",
                apply_(
                    f"{FUNCTION_PREFIX_1_0}time-one-and-only",
                    designator(
                        Category.ENVIRONMENT,
                        ENVIRONMENT_TIME,
                        DataType.TIME,
                        must_be_present=True,
                    ),
                ),
                literal(time_of_day(start)),
                literal(time_of_day(end)),
            )
        )
        return self

    def when_integer_at_least(
        self, category: Category, attribute_id: str, minimum: int
    ) -> "AbacRuleBuilder":
        from ..xacml.attributes import integer

        self._conjuncts.append(
            apply_(
                f"{FUNCTION_PREFIX_1_0}integer-greater-than-or-equal",
                apply_(
                    f"{FUNCTION_PREFIX_1_0}integer-one-and-only",
                    designator(
                        category, attribute_id, DataType.INTEGER, must_be_present=True
                    ),
                ),
                literal(integer(minimum)),
            )
        )
        return self

    # -- build ------------------------------------------------------------------------

    def build(self) -> Rule:
        if self._effect is None:
            raise AbacError(f"{self.rule_id}: effect not set (permit()/deny())")
        condition: Optional[Condition] = None
        if self._conjuncts:
            expression = (
                self._conjuncts[0]
                if len(self._conjuncts) == 1
                else apply_(f"{FUNCTION_PREFIX_1_0}and", *self._conjuncts)
            )
            condition = Condition(expression)
        target = target_of(*self._target_matches) if self._target_matches else Target()
        return Rule(
            rule_id=self.rule_id,
            effect=self._effect,
            target=target,
            condition=condition,
            description=self._description,
        )


@dataclass
class AbacPolicyBuilder:
    """Collects ABAC rules into one XACML policy."""

    policy_id: str
    rule_combining: str = combining.RULE_FIRST_APPLICABLE
    description: str = ""
    _rules: list[Rule] = field(default_factory=list)
    _target: Target = field(default_factory=Target)

    def rule(self, rule: Rule) -> "AbacPolicyBuilder":
        self._rules.append(rule)
        return self

    def for_resource(self, resource_id: str) -> "AbacPolicyBuilder":
        from ..xacml.attributes import RESOURCE_ID

        self._target = target_of(
            match_equal(Category.RESOURCE, RESOURCE_ID, string(resource_id))
        )
        return self

    def default_deny(self) -> "AbacPolicyBuilder":
        self._rules.append(deny_rule(f"{self.policy_id}-default-deny"))
        return self

    def build(self) -> Policy:
        if not self._rules:
            raise AbacError(f"{self.policy_id}: no rules added")
        return Policy(
            policy_id=self.policy_id,
            rules=tuple(self._rules),
            rule_combining=self.rule_combining,
            target=self._target,
            description=self.description,
        )
