"""Role-Based Access Control (ANSI/Sandhu-style), compiled to XACML.

"RBAC merges the flexibility of explicit authorisations with additionally
imposed organisational constraints.  As such, RBAC is well suited for
distributed environments that need to address protection requirements for
a large base of subjects and objects" (paper §2.2).

The model implements:

* core RBAC: users, roles, permissions, user-role and permission-role
  assignment;
* hierarchical RBAC: role inheritance (seniors acquire junior
  permissions) with cycle detection;
* constrained RBAC: static separation of duty (SSD) checked at
  assignment time and dynamic separation of duty (DSD) checked at
  session-activation time — the paper's Section 3.1 names SoD as the
  canonical application-specific constraint that static policy analysis
  cannot catch;
* compilation to XACML: one policy per role (targeting the standard
  role attribute), so role-based decisions flow through the same
  PDP/PEP machinery as everything else;
* PIP population: users' *authorized role closure* is written to an
  attribute store so distributed PDPs resolve roles like any attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..components.pip import AttributeStore
from ..xacml import combining
from ..xacml.attributes import Category, SUBJECT_ROLE, string
from ..xacml.policy import Policy, PolicySet
from ..xacml.rules import deny_rule, permit_rule
from ..xacml.targets import (
    AllOf,
    AnyOf,
    Match,
    Target,
    subject_resource_action_target,
)


class RbacError(Exception):
    """Raised on constraint violations or malformed model operations."""


@dataclass(frozen=True)
class Permission:
    """An operation on an object."""

    resource_id: str
    action_id: str

    def __str__(self) -> str:
        return f"{self.action_id}:{self.resource_id}"


@dataclass(frozen=True)
class SsdConstraint:
    """Static SoD: no user may hold >= cardinality roles of ``role_set``."""

    name: str
    role_set: frozenset[str]
    cardinality: int = 2

    def violated_by(self, roles: set[str]) -> bool:
        return len(self.role_set & roles) >= self.cardinality


@dataclass(frozen=True)
class DsdConstraint:
    """Dynamic SoD: no session may *activate* >= cardinality of ``role_set``."""

    name: str
    role_set: frozenset[str]
    cardinality: int = 2

    def violated_by(self, active: set[str]) -> bool:
        return len(self.role_set & active) >= self.cardinality


class RbacModel:
    """Users, roles, hierarchy, permissions and SoD constraints."""

    def __init__(self, name: str = "rbac") -> None:
        self.name = name
        self._roles: set[str] = set()
        self._juniors: dict[str, set[str]] = {}  # role -> directly inherited roles
        self._user_roles: dict[str, set[str]] = {}
        self._role_permissions: dict[str, set[Permission]] = {}
        self._ssd: list[SsdConstraint] = []
        self._dsd: list[DsdConstraint] = []
        #: Optional unified revocation registry (duck-typed; see
        #: repro.revocation): bound, permission revocations are recorded
        #: there so coherence agents can invalidate affected caches.
        self._revocation_registry = None

    def bind_revocation_registry(self, registry) -> None:
        self._revocation_registry = registry

    # -- roles and hierarchy -------------------------------------------------------

    def add_role(self, role: str) -> None:
        self._roles.add(role)
        self._juniors.setdefault(role, set())
        self._role_permissions.setdefault(role, set())

    def roles(self) -> set[str]:
        return set(self._roles)

    def add_inheritance(self, senior: str, junior: str) -> None:
        """``senior`` inherits all of ``junior``'s permissions."""
        self._require_role(senior)
        self._require_role(junior)
        if senior == junior or senior in self._closure(junior):
            raise RbacError(
                f"inheritance {senior} -> {junior} would create a cycle"
            )
        self._juniors[senior].add(junior)
        # Inheritance can widen users' authorized role sets; re-check SSD
        # over the *closure*, which is the strong (ANSI) interpretation.
        for user, assigned in self._user_roles.items():
            authorized = self.authorized_roles(user)
            for constraint in self._ssd:
                if constraint.violated_by(authorized):
                    self._juniors[senior].discard(junior)
                    raise RbacError(
                        f"inheritance {senior} -> {junior} violates SSD "
                        f"{constraint.name!r} for user {user!r}"
                    )

    def _closure(self, role: str) -> set[str]:
        """The role plus everything it transitively inherits."""
        out = {role}
        frontier = [role]
        while frontier:
            current = frontier.pop()
            for junior in self._juniors.get(current, ()):
                if junior not in out:
                    out.add(junior)
                    frontier.append(junior)
        return out

    def _require_role(self, role: str) -> None:
        if role not in self._roles:
            raise RbacError(f"unknown role {role!r}")

    # -- assignments --------------------------------------------------------------------

    def assign_user(self, user: str, role: str) -> None:
        self._require_role(role)
        candidate = self._user_roles.get(user, set()) | {role}
        authorized = set()
        for assigned in candidate:
            authorized |= self._closure(assigned)
        for constraint in self._ssd:
            if constraint.violated_by(authorized):
                raise RbacError(
                    f"assigning {role!r} to {user!r} violates SSD "
                    f"{constraint.name!r}"
                )
        self._user_roles.setdefault(user, set()).add(role)

    def deassign_user(self, user: str, role: str) -> None:
        self._user_roles.get(user, set()).discard(role)

    def assigned_roles(self, user: str) -> set[str]:
        return set(self._user_roles.get(user, set()))

    def authorized_roles(self, user: str) -> set[str]:
        """Assigned roles plus everything inherited through the hierarchy."""
        out: set[str] = set()
        for role in self._user_roles.get(user, set()):
            out |= self._closure(role)
        return out

    def users(self) -> list[str]:
        return list(self._user_roles)

    # -- permissions --------------------------------------------------------------------

    def grant_permission(self, role: str, resource_id: str, action_id: str) -> None:
        self._require_role(role)
        self._role_permissions[role].add(Permission(resource_id, action_id))

    def revoke_permission(self, role: str, resource_id: str, action_id: str) -> None:
        permissions = self._role_permissions.get(role, set())
        present = Permission(resource_id, action_id) in permissions
        permissions.discard(Permission(resource_id, action_id))
        if present and self._revocation_registry is not None:
            self._revocation_registry.revoke_role_permission(
                self.name, role, resource_id, action_id
            )

    def role_permissions(self, role: str) -> set[Permission]:
        """Direct + inherited permissions of a role."""
        out: set[Permission] = set()
        for member in self._closure(role):
            out |= self._role_permissions.get(member, set())
        return out

    def user_permissions(self, user: str) -> set[Permission]:
        out: set[Permission] = set()
        for role in self.authorized_roles(user):
            out |= self._role_permissions.get(role, set())
        return out

    def check_access(self, user: str, resource_id: str, action_id: str) -> bool:
        """Reference-monitor check, used as the oracle in property tests."""
        return Permission(resource_id, action_id) in self.user_permissions(user)

    # -- constraints ----------------------------------------------------------------------

    def add_ssd(self, constraint: SsdConstraint) -> None:
        for role in constraint.role_set:
            self._require_role(role)
        for user in self._user_roles:
            if constraint.violated_by(self.authorized_roles(user)):
                raise RbacError(
                    f"existing assignment of {user!r} violates new SSD "
                    f"{constraint.name!r}"
                )
        self._ssd.append(constraint)

    def add_dsd(self, constraint: DsdConstraint) -> None:
        for role in constraint.role_set:
            self._require_role(role)
        self._dsd.append(constraint)

    @property
    def ssd_constraints(self) -> list[SsdConstraint]:
        return list(self._ssd)

    @property
    def dsd_constraints(self) -> list[DsdConstraint]:
        return list(self._dsd)

    # -- sessions (DSD) -----------------------------------------------------------------------

    def open_session(self, user: str) -> "RbacSession":
        return RbacSession(model=self, user=user)

    # -- XACML compilation -----------------------------------------------------------------------

    def compile_role_policy(self, role: str) -> Policy:
        """One XACML policy granting this role's *direct* permissions.

        Inherited permissions are not duplicated here: users carry their
        full authorized-role closure as attribute values (see
        :meth:`populate_pip`), so a senior user matches the junior role's
        policy directly.  This keeps compiled policies small — the point
        the paper makes about RBAC scaling to large user bases.
        """
        self._require_role(role)
        role_match = Match(
            match_function="urn:oasis:names:tc:xacml:1.0:function:string-equal",
            value=string(role),
            designator=_role_designator(),
        )
        rules = []
        for index, permission in enumerate(
            sorted(self._role_permissions[role], key=str)
        ):
            rules.append(
                permit_rule(
                    rule_id=f"{role}-perm-{index}",
                    target=subject_resource_action_target(
                        resource_id=permission.resource_id,
                        action_id=permission.action_id,
                    ),
                )
            )
        return Policy(
            policy_id=f"rbac:{self.name}:role:{role}",
            rules=tuple(rules),
            rule_combining=combining.RULE_PERMIT_OVERRIDES,
            target=Target(any_ofs=(AnyOf(all_ofs=(AllOf(matches=(role_match,)),)),)),
            description=f"RBAC role policy for {role!r}",
        )

    def compile_policies(self) -> list[Policy]:
        """All role policies, one per role (no fallback deny).

        Combine with :meth:`compile_policy_set` for deployment: a bare
        fallback-deny *policy* would interact badly with a deny-overrides
        engine (it always applies), so the deny lives inside a
        permit-overrides policy set instead.
        """
        return [self.compile_role_policy(role) for role in sorted(self._roles)]

    def compile_policy_set(self, include_fallback_deny: bool = True) -> PolicySet:
        """The deployable unit: role policies under permit-overrides.

        Any role policy that permits wins; the optional fallback denies
        everything else, making the set self-contained (closed world).
        """
        children: list[Policy] = self.compile_policies()
        if include_fallback_deny:
            children.append(
                Policy(
                    policy_id=f"rbac:{self.name}:fallback-deny",
                    rules=(deny_rule("deny-all"),),
                    rule_combining=combining.RULE_FIRST_APPLICABLE,
                    description="Deny anything no role policy permits",
                )
            )
        return PolicySet(
            policy_set_id=f"rbac:{self.name}",
            children=tuple(children),
            policy_combining=combining.POLICY_PERMIT_OVERRIDES,
            description=f"RBAC model {self.name!r}",
        )

    def populate_pip(self, store: AttributeStore) -> None:
        """Write each user's authorized-role closure into a PIP store."""
        for user in self._user_roles:
            store.set_subject_attribute(
                user,
                SUBJECT_ROLE,
                [string(role) for role in sorted(self.authorized_roles(user))],
            )


@dataclass
class RbacSession:
    """A session in which a user activates a subset of their roles (DSD)."""

    model: RbacModel
    user: str
    active_roles: set[str] = field(default_factory=set)

    def activate(self, role: str) -> None:
        if role not in self.model.assigned_roles(self.user):
            raise RbacError(
                f"user {self.user!r} is not assigned role {role!r}"
            )
        candidate = self.active_roles | {role}
        # DSD applies to the activated closure, mirroring SSD's strength.
        closure: set[str] = set()
        for active in candidate:
            closure |= self.model._closure(active)
        for constraint in self.model.dsd_constraints:
            if constraint.violated_by(closure):
                raise RbacError(
                    f"activating {role!r} violates DSD {constraint.name!r}"
                )
        self.active_roles.add(role)

    def deactivate(self, role: str) -> None:
        self.active_roles.discard(role)

    def check_access(self, resource_id: str, action_id: str) -> bool:
        """Access via *active* roles only (and their inherited juniors)."""
        permissions: set[Permission] = set()
        for role in self.active_roles:
            permissions |= self.model.role_permissions(role)
        return Permission(resource_id, action_id) in permissions


def _role_designator():
    from ..xacml.attributes import AttributeDesignator, DataType

    return AttributeDesignator(
        category=Category.SUBJECT,
        attribute_id=SUBJECT_ROLE,
        data_type=DataType.STRING,
    )
