"""The three authorisation decision query sequences: agent, push, pull.

Paper §2.2: "Interactions between the decision (PDP) and enforcement
(PEP) points can be based on one of the three proposed authorisation
decision query sequences ... the agent, pull and push sequence models."
Each sequence here is a driver that executes the corresponding figure's
numbered steps over the simulated network and records a
:class:`FlowTrace`, which experiments E2–E4 print next to the paper's
diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..capability.cas import CapabilityRequest, capability_from_payload
from ..capability.tokens import CapabilityEnforcer, CapabilityScope
from ..components.base import Component
from ..components.pep import EnforcementResult, PolicyEnforcementPoint
from ..saml.assertions import SignedAssertion
from ..simnet.network import Network
from ..xacml.context import Decision, RequestContext
from ..xacml.engine import PdpEngine


@dataclass(frozen=True)
class FlowStep:
    """One numbered arrow of a figure's data flow."""

    number: str
    description: str
    sender: str
    recipient: str
    at: float


@dataclass
class FlowTrace:
    """An executed sequence: its steps plus the enforcement outcome."""

    sequence: str  # "pull" | "push" | "agent"
    steps: list[FlowStep] = field(default_factory=list)
    result: Optional[EnforcementResult] = None
    messages_used: int = 0
    bytes_used: int = 0

    def add(self, number: str, description: str, sender: str, recipient: str, at: float) -> None:
        self.steps.append(FlowStep(number, description, sender, recipient, at))

    def step_numbers(self) -> list[str]:
        return [step.number for step in self.steps]


class ClientAgent(Component):
    """A client-side stub a subject uses to call services and token
    services; exists so client traffic crosses the simulated network like
    everything else."""

    def __init__(self, name: str, network: Network, subject_id: str) -> None:
        super().__init__(name, network)
        self.subject_id = subject_id


def pull_sequence(
    client: ClientAgent,
    pep: PolicyEnforcementPoint,
    resource_id: str,
    action_id: str,
    request: Optional[RequestContext] = None,
) -> FlowTrace:
    """Fig. 3: policy-issuing (pull).  Client calls; PEP asks the PDP.

    Steps: (I) access request, (II) decision query, (III) decision
    response, (IV) enforce.
    """
    trace = FlowTrace(sequence="pull")
    metrics = client.network.metrics
    messages_before = metrics.messages_sent
    bytes_before = metrics.bytes_sent
    if request is None:
        request = RequestContext.simple(client.subject_id, resource_id, action_id)
    trace.add("I", "access request", client.name, pep.name, client.now)
    pdp_name = pep.pdp_address or "(selector)"
    trace.add("II", "authorisation decision query", pep.name, pdp_name, client.now)
    result = pep.authorize(request)
    trace.add("III", "authorisation decision response", pdp_name, pep.name, client.now)
    trace.add(
        "IV",
        f"access {'granted' if result.granted else 'denied'}",
        pep.name,
        client.name,
        client.now,
    )
    trace.result = result
    trace.messages_used = metrics.messages_sent - messages_before
    trace.bytes_used = metrics.bytes_sent - bytes_before
    return trace


def push_sequence(
    client: ClientAgent,
    capability_service: str,
    enforcer: CapabilityEnforcer,
    resource_id: str,
    action_id: str,
    audience: Optional[str] = None,
    reuse_capability: Optional[SignedAssertion] = None,
) -> tuple[FlowTrace, Optional[SignedAssertion]]:
    """Fig. 2: capability-issuing (push).

    Steps: (I) capability request, (II) capability response, (III)
    service call with assertion attached, (IV) validate + enforce.
    Passing ``reuse_capability`` skips steps I/II — the amortisation the
    push model exists for (experiment E13).
    """
    trace = FlowTrace(sequence="push")
    metrics = client.network.metrics
    messages_before = metrics.messages_sent
    bytes_before = metrics.bytes_sent
    capability = reuse_capability
    if capability is None:
        cap_request = CapabilityRequest(
            subject_id=client.subject_id,
            scopes=(CapabilityScope(resource_id, action_id),),
            audience=audience,
        )
        trace.add(
            "I", "capability request", client.name, capability_service, client.now
        )
        reply = client.call(capability_service, "cap.request", cap_request.to_xml())
        capability = capability_from_payload(reply.payload)
        trace.add(
            "II", "capability response", capability_service, client.name, client.now
        )
    trace.add(
        "III",
        "service call with capability assertion",
        client.name,
        enforcer.pep.name,
        client.now,
    )
    result = enforcer.authorize(
        capability, client.subject_id, resource_id, action_id
    )
    trace.add(
        "IV",
        f"capability validated, access {'granted' if result.granted else 'denied'}",
        enforcer.pep.name,
        client.name,
        client.now,
    )
    trace.result = result
    trace.messages_used = metrics.messages_sent - messages_before
    trace.bytes_used = metrics.bytes_sent - bytes_before
    return trace, capability


class AgentProxy(Component):
    """Fig.-style agent sequence: a proxy with an embedded decision engine.

    "The agent model is a proxy-based approach where a specialised
    component sits in front of an exposed service and mediates all access
    requests to this service.  The service can only communicate with the
    agent" (paper §2.2).  Policies live *in* the agent — the decentralised
    management model the paper contrasts with push/pull centralisation.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        service_name: str,
        engine: Optional[PdpEngine] = None,
    ) -> None:
        super().__init__(name, network)
        self.service_name = service_name
        self.engine = engine if engine is not None else PdpEngine()
        self.grants = 0
        self.denials = 0

    def mediate(self, request: RequestContext) -> Decision:
        decision = self.engine.decide(request, current_time=self.now)
        if decision is Decision.PERMIT:
            self.grants += 1
        else:
            self.denials += 1
        return decision


def agent_sequence(
    client: ClientAgent,
    agent: AgentProxy,
    resource_id: str,
    action_id: str,
) -> FlowTrace:
    """Agent model: client → agent (decides locally) → service."""
    trace = FlowTrace(sequence="agent")
    metrics = client.network.metrics
    messages_before = metrics.messages_sent
    bytes_before = metrics.bytes_sent
    request = RequestContext.simple(client.subject_id, resource_id, action_id)
    trace.add("I", "access request", client.name, agent.name, client.now)
    decision = agent.mediate(request)
    granted = decision is Decision.PERMIT
    if granted:
        trace.add(
            "II", "request forwarded to service", agent.name, agent.service_name,
            client.now,
        )
    trace.add(
        "III" if granted else "II",
        f"access {'granted' if granted else 'denied'}",
        agent.name,
        client.name,
        client.now,
    )
    trace.result = EnforcementResult(
        decision=decision if granted else Decision.DENY,
        source="agent",
    )
    trace.messages_used = metrics.messages_sent - messages_before
    trace.bytes_used = metrics.bytes_sent - bytes_before
    return trace
