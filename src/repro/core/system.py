"""The top-level facade: a domain's dependable access control system.

:class:`AccessControlSystem` is what a downstream user instantiates: it
wires a domain's PEP/PDP/PAP/PIP quartet, layers the meta-policy engine
(SoD, Chinese Wall) over base decisions, records every outcome in the
audit log, and optionally replaces the single PDP with a replicated
cluster behind heartbeat failover — the composition the paper's title
promises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..admin.conflicts import MetaPolicyEngine, Veto
from ..components.pdp import PdpConfig
from ..components.pep import EnforcementResult, PepConfig, PolicyEnforcementPoint
from ..domain.domain import AdministrativeDomain, WebServiceResource
from ..xacml.context import Decision, RequestContext
from ..xacml.policy import Policy, PolicySet
from .audit import AuditLog, AuditRecord
from .dependability import FailoverRouter, HeartbeatMonitor, PdpCluster

PolicyElement = Union[Policy, PolicySet]


@dataclass
class SystemConfig:
    """Deployment choices for one domain's access control system."""

    #: Number of PDP replicas; 1 means a single (non-replicated) PDP.
    pdp_replicas: int = 1
    #: Heartbeat period for the failover monitor (replicated mode only).
    heartbeat_period: float = 0.5
    heartbeat_miss_threshold: int = 2
    pdp_config: Optional[PdpConfig] = None
    pep_config: Optional[PepConfig] = None


class AccessControlSystem:
    """One domain's complete, dependable authorisation system."""

    def __init__(
        self,
        domain: AdministrativeDomain,
        config: Optional[SystemConfig] = None,
        meta_policies: Optional[MetaPolicyEngine] = None,
        audit: Optional[AuditLog] = None,
    ) -> None:
        self.domain = domain
        self.config = config if config is not None else SystemConfig()
        self.meta_policies = (
            meta_policies if meta_policies is not None else MetaPolicyEngine()
        )
        self.audit = audit if audit is not None else AuditLog()
        self.cluster: Optional[PdpCluster] = None
        self.monitor: Optional[HeartbeatMonitor] = None
        self.router: Optional[FailoverRouter] = None
        if domain.pap is None:
            domain.create_pap()
        if domain.pip is None:
            domain.create_pip()
        if self.config.pdp_replicas > 1:
            self.cluster = PdpCluster(
                domain,
                replicas=self.config.pdp_replicas,
                config=self.config.pdp_config,
            )
            self.monitor = HeartbeatMonitor(
                f"hb.{domain.name}",
                domain.network,
                targets=self.cluster.addresses,
                period=self.config.heartbeat_period,
                miss_threshold=self.config.heartbeat_miss_threshold,
            )
            self.monitor.start()
            self.router = FailoverRouter(monitor=self.monitor)
        elif domain.pdp is None:
            domain.create_pdp(config=self.config.pdp_config)

    # -- resources -----------------------------------------------------------------

    def protect(self, resource_id: str, description: str = "") -> WebServiceResource:
        """Expose a resource behind a PEP wired to this system's PDP(s)."""
        resource = self.domain.expose_resource(
            resource_id, description=description, pep_config=self.config.pep_config
        )
        if self.router is not None:
            resource.pep.pdp_selector = self.router
            resource.pep.pdp_address = None
        return resource

    def pep_for(self, resource_id: str) -> PolicyEnforcementPoint:
        resource = self.domain.resources.get(resource_id)
        if resource is None:
            raise KeyError(
                f"resource {resource_id!r} is not protected by this system"
            )
        return resource.pep

    # -- policy administration ---------------------------------------------------------

    def publish_policy(self, element: PolicyElement, publisher: str = "admin") -> int:
        assert self.domain.pap is not None
        return self.domain.pap.publish(element, publisher=publisher)

    def withdraw_policy(self, policy_id: str, requester: str = "admin") -> bool:
        assert self.domain.pap is not None
        return self.domain.pap.withdraw(policy_id, requester=requester)

    # -- authorisation ------------------------------------------------------------------

    def authorize(
        self,
        subject_id: str,
        resource_id: str,
        action_id: str,
        request: Optional[RequestContext] = None,
    ) -> EnforcementResult:
        """Authorise one access: PEP → PDP → meta-policies → audit."""
        pep = self.pep_for(resource_id)
        if request is None:
            request = RequestContext.simple(subject_id, resource_id, action_id)
        result = pep.authorize(request)
        veto: Optional[Veto] = None
        if result.granted:
            decision, veto = self.meta_policies.guard_decision(
                Decision.PERMIT, request, at=self.domain.network.now
            )
            if decision is not Decision.PERMIT:
                pep.grants -= 1
                pep.denials += 1
                result = EnforcementResult(
                    decision=Decision.DENY,
                    source="meta-policy",
                    obligations=result.obligations,
                    detail=veto.reason if veto else "meta-policy veto",
                )
        self.audit.record(
            AuditRecord(
                at=self.domain.network.now,
                domain=self.domain.name,
                pep=pep.name,
                subject_id=subject_id,
                resource_id=resource_id,
                action_id=action_id,
                decision=result.decision,
                source=result.source,
                detail=result.detail,
            )
        )
        return result

    # -- health --------------------------------------------------------------------------

    def decision_service_available(self) -> bool:
        """Can this system currently obtain decisions?"""
        if self.cluster is not None:
            assert self.monitor is not None
            return bool(self.monitor.alive_targets())
        return self.domain.pdp is not None and self.domain.pdp.alive

    def stats(self) -> dict[str, object]:
        peps = list(self.domain.peps.values())
        return {
            "domain": self.domain.name,
            "enforcements": sum(p.enforcements for p in peps),
            "grants": sum(p.grants for p in peps),
            "denials": sum(p.denials for p in peps),
            "fail_safe_denials": sum(p.fail_safe_denials for p in peps),
            "meta_policy_vetoes": self.meta_policies.vetoes_issued,
            "audit_records": len(self.audit),
            "pdp_replicas": (
                len(self.cluster.replicas) if self.cluster else 1
            ),
        }
