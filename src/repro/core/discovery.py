"""PDP discovery: from static bindings to registry lookups with health.

Paper §3.2, "Location of Policy Decision Points": static PEP→PDP
bindings "are easy to design and implement" but "do not fit into large
computing environments ... In such cases a discovery mechanism needs to
be employed."  This module provides that mechanism:

* PDPs register in a :class:`~repro.wsvc.registry.ServiceRegistry`;
* a :class:`HealthProber` pings registered PDPs on a period and marks
  them (un)healthy;
* a :class:`DiscoveringSelector` plugs into a PEP's ``pdp_selector``
  hook, returning a healthy PDP for the PEP's domain (preferring local,
  falling back to any domain the PEP's domain delegates decisions to).

Experiment E10 compares static binding vs discovery under PDP churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..components.base import Component, RpcFault, RpcTimeout
from ..simnet.network import Network
from ..wsvc.registry import ServiceRegistry
from ..wsvc.wsdl import pdp_description


class HealthProber(Component):
    """Periodically pings services and updates registry health marks."""

    def __init__(
        self,
        name: str,
        network: Network,
        registry: ServiceRegistry,
        period: float = 1.0,
        probe_timeout: float = 0.25,
    ) -> None:
        super().__init__(name, network)
        self.registry = registry
        self.period = period
        self.probe_timeout = probe_timeout
        self.probes_sent = 0
        self.state_changes = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        if not self._running:
            return
        self.network.loop.schedule(self.period, self._probe_all, label="health-probe")

    def _probe_all(self) -> None:
        if not self._running:
            return
        for description in self.registry.find(healthy_only=False):
            healthy = self._probe(description.address)
            entry_known_healthy = description in self.registry.find(
                healthy_only=True
            )
            if healthy != entry_known_healthy:
                self.state_changes += 1
            self.registry.mark_health(description.name, healthy)
        self._schedule_next()

    def _probe(self, address: str) -> bool:
        self.probes_sent += 1
        try:
            self.call(address, "ping", "<Ping/>", timeout=self.probe_timeout)
        except (RpcTimeout, RpcFault):
            return False
        return True


@dataclass
class DiscoveringSelector:
    """A ``pdp_selector`` implementation backed by the registry.

    Selection preference: healthy PDP in ``home_domain``, then healthy
    PDP in any of ``fallback_domains`` (the domains home delegates
    decision making to), else None (the PEP will fail safe).
    """

    registry: ServiceRegistry
    home_domain: str
    fallback_domains: tuple[str, ...] = ()
    selections: int = 0
    fallbacks_used: int = 0

    def __call__(self) -> Optional[str]:
        self.selections += 1
        local = self.registry.find(service_type="pdp", domain=self.home_domain)
        if local:
            return local[0].address
        for domain in self.fallback_domains:
            remote = self.registry.find(service_type="pdp", domain=domain)
            if remote:
                self.fallbacks_used += 1
                return remote[0].address
        return None


def register_pdp(
    registry: ServiceRegistry, pdp_name: str, domain: str, at: float = 0.0
) -> None:
    """Convenience: publish a PDP's WSDL-lite description."""
    registry.register(
        pdp_description(name=pdp_name, address=pdp_name, domain=domain), at=at
    )
