"""Audit and accounting.

"Authorisation services easily contribute to uniformity of accounting and
auditing functions" (paper §2.2, after Woo & Lam).  Every decision that
flows through an :class:`~repro.core.system.AccessControlSystem` lands in
an :class:`AuditLog`; the query helpers support the compliance-style
questions (who touched what, which denials fired, how often did
fail-safe denial engage) the paper's management section motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..xacml.context import Decision


@dataclass(frozen=True)
class AuditRecord:
    """One enforcement outcome."""

    at: float
    domain: str
    pep: str
    subject_id: str
    resource_id: str
    action_id: str
    decision: Decision
    source: str  # pdp | cache | capability | fail-safe | obligation | meta-policy
    detail: str = ""


class AuditLog:
    """Append-only audit store with simple analytics."""

    def __init__(self, capacity: int = 1_000_000) -> None:
        self.capacity = capacity
        self._records: list[AuditRecord] = []
        self.dropped = 0

    def record(self, record: AuditRecord) -> None:
        if len(self._records) >= self.capacity:
            self.dropped += 1
            return
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[AuditRecord]:
        return list(self._records)

    # -- queries --------------------------------------------------------------

    def filter(
        self,
        subject_id: Optional[str] = None,
        resource_id: Optional[str] = None,
        decision: Optional[Decision] = None,
        source: Optional[str] = None,
        since: Optional[float] = None,
    ) -> list[AuditRecord]:
        out = []
        for record in self._records:
            if subject_id is not None and record.subject_id != subject_id:
                continue
            if resource_id is not None and record.resource_id != resource_id:
                continue
            if decision is not None and record.decision != decision:
                continue
            if source is not None and record.source != source:
                continue
            if since is not None and record.at < since:
                continue
            out.append(record)
        return out

    def denial_rate(self) -> float:
        if not self._records:
            return 0.0
        denials = sum(
            1 for r in self._records if r.decision is not Decision.PERMIT
        )
        return denials / len(self._records)

    def by_source(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for record in self._records:
            out[record.source] = out.get(record.source, 0) + 1
        return out

    def subjects_touching(self, resource_id: str) -> set[str]:
        return {
            r.subject_id
            for r in self._records
            if r.resource_id == resource_id and r.decision is Decision.PERMIT
        }
