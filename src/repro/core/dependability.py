"""Dependability: PDP replication, heartbeat failover and quorum voting.

This module delivers the paper's titular adjective.  The paper requires
the authorisation infrastructure to be protected and available like the
resources it guards (Section 3.2, "Security of Access Control Systems";
the decision point is a single point of failure in the pull model of
Fig. 3).  Three mechanisms, composable per deployment:

* **replication** — a domain runs R identical PDP replicas behind one
  logical decision endpoint (:class:`PdpCluster`);
* **heartbeat failover** — a :class:`HeartbeatMonitor` pings replicas on
  a period; a :class:`FailoverRouter` (pluggable as a PEP's
  ``pdp_selector``) always routes to the first replica currently
  believed alive, bounding outage time by the detection window;
* **quorum voting** — a :class:`QuorumClient` queries q replicas and
  takes the majority decision, masking not just crashes but a *corrupted
  replica returning wrong decisions* (deny-biased on ties and
  disagreement).

Experiment E11 measures availability and latency against replica count
and injected crash faults.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional

from ..components.base import Component, RpcFault, RpcTimeout
from ..components.pdp import PdpConfig, PolicyDecisionPoint, QUERY_ACTION
from ..domain.domain import AdministrativeDomain
from ..saml.xacml_profile import XacmlAuthzDecisionQuery, XacmlAuthzDecisionStatement
from ..simnet.network import Network
from ..xacml.context import Decision, RequestContext


class PdpCluster:
    """R identical PDP replicas for one domain.

    All replicas share the domain's PAP and PIP, so they converge on the
    same policies through the normal retrieval path; there is no
    replica-to-replica protocol to corrupt.
    """

    def __init__(
        self,
        domain: AdministrativeDomain,
        replicas: int,
        config: Optional[PdpConfig] = None,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"cluster needs >= 1 replica, got {replicas}")
        self.domain = domain
        self.replicas: list[PolicyDecisionPoint] = []
        for index in range(replicas):
            replica = domain.create_pdp(config=config, suffix=f"-r{index}")
            self.replicas.append(replica)

    @property
    def addresses(self) -> list[str]:
        return [replica.name for replica in self.replicas]

    def crash_replica(self, index: int) -> None:
        self.replicas[index].crash()

    def recover_replica(self, index: int) -> None:
        self.replicas[index].recover()

    def alive_count(self) -> int:
        return sum(1 for replica in self.replicas if replica.alive)


class HeartbeatMonitor(Component):
    """Tracks replica liveness through periodic pings.

    A replica is *suspected* after ``miss_threshold`` consecutive missed
    heartbeats — the classic trade-off between detection latency
    (period × threshold) and false suspicion, which E11 sweeps.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        targets: list[str],
        period: float = 0.5,
        probe_timeout: float = 0.2,
        miss_threshold: int = 2,
    ) -> None:
        super().__init__(name, network)
        self.targets = list(targets)
        self.period = period
        self.probe_timeout = probe_timeout
        self.miss_threshold = miss_threshold
        self._misses: dict[str, int] = {target: 0 for target in targets}
        self._suspected: set[str] = set()
        self.heartbeats_sent = 0
        self.suspicions_raised = 0
        self.suspicions_cleared = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def alive_targets(self) -> list[str]:
        return [t for t in self.targets if t not in self._suspected]

    def is_suspected(self, target: str) -> bool:
        return target in self._suspected

    def _schedule_next(self) -> None:
        if not self._running:
            return
        self.network.loop.schedule(self.period, self._beat, label="heartbeat")

    def _beat(self) -> None:
        if not self._running:
            return
        for target in self.targets:
            self.heartbeats_sent += 1
            try:
                self.call(target, "ping", "<Ping/>", timeout=self.probe_timeout)
            except (RpcTimeout, RpcFault):
                self._misses[target] += 1
                if (
                    self._misses[target] >= self.miss_threshold
                    and target not in self._suspected
                ):
                    self._suspected.add(target)
                    self.suspicions_raised += 1
                continue
            self._misses[target] = 0
            if target in self._suspected:
                self._suspected.discard(target)
                self.suspicions_cleared += 1
        self._schedule_next()


@dataclass
class FailoverRouter:
    """``pdp_selector`` that always routes to the first unsuspected replica."""

    monitor: HeartbeatMonitor
    selections: int = 0
    failovers: int = 0
    _last_choice: Optional[str] = None

    def __call__(self) -> Optional[str]:
        self.selections += 1
        alive = self.monitor.alive_targets()
        choice = alive[0] if alive else None
        if (
            choice is not None
            and self._last_choice is not None
            and choice != self._last_choice
        ):
            self.failovers += 1
        if choice is not None:
            self._last_choice = choice
        return choice


@dataclass
class QuorumOutcome:
    decision: Decision
    votes: dict[str, int]
    replicas_asked: int
    replies: int
    disagreement: bool

    @property
    def unanimous(self) -> bool:
        return len([v for v in self.votes.values() if v > 0]) == 1


class QuorumClient(Component):
    """Queries multiple replicas and takes the majority decision.

    Deny-biased: ties, insufficient replies or any disagreement that
    leaves Permit without a strict majority resolve to Deny — a corrupted
    minority can cause denial of service but never unauthorised access.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        replica_addresses: list[str],
        quorum: int,
        reply_timeout: float = 1.0,
    ) -> None:
        super().__init__(name, network)
        if quorum < 1 or quorum > len(replica_addresses):
            raise ValueError(
                f"quorum {quorum} invalid for {len(replica_addresses)} replicas"
            )
        self.replica_addresses = list(replica_addresses)
        self.quorum = quorum
        self.reply_timeout = reply_timeout
        self.disagreements_observed = 0

    def evaluate(self, request: RequestContext) -> QuorumOutcome:
        votes: Counter[str] = Counter()
        replies = 0
        asked = 0
        for address in self.replica_addresses:
            if replies >= self.quorum:
                break
            asked += 1
            query = XacmlAuthzDecisionQuery(
                request=request, issuer=self.name, issue_instant=self.now
            )
            try:
                reply = self.call(
                    address, QUERY_ACTION, query.to_xml(), timeout=self.reply_timeout
                )
            except (RpcTimeout, RpcFault):
                continue
            statement = XacmlAuthzDecisionStatement.from_xml(str(reply.payload))
            votes[statement.response.decision.value] += 1
            replies += 1
        disagreement = len([v for v in votes.values() if v > 0]) > 1
        if disagreement:
            self.disagreements_observed += 1
        decision = Decision.DENY
        if replies >= self.quorum:
            permits = votes.get(Decision.PERMIT.value, 0)
            if permits * 2 > replies:  # strict majority of received replies
                decision = Decision.PERMIT
        return QuorumOutcome(
            decision=decision,
            votes=dict(votes),
            replicas_asked=asked,
            replies=replies,
            disagreement=disagreement,
        )
