"""Core: the paper's contribution assembled.

``AccessControlSystem`` wires one domain's components into a dependable
authorisation service (replication, failover, quorum, meta-policies,
audit); ``sequences`` executes the paper's three decision query sequences
(agent / push / pull) with figure-style flow traces; ``discovery``
provides registry-based PDP location.
"""

from .audit import AuditLog, AuditRecord
from .dependability import (
    FailoverRouter,
    HeartbeatMonitor,
    PdpCluster,
    QuorumClient,
    QuorumOutcome,
)
from .discovery import DiscoveringSelector, HealthProber, register_pdp
from .sequences import (
    AgentProxy,
    ClientAgent,
    FlowStep,
    FlowTrace,
    agent_sequence,
    pull_sequence,
    push_sequence,
)
from .system import AccessControlSystem, SystemConfig

__all__ = [
    "AccessControlSystem",
    "AgentProxy",
    "AuditLog",
    "AuditRecord",
    "ClientAgent",
    "DiscoveringSelector",
    "FailoverRouter",
    "FlowStep",
    "FlowTrace",
    "HealthProber",
    "HeartbeatMonitor",
    "PdpCluster",
    "QuorumClient",
    "QuorumOutcome",
    "SystemConfig",
    "agent_sequence",
    "pull_sequence",
    "push_sequence",
    "register_pdp",
]
